//! The action concurrency model (paper §4.2) exercised over real RPC by
//! many concurrent clients.

use bytes::Bytes;
use glider_core::{ActionSpec, ByteSize, Cluster, ClusterConfig, GliderError};

async fn cluster() -> Cluster {
    Cluster::start(
        ClusterConfig::default()
            .with_block_size(ByteSize::kib(64))
            .with_data(1, 512)
            .with_active(2, 32),
    )
    .await
    .expect("cluster")
}

#[tokio::test(flavor = "multi_thread", worker_threads = 8)]
async fn serialized_action_accumulates_consistently_under_contention() {
    let c = cluster().await;
    let store = c.client().await.unwrap();
    store
        .create_action("/hot", ActionSpec::new("counter", false))
        .await
        .unwrap();
    let mut tasks = Vec::new();
    for _ in 0..16 {
        let store = c.client().await.unwrap();
        tasks.push(tokio::spawn(async move {
            let action = store.lookup_action("/hot").await.unwrap();
            for _ in 0..10 {
                action
                    .write_all(Bytes::from(vec![1u8; 1000]))
                    .await
                    .unwrap();
            }
        }));
    }
    for t in tasks {
        t.await.unwrap();
    }
    let action = store.lookup_action("/hot").await.unwrap();
    assert_eq!(action.read_all().await.unwrap(), b"160000");
}

#[tokio::test(flavor = "multi_thread", worker_threads = 8)]
async fn interleaved_merge_is_exact_under_heavy_concurrency() {
    let c = cluster().await;
    let store = c.client().await.unwrap();
    store
        .create_action("/merge", ActionSpec::new("merge", true))
        .await
        .unwrap();
    let writers = 12;
    let per_writer = 500i64;
    let mut tasks = Vec::new();
    for w in 0..writers {
        let store = c.client().await.unwrap();
        tasks.push(tokio::spawn(async move {
            let action = store.lookup_action("/merge").await.unwrap();
            let mut out = action.output_stream().await.unwrap();
            for k in 0..per_writer {
                out.write_all(format!("{k},{w}\n").as_bytes())
                    .await
                    .unwrap();
            }
            out.close().await.unwrap();
        }));
    }
    for t in tasks {
        t.await.unwrap();
    }
    let action = store.lookup_action("/merge").await.unwrap();
    let merged = String::from_utf8(action.read_all().await.unwrap()).unwrap();
    let expected_sum: i64 = (0..writers).sum();
    let lines: Vec<&str> = merged.lines().collect();
    assert_eq!(lines.len(), per_writer as usize);
    for line in lines {
        let (_k, v) = line.split_once(',').unwrap();
        assert_eq!(v.parse::<i64>().unwrap(), expected_sum);
    }
}

#[tokio::test(flavor = "multi_thread", worker_threads = 8)]
async fn independent_actions_run_in_parallel() {
    let c = cluster().await;
    let store = c.client().await.unwrap();
    // Multiple actions must make progress concurrently (paper: "multiple
    // actions may freely execute concurrently").
    let n = 8;
    for i in 0..n {
        store
            .create_action(&format!("/p{i}"), ActionSpec::new("counter", false))
            .await
            .unwrap();
    }
    let start = std::time::Instant::now();
    let mut tasks = Vec::new();
    for i in 0..n {
        let store = c.client().await.unwrap();
        tasks.push(tokio::spawn(async move {
            let action = store.lookup_action(&format!("/p{i}")).await.unwrap();
            action
                .write_all(Bytes::from(vec![0u8; 2 * 1024 * 1024]))
                .await
                .unwrap();
        }));
    }
    for t in tasks {
        t.await.unwrap();
    }
    // Not a strict timing assertion — just sanity that 16 MiB over 8
    // parallel actions completed promptly on localhost.
    assert!(start.elapsed().as_secs() < 30);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 8)]
async fn concurrent_readers_of_one_action_each_get_full_streams() {
    let c = cluster().await;
    let store = c.client().await.unwrap();
    store
        .create_action(
            "/src",
            ActionSpec::new("null", true).with_params("size=100000"),
        )
        .await
        .unwrap();
    let mut tasks = Vec::new();
    for _ in 0..6 {
        let store = c.client().await.unwrap();
        tasks.push(tokio::spawn(async move {
            let action = store.lookup_action("/src").await.unwrap();
            let data = action.read_all().await.unwrap();
            assert_eq!(data.len(), 100_000);
        }));
    }
    for t in tasks {
        t.await.unwrap();
    }
}

#[tokio::test(flavor = "multi_thread", worker_threads = 8)]
async fn write_close_is_a_barrier() {
    let c = cluster().await;
    let store = c.client().await.unwrap();
    let action = store
        .create_action("/barrier", ActionSpec::new("counter", false))
        .await
        .unwrap();
    // Many small chunks; once close() returns, the count must be final.
    let mut out = action.output_stream().await.unwrap();
    for _ in 0..100 {
        out.write(Bytes::from(vec![7u8; 333])).await.unwrap();
    }
    out.close().await.unwrap();
    assert_eq!(action.read_all().await.unwrap(), b"33300");
}

#[tokio::test(flavor = "multi_thread", worker_threads = 8)]
async fn deleting_a_busy_action_waits_for_in_flight_methods() {
    let c = cluster().await;
    let store = c.client().await.unwrap();
    let action = store
        .create_action("/busy", ActionSpec::new("counter", true))
        .await
        .unwrap();
    let mut out = action.output_stream().await.unwrap();
    out.write(Bytes::from_static(b"12345")).await.unwrap();

    let deleter = {
        let store = c.client().await.unwrap();
        tokio::spawn(async move { store.delete("/busy").await })
    };
    tokio::time::sleep(std::time::Duration::from_millis(30)).await;
    // The write method is still open; finish it. Whatever order the
    // runtime resolves, both operations must terminate cleanly.
    let close_result = out.close().await;
    let delete_result = deleter.await.unwrap();
    delete_result.unwrap();
    // Close may have been cut off by the delete (Closed) or completed
    // before it — both are acceptable terminal states.
    if let Err(e) = close_result {
        assert!(
            matches!(
                e.code(),
                glider_core::ErrorCode::Closed | glider_core::ErrorCode::NotFound
            ),
            "unexpected error {e}"
        );
    }
    let err = store.lookup_action("/busy").await.unwrap_err();
    assert_eq!(err.code(), glider_core::ErrorCode::NotFound);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 8)]
async fn bag_and_action_mixed_pipeline() {
    // Producers append raw data to a bag while a consumer pushes partial
    // aggregates to a merge action — a composite pattern.
    let c = cluster().await;
    let store = c.client().await.unwrap();
    let bag = store.create_bag("/events").await.unwrap();
    store
        .create_action("/agg", ActionSpec::new("merge", true))
        .await
        .unwrap();
    let mut producers = Vec::new();
    for w in 0..4i64 {
        let bag = bag.clone();
        let store = c.client().await.unwrap();
        producers.push(tokio::spawn(async move {
            let mut out = bag.output_stream().await.unwrap();
            out.write_all(format!("{w}\n").repeat(100).as_bytes())
                .await
                .unwrap();
            out.close().await.unwrap();
            let action = store.lookup_action("/agg").await.unwrap();
            action
                .write_all(Bytes::from(format!("{w},100\n")))
                .await
                .unwrap();
            Ok::<(), GliderError>(())
        }));
    }
    for p in producers {
        p.await.unwrap().unwrap();
    }
    let raw = bag.read_all().await.unwrap();
    assert_eq!(raw.iter().filter(|&&b| b == b'\n').count(), 400);
    let agg = store.lookup_action("/agg").await.unwrap();
    let merged = String::from_utf8(agg.read_all().await.unwrap()).unwrap();
    assert_eq!(merged, "0,100\n1,100\n2,100\n3,100\n");
}
