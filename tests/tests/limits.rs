//! FaaS resource limits interacting with the storage system.

use bytes::Bytes;
use glider_core::{ByteSize, Cluster, ClusterConfig, ErrorCode, GliderError, StoreClient};
use glider_faas::{FaasPlatform, FunctionConfig};
use std::sync::Arc;
use std::time::Duration;

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn throttled_function_transfers_slower() {
    let cluster = Cluster::start(ClusterConfig::default()).await.unwrap();
    let faas = FaasPlatform::new();
    let payload = 3 * 1024 * 1024u64; // 3 MiB

    let mut times = Vec::new();
    for (run, bw) in [(0u32, None), (1, Some(2u64))] {
        let mut fn_cfg = FunctionConfig::default();
        if let Some(bw) = bw {
            fn_cfg = fn_cfg.with_bandwidth_mibps(bw);
        }
        let client_config = cluster.client_config();
        let start = std::time::Instant::now();
        faas.invoke("writer", fn_cfg, move |ctx| {
            let mut client_config = client_config.clone();
            client_config.throttle = ctx.throttle.clone();
            Box::pin(async move {
                let store = StoreClient::connect(client_config).await?;
                let file = store.create_file(&format!("/t-{run}-{}", ctx.name)).await?;
                file.write_all(Bytes::from(vec![0u8; payload as usize]))
                    .await?;
                Ok::<(), GliderError>(())
            })
        })
        .await
        .unwrap();
        times.push(start.elapsed());
    }
    // 3 MiB at 2 MiB/s (with 1 s burst) needs >= ~0.5s; unthrottled is
    // near-instant on localhost.
    assert!(
        times[1] > times[0] * 3,
        "throttled {:?} vs open {:?}",
        times[1],
        times[0]
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn oom_function_fails_cleanly_and_cluster_survives() {
    let cluster = Cluster::start(ClusterConfig::default()).await.unwrap();
    let faas = FaasPlatform::new();
    let client_config = cluster.client_config();
    let err = faas
        .invoke(
            "oom",
            FunctionConfig::default().with_memory(ByteSize::kib(64)),
            move |ctx| {
                let client_config = client_config.clone();
                Box::pin(async move {
                    let store = StoreClient::connect(client_config).await?;
                    let file = store.create_file("/oom-buffer").await?;
                    // Tracked allocation beyond the 64 KiB function size.
                    ctx.memory.alloc(1024 * 1024)?;
                    file.write_all(Bytes::from(vec![0u8; 1024 * 1024])).await?;
                    Ok::<(), GliderError>(())
                })
            },
        )
        .await
        .unwrap_err();
    assert_eq!(err.code(), ErrorCode::ResourceLimit);
    // The cluster is unaffected; the orphaned node is still deletable.
    let store = cluster.client().await.unwrap();
    store.delete("/oom-buffer").await.unwrap();
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn timed_out_function_leaves_consistent_storage() {
    let cluster = Cluster::start(ClusterConfig::default()).await.unwrap();
    let faas = FaasPlatform::new();
    let client_config = cluster.client_config();
    let err = faas
        .invoke(
            "slow",
            FunctionConfig::default().with_timeout(Duration::from_millis(100)),
            move |_ctx| {
                let client_config = client_config.clone();
                Box::pin(async move {
                    let store = StoreClient::connect(client_config).await?;
                    let file = store.create_file("/slow-file").await?;
                    let mut out = file.output_stream().await?;
                    loop {
                        out.write(Bytes::from(vec![0u8; 4096])).await?;
                        tokio::time::sleep(Duration::from_millis(20)).await;
                        if false {
                            // Pin the future's output type; the loop only
                            // ends via the platform timeout.
                            return Ok::<(), GliderError>(());
                        }
                    }
                })
            },
        )
        .await
        .unwrap_err();
    assert_eq!(err.code(), ErrorCode::ResourceLimit);
    // The partially written file exists with whatever was committed; a
    // retry (the serverless failure model: re-run the function) can
    // delete and regenerate it.
    let store = cluster.client().await.unwrap();
    store.delete("/slow-file").await.unwrap();
    let file = store.create_file("/slow-file").await.unwrap();
    file.write_all(Bytes::from_static(b"retry")).await.unwrap();
    assert_eq!(file.read_all().await.unwrap(), b"retry");
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn hundreds_of_functions_against_one_cluster() {
    // A smoke test in the spirit of the paper's 700-function run.
    let cluster = Cluster::start(
        ClusterConfig::default()
            .with_data(2, 1024)
            .with_active(2, 16),
    )
    .await
    .unwrap();
    let faas = Arc::new(FaasPlatform::new());
    let store = cluster.client().await.unwrap();
    store
        .create_action("/sum", glider_core::ActionSpec::new("counter", true))
        .await
        .unwrap();
    let client_config = cluster.client_config();
    faas.map_stage(
        "writer",
        FunctionConfig::default(),
        (0..200u64).collect(),
        32,
        move |_ctx, i| {
            let client_config = client_config.clone();
            Box::pin(async move {
                let store = StoreClient::connect(client_config).await?;
                let action = store.lookup_action("/sum").await?;
                action
                    .write_all(Bytes::from(vec![0u8; (i % 7 + 1) as usize * 100]))
                    .await?;
                Ok::<(), GliderError>(())
            })
        },
    )
    .await
    .unwrap();
    assert_eq!(faas.invocation_count(), 200);
    let action = store.lookup_action("/sum").await.unwrap();
    let total: u64 = String::from_utf8(action.read_all().await.unwrap())
        .unwrap()
        .parse()
        .unwrap();
    let expected: u64 = (0..200u64).map(|i| (i % 7 + 1) * 100).sum();
    assert_eq!(total, expected);
}
