//! Property-based tests of core invariants.

use bytes::{Bytes, BytesMut};
use glider_core::namespace::{Namespace, NodePath};
use glider_core::proto::codec::{from_bytes, to_bytes};
use glider_core::proto::frame::{decode_frame, encode_frame, encode_frame_parts, Frame};
use glider_core::proto::message::{Request, RequestBody, Response, ResponseBody};
use glider_core::proto::types::{
    ActionSpec, BlockId, NodeId, NodeKind, PeerTier, ServerId, ServerKind, StorageClass, StreamDir,
    StreamId,
};
use glider_core::storage::BlockStore;
use glider_core::util::size::ByteSize;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Codec: encode/decode is the identity; decode never panics on garbage.
// ---------------------------------------------------------------------------

fn arb_node_kind() -> impl Strategy<Value = NodeKind> {
    prop_oneof![
        Just(NodeKind::File),
        Just(NodeKind::Directory),
        Just(NodeKind::KeyValue),
        Just(NodeKind::Table),
        Just(NodeKind::Bag),
        Just(NodeKind::Action),
    ]
}

fn arb_action_spec() -> impl Strategy<Value = ActionSpec> {
    ("[a-z]{1,12}", any::<bool>(), "[a-z0-9=;/]{0,40}")
        .prop_map(|(name, il, params)| ActionSpec::new(name, il).with_params(params))
}

fn arb_request_body() -> impl Strategy<Value = RequestBody> {
    prop_oneof![
        prop_oneof![Just(PeerTier::Compute), Just(PeerTier::Storage)]
            .prop_map(|tier| RequestBody::Hello { tier }),
        (
            "(/[a-z0-9]{1,8}){1,4}",
            arb_node_kind(),
            proptest::option::of(arb_action_spec())
        )
            .prop_map(|(path, kind, action)| RequestBody::CreateNode {
                path,
                kind,
                storage_class: None,
                action,
            }),
        "(/[a-z0-9]{1,8}){1,4}".prop_map(|path| RequestBody::LookupNode { path }),
        "(/[a-z0-9]{1,8}){1,4}".prop_map(|path| RequestBody::DeleteNode { path }),
        any::<u64>().prop_map(|n| RequestBody::AddBlock { node_id: NodeId(n) }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(n, b, len)| {
            RequestBody::CommitBlock {
                node_id: NodeId(n),
                block_id: BlockId(b),
                len,
            }
        }),
        (any::<bool>(), "[a-z]{1,8}", any::<u64>()).prop_map(|(active, addr, cap)| {
            RequestBody::RegisterServer {
                kind: if active {
                    ServerKind::Active
                } else {
                    ServerKind::Data
                },
                storage_class: StorageClass::from("dram"),
                addr,
                capacity_blocks: cap,
            }
        }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..256)
        )
            .prop_map(|(b, off, data)| RequestBody::WriteBlock {
                block_id: BlockId(b),
                offset: off,
                data: Bytes::from(data),
            }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(b, off, len)| {
            RequestBody::ReadBlock {
                block_id: BlockId(b),
                offset: off,
                len,
            }
        }),
        (any::<u64>(), any::<bool>()).prop_map(|(n, read)| RequestBody::StreamOpen {
            node_id: NodeId(n),
            dir: if read {
                StreamDir::Read
            } else {
                StreamDir::Write
            },
        }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..256)
        )
            .prop_map(|(s, seq, data)| RequestBody::StreamChunk {
                stream_id: StreamId(s),
                seq,
                data: Bytes::from(data),
            }),
        (any::<u64>(), any::<u64>()).prop_map(|(s, max)| RequestBody::StreamFetch {
            stream_id: StreamId(s),
            max_len: max,
        }),
        any::<u64>().prop_map(|s| RequestBody::StreamClose {
            stream_id: StreamId(s),
        }),
    ]
}

fn arb_response_body() -> impl Strategy<Value = ResponseBody> {
    prop_oneof![
        Just(ResponseBody::Ok),
        proptest::collection::vec("[a-z0-9]{1,10}", 0..8).prop_map(ResponseBody::Children),
        (any::<u64>(), any::<u64>()).prop_map(|(s, f)| ResponseBody::Registered {
            server_id: ServerId(s),
            first_block_id: BlockId(f),
        }),
        any::<u64>().prop_map(|s| ResponseBody::StreamOpened {
            stream_id: StreamId(s),
        }),
        (
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..512),
            any::<bool>()
        )
            .prop_map(|(seq, data, eof)| ResponseBody::Data {
                seq,
                bytes: Bytes::from(data),
                eof,
            }),
        any::<u64>().prop_map(|n| ResponseBody::Written { n }),
        (any::<u16>(), "[ -~]{0,40}")
            .prop_map(|(code, message)| ResponseBody::Error { code, message }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_frames_round_trip(
        id in any::<u64>(),
        trace_id in any::<u64>(),
        body in arb_request_body(),
    ) {
        let frame = Frame::Request(Request { id, trace_id, body });
        let mut buf = BytesMut::new();
        encode_frame(&frame, &mut buf);
        let decoded = decode_frame(&mut buf).unwrap().unwrap();
        prop_assert_eq!(decoded, frame);
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn response_frames_round_trip(id in any::<u64>(), body in arb_response_body()) {
        let frame = Frame::Response(Response { id, body });
        let mut buf = BytesMut::new();
        encode_frame(&frame, &mut buf);
        let decoded = decode_frame(&mut buf).unwrap().unwrap();
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = BytesMut::from(&data[..]);
        // Any result is fine — panics and infinite loops are not.
        let _ = decode_frame(&mut buf);
    }

    #[test]
    fn action_spec_params_survive_round_trip(spec in arb_action_spec()) {
        let enc = to_bytes(&spec);
        let dec: ActionSpec = from_bytes(enc).unwrap();
        prop_assert_eq!(dec, spec);
    }

    #[test]
    fn byte_size_display_parse_round_trips(n in 0u64..u64::MAX / 2048) {
        let size = ByteSize::bytes(n);
        let parsed: ByteSize = size.to_string().parse().unwrap();
        // Display rounds to 2 decimals above 1 MiB: allow 1% error.
        let err = parsed.as_u64().abs_diff(n);
        prop_assert!(err as f64 <= (n as f64) * 0.01 + 8.0, "{n} vs {}", parsed.as_u64());
    }
}

// ---------------------------------------------------------------------------
// Split framing: header/payload parts reassemble at any cut point, match the
// inline encoding byte-for-byte, and stay zero-copy on both ends.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn split_encoding_matches_inline_for_requests(
        id in any::<u64>(),
        trace_id in any::<u64>(),
        body in arb_request_body(),
    ) {
        let frame = Frame::Request(Request { id, trace_id, body });
        let (header, payload) = encode_frame_parts(&frame);
        let mut joined = BytesMut::from(&header[..]);
        if let Some(p) = &payload {
            joined.extend_from_slice(p);
        }
        let mut inline = BytesMut::new();
        encode_frame(&frame, &mut inline);
        prop_assert_eq!(&joined, &inline);
        let decoded = decode_frame(&mut joined).unwrap().unwrap();
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn split_encoding_matches_inline_for_responses(
        id in any::<u64>(),
        body in arb_response_body(),
    ) {
        let frame = Frame::Response(Response { id, body });
        let (header, payload) = encode_frame_parts(&frame);
        let mut joined = BytesMut::from(&header[..]);
        if let Some(p) = &payload {
            joined.extend_from_slice(p);
        }
        let mut inline = BytesMut::new();
        encode_frame(&frame, &mut inline);
        prop_assert_eq!(&joined, &inline);
        let decoded = decode_frame(&mut joined).unwrap().unwrap();
        prop_assert_eq!(decoded, frame);
    }
}

proptest! {
    // 8 MiB payloads make each case real work; few cases suffice since the
    // interesting variation is (size, cut) not the byte values.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn split_framing_survives_any_cut_and_stays_zero_copy(
        id in any::<u64>(),
        size in prop::sample::select(vec![0usize, 1, 64 * 1024, 8 * 1024 * 1024]),
        cut_frac in 0.0f64..1.0,
        fill in any::<u8>(),
        as_request in any::<bool>(),
    ) {
        let data = Bytes::from(vec![fill; size]);
        let frame = if as_request {
            Frame::Request(Request {
                id,
                trace_id: 0,
                body: RequestBody::WriteBlock {
                    block_id: BlockId(3),
                    offset: 9,
                    data: data.clone(),
                },
            })
        } else {
            Frame::Response(Response {
                id,
                body: ResponseBody::Data {
                    seq: 7,
                    bytes: data.clone(),
                    eof: true,
                },
            })
        };

        // Encode-side zero copy: the out-of-band part is the caller's
        // allocation, not a staged copy.
        let (header, payload) = encode_frame_parts(&frame);
        let payload = payload.expect("payload-carrying frame");
        if size > 0 {
            prop_assert_eq!(payload.as_ptr(), data.as_ptr());
        }
        prop_assert_eq!(payload.len(), size);

        // Deliver the wire bytes in two arbitrary slices, as a socket would.
        let mut wire = BytesMut::from(&header[..]);
        wire.extend_from_slice(&payload);
        let cut = ((wire.len() as f64) * cut_frac) as usize;
        let full = wire.len();
        let mut rx = BytesMut::from(&wire[..cut]);
        if cut < full {
            prop_assert_eq!(decode_frame(&mut rx).unwrap(), None);
            prop_assert_eq!(rx.len(), cut, "partial decode consumed bytes");
        }
        rx.extend_from_slice(&wire[cut..]);
        let range = rx.as_ptr() as usize..rx.as_ptr() as usize + rx.len();
        let decoded = decode_frame(&mut rx).unwrap().unwrap();
        prop_assert!(rx.is_empty());

        // Decode-side zero copy: the payload is a slice of the receive
        // buffer, not a fresh allocation.
        let bytes = match &decoded {
            Frame::Request(Request { body: RequestBody::WriteBlock { data, .. }, .. }) => data,
            Frame::Response(Response { body: ResponseBody::Data { bytes, .. }, .. }) => bytes,
            other => panic!("unexpected {other:?}"),
        };
        if size > 0 {
            let ptr = bytes.as_ptr() as usize;
            prop_assert!(
                range.contains(&ptr) && range.contains(&(ptr + bytes.len() - 1)),
                "decoded payload escaped the receive buffer"
            );
        }
        prop_assert_eq!(decoded, frame);
    }
}

// ---------------------------------------------------------------------------
// Namespace vs a flat model.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum NsOp {
    CreateDir(u8),
    CreateFile(u8, u8),
    Delete(u8),
}

fn arb_ns_ops() -> impl Strategy<Value = Vec<NsOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..6).prop_map(NsOp::CreateDir),
            (0u8..6, 0u8..6).prop_map(|(d, f)| NsOp::CreateFile(d, f)),
            (0u8..6).prop_map(NsOp::Delete),
        ],
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn namespace_matches_flat_model(ops in arb_ns_ops()) {
        let mut ns = Namespace::new();
        let mut model: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for op in ops {
            match op {
                NsOp::CreateDir(d) => {
                    let path = format!("/d{d}");
                    let ours = ns.create(NodePath::parse(&path).unwrap(), NodeKind::Directory, None, None);
                    if model.contains(&path) {
                        prop_assert!(ours.is_err());
                    } else {
                        prop_assert!(ours.is_ok());
                        model.insert(path);
                    }
                }
                NsOp::CreateFile(d, f) => {
                    let dir = format!("/d{d}");
                    let path = format!("/d{d}/f{f}");
                    let ours = ns.create(NodePath::parse(&path).unwrap(), NodeKind::File, None, None);
                    if !model.contains(&dir) || model.contains(&path) {
                        prop_assert!(ours.is_err());
                    } else {
                        prop_assert!(ours.is_ok());
                        model.insert(path);
                    }
                }
                NsOp::Delete(d) => {
                    let path = format!("/d{d}");
                    let ours = ns.delete(&NodePath::parse(&path).unwrap());
                    if model.contains(&path) {
                        prop_assert!(ours.is_ok());
                        model.retain(|p| p != &path && !p.starts_with(&format!("{path}/")));
                    } else {
                        prop_assert!(ours.is_err());
                    }
                }
            }
            // Invariant: every model path resolves, nothing else does.
            for path in &model {
                prop_assert!(ns.lookup(&NodePath::parse(path).unwrap()).is_ok());
            }
            prop_assert_eq!(ns.len(), model.len() + 1); // + root
        }
    }
}

// ---------------------------------------------------------------------------
// Block store vs a byte-array model.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn block_store_matches_model(
        writes in proptest::collection::vec(
            (0u64..4, 0u64..200, proptest::collection::vec(any::<u8>(), 1..64)),
            1..30,
        )
    ) {
        const BLOCK: u64 = 256;
        let store = BlockStore::new(BLOCK, BlockId(1), 4);
        let mut model = vec![vec![0u8; BLOCK as usize]; 4];
        for (blk, off, data) in writes {
            let id = BlockId(1 + blk);
            let end = off + data.len() as u64;
            let result = store.write(id, off, Bytes::from(data.clone()));
            if end > BLOCK {
                prop_assert!(result.is_err());
            } else {
                prop_assert!(result.is_ok());
                model[blk as usize][off as usize..end as usize].copy_from_slice(&data);
            }
        }
        for blk in 0..4u64 {
            let got = store.read(BlockId(1 + blk), 0, BLOCK).unwrap();
            prop_assert_eq!(&got[..], &model[blk as usize][..]);
        }
    }
}

// ---------------------------------------------------------------------------
// Action input streams reassemble any arrival order by sequence number.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn input_stream_reassembles_any_permutation(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..16),
        shuffle_seed in any::<u64>(),
    ) {
        use glider_core::actions::stream::ActionInputStream;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;

        let rt = tokio::runtime::Builder::new_current_thread()
            .build()
            .expect("rt");
        rt.block_on(async {
            let (mut input, pusher) = ActionInputStream::new(64);
            let mut order: Vec<usize> = (0..chunks.len()).collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(shuffle_seed);
            order.shuffle(&mut rng);
            for &i in &order {
                pusher
                    .push(i as u64, Bytes::from(chunks[i].clone()))
                    .await
                    .unwrap();
            }
            pusher.finish();
            let got = input.read_all().await.unwrap();
            let expected: Vec<u8> = chunks.concat();
            prop_assert_eq!(got, expected);
            Ok(())
        })?;
    }

    #[test]
    fn sorter_action_agrees_with_std_sort(
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 6..7), 0..40),
        chunking in 1usize..13,
    ) {
        use glider_core::actions::{ActionManager, ActionRegistry};
        use glider_core::proto::types::{NodeId as NId, StreamDir as SDir};
        use std::sync::Arc as StdArc;

        let rt = tokio::runtime::Builder::new_current_thread()
            .build()
            .expect("rt");
        rt.block_on(async {
            let m = ActionManager::new(StdArc::new(ActionRegistry::with_builtins()), 2, None, None);
            m.create_action(
                NId(1),
                glider_core::ActionSpec::new("sorter", false).with_params("record=6;key=3"),
            )
            .await
            .unwrap();
            let payload: Vec<u8> = records.concat();
            let sid = m.open_stream(NId(1), SDir::Write).await.unwrap();
            for (i, chunk) in payload.chunks(chunking).enumerate() {
                m.push_chunk(sid, i as u64, Bytes::copy_from_slice(chunk))
                    .await
                    .unwrap();
            }
            m.close_stream(sid).await.unwrap();

            let rid = m.open_stream(NId(1), SDir::Read).await.unwrap();
            let mut got = Vec::new();
            loop {
                let (_seq, bytes, eof) = m.fetch(rid, 1 << 20).await.unwrap();
                got.extend_from_slice(&bytes);
                if eof {
                    break;
                }
            }
            m.close_stream(rid).await.unwrap();

            let mut expected = records.clone();
            expected.sort_by(|a, b| a[..3].cmp(&b[..3]));
            let expected: Vec<u8> = expected.concat();
            prop_assert_eq!(got, expected);
            Ok(())
        })?;
    }
}

// ---------------------------------------------------------------------------
// Sort partitioning + sorter action agree with std sort.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn multiset_checksum_detects_any_single_change(
        mut records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 4..8), 2..20),
        idx in any::<prop::sample::Index>(),
    ) {
        use glider_analytics::text::multiset_checksum;
        let original = multiset_checksum(records.iter().map(|r| r.as_slice()));
        let i = idx.index(records.len());
        records[i].push(0xFF);
        let mutated = multiset_checksum(records.iter().map(|r| r.as_slice()));
        // Not cryptographic, but single-record mutations must virtually
        // always be caught.
        prop_assert_ne!(original, mutated);
    }
}
