//! Fault-tolerance of the RPC and data planes (DESIGN.md §10): a storage
//! server killed mid-stream is healed by the writer through extent
//! replacement, the lease sweeper reports it dead, and best-effort paths
//! (delete, lookup-cache eviction) degrade gracefully.
//!
//! Note: the first test installs the process-global [`CapturingSubscriber`];
//! it only asserts span *presence*, so spans leaking in from the other
//! tests in this binary are harmless.

use bytes::Bytes;
use glider_core::{ByteSize, Cluster, ClusterConfig, ErrorCode, StoreClient};
use glider_trace::CapturingSubscriber;
use std::time::{Duration, Instant};

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i.wrapping_mul(31) % 251) as u8).collect()
}

/// Poll the cluster metrics until at least one server is reported dead.
async fn await_dead(cluster: &Cluster, deadline: Duration) {
    let start = Instant::now();
    loop {
        if cluster.metrics().snapshot().servers_dead >= 1 {
            return;
        }
        assert!(
            start.elapsed() < deadline,
            "no server reported dead within {deadline:?}"
        );
        tokio::time::sleep(Duration::from_millis(20)).await;
    }
}

/// Killing one of two data servers mid-stream: the writer replaces the
/// affected extents on the survivor, the stream completes, the data reads
/// back intact, and the recovery left a trace span.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn writer_survives_storage_server_death_mid_stream() {
    let sub = CapturingSubscriber::install();
    let lease = Duration::from_millis(300);
    let cluster = Cluster::start(
        ClusterConfig::default()
            .with_block_size(ByteSize::kib(64))
            .with_data(2, 256)
            .with_lease(lease),
    )
    .await
    .unwrap();
    let store = cluster.client().await.unwrap();

    let total = 1024 * 1024;
    let data = Bytes::from(pattern(total));
    let file = store.create_file("/chaos").await.unwrap();
    let mut out = file.output_stream().await.unwrap();

    // First quarter-block: the current extent is still open (uncommitted),
    // so no data is lost when its server dies.
    out.write(data.slice(0..16 * 1024)).await.unwrap();
    cluster.data_servers()[0].shutdown();

    let mut off = 16 * 1024;
    while off < total {
        let end = (off + 32 * 1024).min(total);
        out.write(data.slice(off..end)).await.unwrap();
        off = end;
    }
    let written = out.close().await.unwrap();
    assert_eq!(written, total as u64);

    // Every byte survived via replacement on the live server.
    let back = file.read_all().await.unwrap();
    assert_eq!(back.len(), total);
    assert_eq!(back, data, "read-back differs after mid-stream failover");

    // The recovery is visible in the trace tree.
    assert!(
        sub.spans().iter().any(|s| s.name == "writer.recover"),
        "no writer.recover span recorded"
    );

    // The lease sweeper notices the silent server.
    await_dead(&cluster, Duration::from_secs(10)).await;
}

/// Deleting a node whose blocks live on an unreachable server still
/// removes the node: block release is best-effort (the data was ephemeral
/// and died with the server anyway).
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn delete_succeeds_with_unreachable_storage_server() {
    let cluster = Cluster::start(
        ClusterConfig::default()
            .with_block_size(ByteSize::kib(16))
            .with_data(1, 64),
    )
    .await
    .unwrap();
    let store = cluster.client().await.unwrap();
    let file = store.create_file("/doomed").await.unwrap();
    file.write_all(Bytes::from(pattern(64 * 1024)))
        .await
        .unwrap();

    cluster.data_servers()[0].shutdown();
    tokio::time::sleep(Duration::from_millis(50)).await;

    store.delete("/doomed").await.unwrap();
    assert_eq!(
        store.lookup("/doomed").await.unwrap_err().code(),
        ErrorCode::NotFound
    );
}

/// An authoritative NotFound evicts the stale lookup-cache entry, so a
/// later re-creation under the same path is observed fresh.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn authoritative_not_found_evicts_lookup_cache_entry() {
    let cluster = Cluster::start(
        ClusterConfig::default()
            .with_block_size(ByteSize::kib(16))
            .with_data(1, 64),
    )
    .await
    .unwrap();
    let ttl = Duration::from_millis(50);
    let a = StoreClient::connect(cluster.client_config().with_lookup_cache_ttl(Some(ttl)))
        .await
        .unwrap();
    let b = cluster.client().await.unwrap();

    let f = b.create_file("/ghost").await.unwrap();
    f.write_all(Bytes::from_static(b"old")).await.unwrap();
    assert_eq!(a.lookup("/ghost").await.unwrap().size, 3);

    // Another client deletes the node behind a's back.
    b.delete("/ghost").await.unwrap();
    tokio::time::sleep(ttl + Duration::from_millis(20)).await;
    assert_eq!(
        a.lookup("/ghost").await.unwrap_err().code(),
        ErrorCode::NotFound
    );

    // Re-create under the same path: a sees the fresh node, not a ghost.
    let f2 = b.create_file("/ghost").await.unwrap();
    f2.write_all(Bytes::from_static(b"fresh")).await.unwrap();
    assert_eq!(a.lookup("/ghost").await.unwrap().size, 5);
}

/// The issue's acceptance scenario, gated behind GLIDER_CHAOS=1 because of
/// its size: one of two DRAM servers is killed mid-way through a 64 MiB
/// FileWriter stream; the stream completes via re-allocation and the dead
/// server is reported non-live within two lease periods.
#[tokio::test(flavor = "multi_thread", worker_threads = 8)]
async fn chaos_kill_one_of_two_servers_mid_64mib_stream() {
    if std::env::var("GLIDER_CHAOS").as_deref() != Ok("1") {
        eprintln!("skipping chaos test; set GLIDER_CHAOS=1 to run");
        return;
    }
    let lease = Duration::from_millis(500);
    let cluster = Cluster::start(
        ClusterConfig::default()
            .with_block_size(ByteSize::mib(1))
            .with_data(2, 96)
            .with_lease(lease),
    )
    .await
    .unwrap();
    let store = cluster.client().await.unwrap();

    let total = 64 * 1024 * 1024;
    let data = Bytes::from(pattern(total));
    let file = store.create_file("/chaos64").await.unwrap();
    let mut out = file.output_stream().await.unwrap();

    out.write(data.slice(0..256 * 1024)).await.unwrap();
    cluster.data_servers()[0].shutdown();
    let killed_at = Instant::now();
    // Watch for the sweeper's verdict concurrently with the stream so the
    // "within two lease periods" bound is measured from the kill, not from
    // whenever the 64 MiB write happens to finish.
    let metrics = std::sync::Arc::clone(cluster.metrics());
    let dead_at = tokio::spawn(async move {
        loop {
            if metrics.snapshot().servers_dead >= 1 {
                return Instant::now();
            }
            tokio::time::sleep(Duration::from_millis(20)).await;
        }
    });

    let mut off = 256 * 1024;
    while off < total {
        let end = (off + 1024 * 1024).min(total);
        out.write(data.slice(off..end)).await.unwrap();
        off = end;
    }
    assert_eq!(out.close().await.unwrap(), total as u64);

    // Non-live within two lease periods of going silent (plus sweep and
    // scheduling slack).
    let dead_at = tokio::time::timeout(Duration::from_secs(30), dead_at)
        .await
        .expect("no server reported dead within 30s")
        .unwrap();
    assert!(
        dead_at - killed_at <= 2 * lease + Duration::from_secs(1),
        "server reported dead only after {:?}",
        dead_at - killed_at
    );

    let back = file.read_all().await.unwrap();
    assert_eq!(back.len(), total);
    assert_eq!(back, data, "read-back differs after chaos failover");
}
