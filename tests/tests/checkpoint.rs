//! Action checkpointing — the fault-tolerance mechanism the paper leaves
//! to action developers (§4.2), exercised end to end.

use bytes::Bytes;
use glider_core::{ActionSpec, Cluster, ClusterConfig, ErrorCode};

fn ckpt_spec() -> ActionSpec {
    ActionSpec::new("merge-ckpt", true).with_params("ckpt=/ckpt/merge-state")
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn checkpointed_action_survives_object_replacement() {
    let cluster = Cluster::start(ClusterConfig::default()).await.unwrap();
    let store = cluster.client().await.unwrap();
    store.create_dir("/ckpt").await.unwrap();

    let action = store.create_action("/agg", ckpt_spec()).await.unwrap();
    action
        .write_all(Bytes::from_static(b"1,10\n2,20\n"))
        .await
        .unwrap();
    action
        .write_all(Bytes::from_static(b"1,5\n"))
        .await
        .unwrap();

    // Simulate the action object being lost (server reclaim / failure):
    // remove the object, then re-instantiate the same definition.
    action.delete_object().await.unwrap();
    assert_eq!(
        action.read_all().await.unwrap_err().code(),
        ErrorCode::NotFound
    );
    action.create_object(ckpt_spec()).await.unwrap();

    // on_create restored the dictionary from the checkpoint file.
    let restored = action.read_all().await.unwrap();
    assert_eq!(String::from_utf8(restored).unwrap(), "1,15\n2,20\n");

    // And it keeps aggregating on top of the restored state.
    action
        .write_all(Bytes::from_static(b"2,1\n"))
        .await
        .unwrap();
    let after = action.read_all().await.unwrap();
    assert_eq!(String::from_utf8(after).unwrap(), "1,15\n2,21\n");
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn checkpoint_reflects_only_completed_write_barriers() {
    let cluster = Cluster::start(ClusterConfig::default()).await.unwrap();
    let store = cluster.client().await.unwrap();
    store.create_dir("/ckpt").await.unwrap();
    let action = store.create_action("/agg", ckpt_spec()).await.unwrap();

    // A closed stream is checkpointed...
    action
        .write_all(Bytes::from_static(b"7,7\n"))
        .await
        .unwrap();
    // ...an open stream is not (drop the writer without close).
    let mut dangling = action.output_stream().await.unwrap();
    dangling.write(Bytes::from_static(b"9,9\n")).await.unwrap();
    drop(dangling);

    // The checkpoint file holds exactly the barrier state.
    let ckpt = store.lookup_file("/ckpt/merge-state").await.unwrap();
    let persisted = ckpt.read_all().await.unwrap();
    assert_eq!(String::from_utf8(persisted).unwrap(), "7,7\n");
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn checkpointed_action_without_prior_state_starts_empty() {
    let cluster = Cluster::start(ClusterConfig::default()).await.unwrap();
    let store = cluster.client().await.unwrap();
    store.create_dir("/ckpt").await.unwrap();
    let action = store.create_action("/fresh", ckpt_spec()).await.unwrap();
    assert!(action.read_all().await.unwrap().is_empty());
}
