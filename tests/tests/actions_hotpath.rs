//! The reworked action execution hot path under stress (DESIGN.md §14):
//! a slow consumer throttles its producer through the bounded per-stream
//! queue and batch credits instead of buffering without bound, and an
//! action pipeline whose near-data output write loses a storage server
//! mid-stream heals through the writer's extent-replacement machinery.

use futures::future::BoxFuture;
use glider_actions::stream::{ActionInputStream, ActionOutputStream};
use glider_actions::{Action, ActionCell, ActionContext, ActionRegistry};
use glider_core::{ActionSpec, ByteSize, Cluster, ClusterConfig, GliderResult, StoreClient};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counts bytes like the builtin `counter`, but takes a millisecond per
/// delivered record — a deliberately slow consumer.
#[derive(Default)]
struct SlowDrainAction {
    total: ActionCell<u64>,
}

impl Action for SlowDrainAction {
    fn on_write<'a>(
        &'a self,
        input: &'a mut ActionInputStream,
        _ctx: &'a ActionContext,
    ) -> BoxFuture<'a, GliderResult<()>> {
        Box::pin(async move {
            while let Some(chunk) = input.next_chunk().await? {
                tokio::time::sleep(Duration::from_millis(1)).await;
                self.total.with(|t| *t += chunk.len() as u64);
            }
            Ok(())
        })
    }

    fn on_read<'a>(
        &'a self,
        output: &'a mut ActionOutputStream,
        _ctx: &'a ActionContext,
    ) -> BoxFuture<'a, GliderResult<()>> {
        Box::pin(async move {
            output
                .write_all(self.total.get().to_string().as_bytes())
                .await
        })
    }
}

/// A fast producer against a slow action must be paced by stream credits:
/// the bounded input queue (64 records) plus the one batch in flight cap
/// how far the writer can run ahead, so the write loop takes roughly as
/// long as the consumer instead of completing instantly and parking the
/// whole payload in server memory.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn slow_action_throttles_producer_via_stream_credits() {
    const RECORDS: u64 = 600;
    const RECORD_BYTES: usize = 1024;

    let registry = ActionRegistry::with_builtins();
    registry.register(
        "slow-drain",
        Arc::new(|_spec| Ok(Arc::new(SlowDrainAction::default()) as Arc<dyn Action>)),
    );
    let cluster = Cluster::start(
        ClusterConfig::default()
            .with_data(1, 64)
            .with_active(1, 8)
            .with_registry(Arc::new(registry)),
    )
    .await
    .unwrap();

    let store = StoreClient::connect(cluster.client_config().with_chunk_size(ByteSize::kib(8)))
        .await
        .unwrap();
    store
        .create_action("/slow", ActionSpec::new("slow-drain", false))
        .await
        .unwrap();
    let action = store.lookup_action("/slow").await.unwrap();

    let record = vec![0x5au8; RECORD_BYTES];
    let mut out = action.output_stream().await.unwrap();
    let start = Instant::now();
    for _ in 0..RECORDS {
        out.write_record(&record).await.unwrap();
    }
    let write_loop = start.elapsed();
    let written = out.close().await.unwrap();
    assert_eq!(written, RECORDS * RECORD_BYTES as u64);

    // Each record costs the consumer ≥1ms, serially. The producer can be
    // ahead by at most the input queue (64 records), the batch being
    // pushed and the batch being built (8 records each at 8 KiB chunks),
    // so finishing the loop requires ≥ ~520 consumed records. Anything
    // near-instant here would mean the backpressure is gone. (Sleeps
    // never undershoot, so this lower bound is not timing-flaky.)
    assert!(
        write_loop >= Duration::from_millis(400),
        "write loop finished in {write_loop:?}; producer was not throttled"
    );

    // Every byte was delivered and counted despite the throttling.
    let summary = action.read_all().await.unwrap();
    let counted: u64 = String::from_utf8_lossy(&summary).trim().parse().unwrap();
    assert_eq!(counted, RECORDS * RECORD_BYTES as u64);

    // The instrumentation saw the instance and its mailbox stayed shallow:
    // chunks ride the credit-bounded stream queue, not the invocation
    // mailbox, so enqueue-time depth hugs the lowest buckets.
    let s = cluster.metrics().snapshot();
    assert!(s.action_instances_peak >= 1);
    assert!(s.mailbox_depth.count() >= 1, "no mailbox depth recorded");
    assert!(
        s.mailbox_depth.max() <= 8,
        "mailbox depth {} suggests invocations piled up",
        s.mailbox_depth.max()
    );
}

fn record_at(i: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| (i.wrapping_mul(31) + j.wrapping_mul(7)) as u8 % 251)
        .collect()
}

/// Poll the cluster metrics until at least one server is reported dead.
async fn await_dead(cluster: &Cluster, deadline: Duration) {
    let start = Instant::now();
    loop {
        if cluster.metrics().snapshot().servers_dead >= 1 {
            return;
        }
        assert!(
            start.elapsed() < deadline,
            "no server reported dead within {deadline:?}"
        );
        tokio::time::sleep(Duration::from_millis(20)).await;
    }
}

/// Chaos: a sorter pipeline whose `out=` file write runs near-data loses
/// one of two storage servers after ingest but before the sort is
/// triggered, so the intra-cluster writer keeps hitting the dead server's
/// allocations mid-stream and must heal every extent onto the survivor.
/// Gated behind GLIDER_CHAOS=1 with the rest of the kill tests.
#[tokio::test(flavor = "multi_thread", worker_threads = 8)]
async fn chaos_sorter_pipeline_survives_storage_server_death() {
    if std::env::var("GLIDER_CHAOS").as_deref() != Ok("1") {
        eprintln!("skipping chaos test; set GLIDER_CHAOS=1 to run");
        return;
    }
    const RECORD_LEN: usize = 100;
    const KEY_LEN: usize = 10;
    const RECORDS: usize = 3000;

    let lease = Duration::from_millis(400);
    let cluster = Cluster::start(
        ClusterConfig::default()
            .with_block_size(ByteSize::kib(32))
            .with_data(2, 64)
            .with_lease(lease),
    )
    .await
    .unwrap();
    let store = cluster.client().await.unwrap();
    store
        .create_action(
            "/sort",
            ActionSpec::new("sorter", false)
                .with_params(format!("out=/sorted;record={RECORD_LEN};key={KEY_LEN}")),
        )
        .await
        .unwrap();
    let action = store.lookup_action("/sort").await.unwrap();

    // Ingest: the records buffer inside the action, off the data servers.
    let mut data = Vec::with_capacity(RECORDS * RECORD_LEN);
    let mut out = action.output_stream().await.unwrap();
    for i in 0..RECORDS {
        let rec = record_at(i, RECORD_LEN);
        out.write_record(&rec).await.unwrap();
        data.extend_from_slice(&rec);
    }
    assert_eq!(out.close().await.unwrap(), (RECORDS * RECORD_LEN) as u64);

    // Kill one server before triggering the sort: the lease has not
    // expired, so the near-data output writer is still handed allocations
    // on the corpse and must replace them on the survivor, mid-stream.
    cluster.data_servers()[0].shutdown();
    tokio::time::sleep(Duration::from_millis(50)).await;

    let summary = action.read_all().await.unwrap();
    let summary = String::from_utf8_lossy(&summary);
    assert!(
        summary.starts_with(&format!("records={RECORDS} ")),
        "unexpected sorter summary: {summary}"
    );

    // The sorted file is complete and correctly ordered despite the death:
    // the sorter's stable sort by key must match one computed client-side.
    let back = store
        .lookup_file("/sorted")
        .await
        .unwrap()
        .read_all()
        .await
        .unwrap();
    assert_eq!(back.len(), RECORDS * RECORD_LEN);
    let mut expected: Vec<&[u8]> = data.chunks(RECORD_LEN).collect();
    expected.sort_by_key(|r| &r[..KEY_LEN]);
    assert_eq!(
        back,
        expected.concat(),
        "sorted output differs after failover"
    );

    // The lease sweeper eventually notices the silent server.
    await_dead(&cluster, Duration::from_secs(10)).await;
}
