//! Baseline/Glider equivalence and indicator relations for every
//! workload pair, at tiny scale (the full sweeps are the bench
//! harnesses).

use glider_analytics::genomics::{self, GenomicsConfig};
use glider_analytics::pipeline::{self, PipelineConfig};
use glider_analytics::reduce::{self, ReduceConfig};
use glider_analytics::sort::{self, SortConfig};
use glider_util::ByteSize;

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn table2_pipeline_pair() {
    let cfg = PipelineConfig {
        workers: 2,
        bytes_per_worker: ByteSize::kib(512),
        selectivity: 0.01,
        seed: 1,
        rdma: false,
        worker_bandwidth_mibps: None,
    };
    let base = pipeline::run_baseline(&cfg).await.unwrap();
    let glider = pipeline::run_glider(&cfg).await.unwrap();
    assert_eq!(base.total_words, glider.total_words);
    // Table 2 shape: worker ingestion collapses.
    assert!(
        glider.report.metrics.compute_ingress_bytes() * 10
            < base.report.metrics.compute_ingress_bytes()
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn fig5_reduce_pair() {
    let cfg = ReduceConfig {
        workers: 2,
        pairs_per_worker: 10_000,
        key_cardinality: 128,
        seed: 2,
    };
    let base = reduce::run_baseline(&cfg).await.unwrap();
    let glider = reduce::run_glider(&cfg).await.unwrap();
    assert_eq!(base.dictionary, glider.dictionary);
    // Fig. 5 shape: roughly half the transfers, far lower utilization.
    assert!(glider.report.tier_crossing_bytes() < base.report.tier_crossing_bytes());
    assert!(glider.report.peak_utilization() * 10 < base.report.peak_utilization());
    assert!(glider.report.storage_accesses() < base.report.storage_accesses());
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn fig7_sort_pair() {
    let cfg = SortConfig {
        workers: 2,
        records_per_worker: 2_000,
        seed: 3,
    };
    let base = sort::run_baseline(&cfg).await.unwrap();
    let glider = sort::run_glider(&cfg).await.unwrap();
    assert_eq!(base.output_checksum, glider.output_checksum);
    assert_eq!(base.output_checksum, sort::input_checksum(&cfg));
    assert!(glider.report.tier_crossing_bytes() < base.report.tier_crossing_bytes());
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn fig9_genomics_pair() {
    let cfg = GenomicsConfig {
        fasta_chunks: 1,
        fastq_chunks: 3,
        reducers_per_chunk: 2,
        records_per_map: 3_000,
        chunk_span: 20_000,
        seed: 4,
        map_bandwidth_mibps: None,
        reduce_bandwidth_mibps: None,
    };
    let base = genomics::run_baseline(&cfg).await.unwrap();
    let glider = genomics::run_glider(&cfg).await.unwrap();
    assert_eq!(base.variants_checksum, glider.variants_checksum);
    assert!(base.total_variant_lines > 0);
    // The baseline needs sampler functions; Glider does not.
    assert!(glider.invocations < base.invocations);
    // Only the baseline pays SELECT scans.
    assert!(base.report.metrics.object_scanned > 0);
    assert_eq!(glider.report.metrics.object_scanned, 0);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn genomics_respects_bandwidth_caps() {
    // The same workload with a tight function bandwidth cap must be
    // measurably slower — the paper's "limited bandwidth of FaaS".
    // ~3 MiB per map task so the 1 MiB/s cap (with its 1 MiB burst)
    // actually bites.
    let fast_cfg = GenomicsConfig {
        fasta_chunks: 1,
        fastq_chunks: 2,
        reducers_per_chunk: 1,
        records_per_map: 150_000,
        chunk_span: 20_000,
        seed: 5,
        map_bandwidth_mibps: None,
        reduce_bandwidth_mibps: None,
    };
    let mut slow_cfg = fast_cfg.clone();
    slow_cfg.map_bandwidth_mibps = Some(1); // 1 MiB/s
    let fast = genomics::run_baseline(&fast_cfg).await.unwrap();
    let slow = genomics::run_baseline(&slow_cfg).await.unwrap();
    assert_eq!(fast.variants_checksum, slow.variants_checksum);
    assert!(
        slow.report.phase("map").unwrap() > fast.report.phase("map").unwrap() * 2,
        "slow {:?} vs fast {:?}",
        slow.report.phase("map"),
        fast.report.phase("map")
    );
}
