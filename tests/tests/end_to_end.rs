//! Whole-cluster lifecycle tests over real RPC.

use bytes::Bytes;
use glider_core::{
    ActionSpec, ByteSize, Cluster, ClusterConfig, ErrorCode, GliderError, StoreClient,
};

async fn small_cluster() -> Cluster {
    Cluster::start(
        ClusterConfig::default()
            .with_block_size(ByteSize::kib(64))
            .with_data(2, 256)
            .with_active(1, 16),
    )
    .await
    .expect("cluster")
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn namespace_tree_operations() {
    let cluster = small_cluster().await;
    let store = cluster.client().await.unwrap();

    store.create_dir_all("/a/b/c").await.unwrap();
    store.create_dir_all("/a/b/c").await.unwrap(); // idempotent
    store.create_file("/a/b/c/f1").await.unwrap();
    store.create_file("/a/b/f2").await.unwrap();
    assert_eq!(store.list("/a/b").await.unwrap(), vec!["c", "f2"]);
    assert_eq!(store.list("/a/b/c").await.unwrap(), vec!["f1"]);

    // Kind checks on lookup.
    assert_eq!(
        store.lookup_action("/a/b/f2").await.unwrap_err().code(),
        ErrorCode::WrongNodeKind
    );
    assert_eq!(
        store.lookup_file("/a/b").await.unwrap_err().code(),
        ErrorCode::WrongNodeKind
    );

    // Recursive delete clears the subtree.
    store.delete("/a").await.unwrap();
    assert_eq!(
        store.lookup("/a/b/c/f1").await.unwrap_err().code(),
        ErrorCode::NotFound
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn large_file_spans_servers_and_survives_read_back() {
    let cluster = small_cluster().await;
    let store = cluster.client().await.unwrap();
    let data: Vec<u8> = (0..1_000_000u32).map(|i| (i * 7 % 251) as u8).collect();
    let file = store.create_file("/big").await.unwrap();
    file.write_all(Bytes::from(data.clone())).await.unwrap();

    let info = store.lookup("/big").await.unwrap();
    assert_eq!(info.size, 1_000_000);
    assert!(info.blocks.len() >= 15);
    let distinct_servers: std::collections::HashSet<_> =
        info.blocks.iter().map(|b| b.loc.server_id).collect();
    assert_eq!(distinct_servers.len(), 2, "round robin across data servers");

    assert_eq!(file.read_all().await.unwrap(), data);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn action_state_survives_many_operations_until_recreate() {
    let cluster = small_cluster().await;
    let store = cluster.client().await.unwrap();
    let action = store
        .create_action("/acc", ActionSpec::new("counter", false))
        .await
        .unwrap();
    for _ in 0..10 {
        action
            .write_all(Bytes::from_static(b"xxxxx"))
            .await
            .unwrap();
    }
    assert_eq!(action.read_all().await.unwrap(), b"50");

    // The paper's recreate-to-clear-state flow: delete the object, create
    // a fresh one in the same node.
    action.delete_object().await.unwrap();
    let err = action.read_all().await.unwrap_err();
    assert_eq!(err.code(), ErrorCode::NotFound);
    action
        .create_object(ActionSpec::new("counter", false))
        .await
        .unwrap();
    assert_eq!(action.read_all().await.unwrap(), b"0");
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn storage_capacity_exhaustion_is_reported() {
    let cluster = Cluster::start(
        ClusterConfig::default()
            .with_block_size(ByteSize::kib(16))
            .with_data(1, 4),
    )
    .await
    .unwrap();
    let store = cluster.client().await.unwrap();
    let file = store.create_file("/fill").await.unwrap();
    let mut out = file.output_stream().await.unwrap();
    // 4 blocks of 16 KiB = 64 KiB capacity; writing 80 KiB must fail.
    let result = async {
        out.write(Bytes::from(vec![0u8; 80 * 1024])).await?;
        out.close().await?;
        Ok::<u64, GliderError>(0)
    }
    .await;
    assert_eq!(result.unwrap_err().code(), ErrorCode::OutOfCapacity);
    // Deleting returns the capacity.
    store.delete("/fill").await.unwrap();
    let file2 = store.create_file("/fits").await.unwrap();
    file2
        .write_all(Bytes::from(vec![0u8; 60 * 1024]))
        .await
        .unwrap();
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn two_independent_clusters_coexist() {
    let a = small_cluster().await;
    let b = small_cluster().await;
    let sa = a.client().await.unwrap();
    let sb = b.client().await.unwrap();
    sa.create_file("/x").await.unwrap();
    assert_eq!(
        sb.lookup("/x").await.unwrap_err().code(),
        ErrorCode::NotFound
    );
    sb.create_file("/x").await.unwrap();
    a.shutdown();
    // Cluster b still works after a is gone.
    sb.lookup("/x").await.unwrap();
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn client_observes_shutdown_as_closed() {
    let cluster = small_cluster().await;
    let store = cluster.client().await.unwrap();
    store.create_file("/pre").await.unwrap();
    cluster.shutdown();
    tokio::time::sleep(std::time::Duration::from_millis(50)).await;
    let err = store.create_file("/post").await.unwrap_err();
    assert_eq!(err.code(), ErrorCode::Closed);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn intra_storage_clients_do_not_count_accesses() {
    let cluster = small_cluster().await;
    let compute = cluster.client().await.unwrap();
    compute.create_file("/f").await.unwrap();
    let before = cluster.metrics().snapshot().storage_accesses();
    // A storage-tier client (like the one actions get) reads the file.
    let storage_side = StoreClient::connect(cluster.client_config().intra_storage())
        .await
        .unwrap();
    let f = storage_side.lookup_file("/f").await.unwrap();
    let _ = f.read_all().await.unwrap();
    let after = cluster.metrics().snapshot().storage_accesses();
    assert_eq!(before, after, "intra-storage reads are not worker accesses");
}
