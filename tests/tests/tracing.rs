//! End-to-end tracing: one client operation must yield a connected span
//! tree — client.call → rpc.dispatch → active.handle → action.queue →
//! action.run — all sharing a single trace id.
//!
//! This file holds exactly one test: the trace subscriber is
//! process-global, and a second test running concurrently in the same
//! binary would see (and pollute) the capture buffer.

use glider_core::proto::types::ActionSpec;
use glider_core::{Cluster, ClusterConfig};
use glider_trace::{set_subscriber, CapturingSubscriber, SpanRecord};
use std::collections::HashMap;
use std::time::Duration;

const TREE: [&str; 5] = [
    "client.call",
    "rpc.dispatch",
    "active.handle",
    "action.queue",
    "action.run",
];

/// Groups spans by trace id and returns the first group containing every
/// span name of the expected tree.
fn find_full_trace(spans: &[SpanRecord]) -> Option<Vec<SpanRecord>> {
    let mut by_trace: HashMap<u64, Vec<SpanRecord>> = HashMap::new();
    for s in spans {
        by_trace.entry(s.trace_id).or_default().push(s.clone());
    }
    by_trace.into_values().find(|group| {
        TREE.iter()
            .all(|name| group.iter().any(|s| s.name == *name))
    })
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn one_client_op_produces_a_connected_span_tree() {
    let sub = CapturingSubscriber::install();

    let cluster = Cluster::start(ClusterConfig::default()).await.unwrap();
    let store = cluster.client().await.unwrap();
    let merge = store
        .create_action("/traced", ActionSpec::new("merge", false))
        .await
        .unwrap();
    merge
        .write_all(bytes::Bytes::from_static(b"5,1\n5,2\n"))
        .await
        .unwrap();

    // Server-side spans (action.run in particular) close asynchronously
    // after the client's call returns; poll briefly for the full tree.
    let mut group = None;
    for _ in 0..100 {
        group = find_full_trace(&sub.spans());
        if group.is_some() {
            break;
        }
        tokio::time::sleep(Duration::from_millis(20)).await;
    }
    set_subscriber(None);
    cluster.shutdown();

    let group = group.unwrap_or_else(|| {
        panic!(
            "no trace contains the full span tree; captured: {:?}",
            sub.spans()
                .iter()
                .map(|s| (s.name, s.trace_id))
                .collect::<Vec<_>>()
        )
    });
    let by_name = |n: &str| group.iter().find(|s| s.name == n).unwrap();

    let root = by_name("client.call");
    assert_eq!(root.parent_span, 0, "client.call is the root");
    assert!(!root.remote);

    let dispatch = by_name("rpc.dispatch");
    assert!(
        dispatch.remote,
        "dispatch continues the trace over the wire"
    );
    assert_eq!(dispatch.parent_span, 0, "its parent lives in the client");

    assert_eq!(by_name("active.handle").parent_span, dispatch.span_id);
    assert_eq!(
        by_name("action.queue").parent_span,
        by_name("active.handle").span_id
    );
    assert_eq!(
        by_name("action.run").parent_span,
        by_name("action.queue").span_id
    );

    // Every span of the tree shares the root's trace id (by construction
    // of the grouping, but assert it explicitly for the reader).
    assert!(group.iter().all(|s| s.trace_id == root.trace_id));
}
