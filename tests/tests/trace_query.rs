//! The trace query plane end to end (DESIGN.md §13): `StoreClient::trace`
//! must reassemble one request's spans from every server's flight
//! recorder into a single connected tree, exemplar trace ids surfaced by
//! `MetricsSeries` must resolve back through that same path, and a
//! severed server must degrade the dump — partial trace plus an event
//! naming the unreachable address — rather than hang or fail it.
//!
//! The flight recorder is process-global (installed by `Cluster::start`),
//! so both tests filter strictly by their own trace ids.

use glider_core::proto::dump::SpanDump;
use glider_core::proto::types::ActionSpec;
use glider_core::{Cluster, ClusterConfig};
use std::collections::HashMap;
use std::time::{Duration, Instant};

const TREE: [&str; 5] = [
    "client.call",
    "rpc.dispatch",
    "active.handle",
    "action.queue",
    "action.run",
];

/// Finds, in the process recorder, the id of a trace holding the whole
/// expected span tree. Server-side spans close asynchronously after the
/// client call returns, so this polls.
async fn await_full_trace() -> u64 {
    let rec = glider_trace::recorder().expect("Cluster::start installs the recorder");
    for _ in 0..150 {
        let snap = rec.snapshot(0, 0);
        let mut by_trace: HashMap<u64, Vec<&str>> = HashMap::new();
        for s in &snap.spans {
            by_trace.entry(s.trace_id).or_default().push(s.name);
        }
        if let Some((id, _)) = by_trace
            .iter()
            .find(|(_, names)| TREE.iter().all(|n| names.contains(n)))
        {
            return *id;
        }
        tokio::time::sleep(Duration::from_millis(20)).await;
    }
    panic!("no trace accumulated the full span tree in the flight recorder");
}

fn span<'a>(dump: &'a SpanDump, name: &str) -> &'a glider_core::proto::dump::WireSpan {
    dump.spans
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| {
            panic!(
                "span {name:?} missing from dump; got {:?}",
                dump.spans
                    .iter()
                    .map(|s| s.name.as_str())
                    .collect::<Vec<_>>()
            )
        })
}

/// One action write over the `mem://` fast path, then `trace(id)`: the
/// merged dump reconnects client.call → rpc.dispatch → active.handle →
/// action.queue → action.run, and the renderer shows them as one tree
/// with the critical path marked.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn trace_query_reassembles_cross_server_tree() {
    let cluster = Cluster::start(ClusterConfig::default().with_rdma_sim(true))
        .await
        .unwrap();
    let store = cluster.client().await.unwrap();
    let merge = store
        .create_action("/trace-query", ActionSpec::new("merge", false))
        .await
        .unwrap();
    merge
        .write_all(bytes::Bytes::from_static(b"5,1\n5,2\n"))
        .await
        .unwrap();

    let trace_id = await_full_trace().await;
    let dump = store.trace(trace_id).await.unwrap();

    // Strictly this trace, fully connected.
    assert!(dump.spans.iter().all(|s| s.trace_id == trace_id));
    let dispatch = span(&dump, "rpc.dispatch");
    assert!(
        dispatch.remote,
        "dispatch continued the trace over the wire"
    );
    assert_eq!(span(&dump, "client.call").parent_span, 0);
    assert_eq!(span(&dump, "active.handle").parent_span, dispatch.span_id);
    assert_eq!(
        span(&dump, "action.queue").parent_span,
        span(&dump, "active.handle").span_id
    );
    assert_eq!(
        span(&dump, "action.run").parent_span,
        span(&dump, "action.queue").span_id
    );

    // The renderer shows one tree: every expected hop present, in
    // parent-before-child order, with a critical path marked and the
    // client's own recorder contributing as a source.
    let tree = glider_core::net::render_trace_tree(&dump);
    let pos = |name: &str| {
        tree.lines()
            .position(|l| l.contains(name))
            .unwrap_or_else(|| panic!("{name} missing from rendered tree:\n{tree}"))
    };
    assert!(pos("client.call") < pos("rpc.dispatch"));
    assert!(pos("rpc.dispatch") < pos("active.handle"));
    assert!(pos("active.handle") < pos("action.queue"));
    assert!(pos("action.queue") < pos("action.run"));
    assert!(
        tree.lines().any(|l| l.starts_with('*')),
        "a critical path is marked:\n{tree}"
    );
    assert!(tree.contains("self"), "per-hop self time is rendered");
    assert!(dump.source.contains("client"), "source: {}", dump.source);

    // Exemplars close the loop: the time-series payload names a trace id
    // that `trace` can resolve to at least one retained span.
    cluster.metrics().sample_series_tick();
    let payloads = store.series().await.unwrap();
    let exemplar = payloads
        .iter()
        .flat_map(|p| p.exemplars.iter())
        .find(|e| e.trace_id != 0)
        .expect("traced ops recorded at least one exemplar");
    let resolved = store.trace(exemplar.trace_id).await.unwrap();
    assert!(
        !resolved.spans.is_empty(),
        "exemplar trace 0x{:x} resolves to retained spans",
        exemplar.trace_id
    );

    cluster.shutdown();
}

/// Severing the `mem://` active server after its connection is pooled:
/// `trace` still answers inside the metadata op-class deadline, keeps the
/// client-side part of the trace, and names the unreachable server in a
/// `dump.unreachable` event instead of failing or hanging.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn severed_server_degrades_dump_to_partial_trace() {
    let cluster = Cluster::start(ClusterConfig::default().with_rdma_sim(true))
        .await
        .unwrap();
    let store = cluster.client().await.unwrap();
    let merge = store
        .create_action("/trace-sever", ActionSpec::new("merge", false))
        .await
        .unwrap();
    merge
        .write_all(bytes::Bytes::from_static(b"9,1\n"))
        .await
        .unwrap();
    let trace_id = await_full_trace().await;

    // Sever the active server; its mem:// endpoint disappears but the
    // client still holds a pooled connection to it.
    cluster.active_servers()[0].shutdown();

    let start = Instant::now();
    let dump = store.trace(trace_id).await.unwrap();
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(10),
        "degraded dump stayed inside the metadata op-class deadline, took {elapsed:?}"
    );
    assert!(
        dump.spans.iter().any(|s| s.name == "client.call"),
        "the reachable recorders still contribute a partial trace"
    );
    let unreachable = dump
        .events
        .iter()
        .find(|e| e.kind == "dump.unreachable")
        .expect("the severed server is named instead of silently skipped");
    assert!(
        unreachable.addr.starts_with("mem://"),
        "unreachable addr: {}",
        unreachable.addr
    );

    cluster.shutdown();
}
