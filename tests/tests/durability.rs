//! Durability acceptance (DESIGN.md §15): the namespace survives a
//! metadata kill -9 by replaying the write-ahead log, and replicated
//! blocks survive a storage kill -9 with zero acked-byte loss — the
//! reader fails over to the surviving replica and the lease sweeper
//! restores the replication factor.
//!
//! The kill is simulated at the transport layer: `Cluster::crash_*`
//! severs every live mem-fabric connection, refuses new dials until
//! restart, and aborts the server tasks, so no in-memory state survives
//! — exactly what a process kill leaves behind. The big-cluster variants
//! are gated behind GLIDER_CHAOS=1; the small ungated test keeps the
//! recovery path exercised in every tier-1 run.

use bytes::Bytes;
use glider_core::{ByteSize, Cluster, ClusterConfig, StoreClient};
use std::time::{Duration, Instant};

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i.wrapping_mul(31) % 251) as u8).collect()
}

/// A unique scratch directory for this test's WAL segments.
fn temp_wal_dir(tag: &str) -> std::path::PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    std::env::temp_dir().join(format!(
        "glider-durability-{tag}-{}-{nanos}",
        std::process::id()
    ))
}

/// Poll the cluster metrics until at least one server is reported dead.
async fn await_dead(cluster: &Cluster, deadline: Duration) {
    let start = Instant::now();
    loop {
        if cluster.metrics().snapshot().servers_dead >= 1 {
            return;
        }
        assert!(
            start.elapsed() < deadline,
            "no server reported dead within {deadline:?}"
        );
        tokio::time::sleep(Duration::from_millis(20)).await;
    }
}

/// Background writer: creates and fully commits small files until the
/// metadata server dies under it, returning the paths whose commit was
/// acked. Every returned path MUST survive recovery.
async fn write_until_error(store: StoreClient, prefix: &str, file_len: usize) -> Vec<String> {
    let mut acked = Vec::new();
    for j in 0..10_000 {
        let path = format!("{prefix}-{j}");
        let file = match store.create_file(&path).await {
            Ok(f) => f,
            Err(_) => break,
        };
        match file.write_all(Bytes::from(pattern(file_len))).await {
            Ok(_) => acked.push(path),
            Err(_) => break,
        }
    }
    acked
}

/// After recovery, every pre-crash file and every acked mid-crash file
/// must be present with its exact committed bytes.
async fn assert_files_intact(store: &StoreClient, paths: &[String], file_len: usize) {
    let want = pattern(file_len);
    for path in paths {
        let info = store
            .lookup(path)
            .await
            .unwrap_or_else(|e| panic!("acked file {path} lost after recovery: {e}"));
        assert_eq!(info.size, file_len as u64, "size of {path} after recovery");
        let back = read_all_file(store, path).await;
        assert_eq!(back, want, "content of {path} after recovery");
    }
}

/// Re-resolves `path` and reads the whole file back.
async fn read_all_file(store: &StoreClient, path: &str) -> Vec<u8> {
    let file = store
        .lookup_file(path)
        .await
        .unwrap_or_else(|e| panic!("lookup_file {path}: {e}"));
    file.read_all()
        .await
        .unwrap_or_else(|e| panic!("read_all {path}: {e}"))
}

/// Kill -9 the metadata server while a writer is mid-commit: every file
/// whose commit was acked before the kill replays from the WAL, nothing
/// acked is lost, and storage-resident bytes read back intact.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn metadata_kill_mid_commit_loses_no_acked_files() {
    let dir = temp_wal_dir("meta-small");
    let mut cluster = Cluster::start(
        ClusterConfig::default()
            .with_block_size(ByteSize::kib(64))
            .with_data(2, 128)
            .with_mem_fabric(true)
            .with_wal(&dir),
    )
    .await
    .unwrap();
    let store = cluster.client().await.unwrap();

    // Phase 1: fully acked before the kill — these MUST survive.
    let file_len = 20_000;
    let pre: Vec<String> = (0..4).map(|i| format!("/pre-{i}")).collect();
    for path in &pre {
        let file = store.create_file(path).await.unwrap();
        file.write_all(Bytes::from(pattern(file_len)))
            .await
            .unwrap();
    }
    assert!(
        cluster.metrics().snapshot().wal_bytes > 0,
        "mutations were not logged to the WAL"
    );

    // Phase 2: kill the metadata server while commits are in flight.
    let writer = tokio::spawn(write_until_error(store.clone(), "/live", 10_000));
    tokio::time::sleep(Duration::from_millis(25)).await;
    cluster.crash_meta();
    let acked = tokio::time::timeout(Duration::from_secs(60), writer)
        .await
        .expect("background writer did not observe the crash within 60s")
        .unwrap();

    // A dead metadata server is dead: new clients cannot connect.
    assert!(
        cluster.client().await.is_err(),
        "connected to a crashed metadata server"
    );

    // Phase 3: restart on the same WAL directory and verify.
    cluster.restart_meta().await.unwrap();
    let store = cluster.client().await.unwrap();
    assert_files_intact(&store, &pre, file_len).await;
    assert_files_intact(&store, &acked, 10_000).await;

    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The issue's first acceptance scenario at scale, gated behind
/// GLIDER_CHAOS=1: kill -9 the metadata server under sustained commit
/// traffic with megabyte files already durable; the namespace replays
/// from the WAL with zero acked loss.
#[tokio::test(flavor = "multi_thread", worker_threads = 8)]
async fn chaos_kill_meta_mid_commit_namespace_replays_from_wal() {
    if std::env::var("GLIDER_CHAOS").as_deref() != Ok("1") {
        eprintln!("skipping chaos test; set GLIDER_CHAOS=1 to run");
        return;
    }
    let dir = temp_wal_dir("meta-chaos");
    let mut cluster = Cluster::start(
        ClusterConfig::default()
            .with_block_size(ByteSize::kib(256))
            .with_data(3, 256)
            .with_mem_fabric(true)
            .with_wal(&dir),
    )
    .await
    .unwrap();
    let store = cluster.client().await.unwrap();

    let file_len = 1024 * 1024;
    let pre: Vec<String> = (0..8).map(|i| format!("/bulk-{i}")).collect();
    for path in &pre {
        let file = store.create_file(path).await.unwrap();
        file.write_all(Bytes::from(pattern(file_len)))
            .await
            .unwrap();
    }

    // Two concurrent writers raise the odds the kill lands mid-commit.
    let w1 = tokio::spawn(write_until_error(store.clone(), "/live-a", 64 * 1024));
    let w2 = tokio::spawn(write_until_error(store.clone(), "/live-b", 64 * 1024));
    tokio::time::sleep(Duration::from_millis(100)).await;
    cluster.crash_meta();
    let mut acked = tokio::time::timeout(Duration::from_secs(60), w1)
        .await
        .expect("writer a stuck after crash")
        .unwrap();
    acked.extend(
        tokio::time::timeout(Duration::from_secs(60), w2)
            .await
            .expect("writer b stuck after crash")
            .unwrap(),
    );

    cluster.restart_meta().await.unwrap();
    let store = cluster.client().await.unwrap();
    assert_files_intact(&store, &pre, file_len).await;
    assert_files_intact(&store, &acked, 64 * 1024).await;

    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The issue's second acceptance scenario, gated behind GLIDER_CHAOS=1:
/// one of three storage servers is killed midway through a 64 MiB
/// replicated stream (factor 2). The stream still acks every byte, the
/// sweeper promotes surviving replicas and restores the factor, and the
/// full 64 MiB reads back intact from the survivors.
#[tokio::test(flavor = "multi_thread", worker_threads = 8)]
async fn chaos_kill_storage_mid_64mib_replicated_write() {
    if std::env::var("GLIDER_CHAOS").as_deref() != Ok("1") {
        eprintln!("skipping chaos test; set GLIDER_CHAOS=1 to run");
        return;
    }
    let lease = Duration::from_millis(500);
    let cluster = Cluster::start(
        ClusterConfig::default()
            .with_block_size(ByteSize::mib(1))
            .with_data(3, 96)
            .with_replication(2)
            .with_mem_fabric(true)
            .with_lease(lease),
    )
    .await
    .unwrap();
    let store = cluster.client().await.unwrap();

    let total = 64 * 1024 * 1024;
    let data = Bytes::from(pattern(total));
    let file = store.create_file("/r64").await.unwrap();
    let mut out = file.output_stream().await.unwrap();

    out.write(data.slice(0..256 * 1024)).await.unwrap();
    let dead_addr = cluster.crash_data(0);

    let mut off = 256 * 1024;
    while off < total {
        let end = (off + 1024 * 1024).min(total);
        out.write(data.slice(off..end)).await.unwrap();
        off = end;
    }
    // Zero acked-byte loss: the close acks the full 64 MiB even though a
    // replica holder died mid-stream.
    assert_eq!(out.close().await.unwrap(), total as u64);

    await_dead(&cluster, Duration::from_secs(30)).await;

    // The sweeper must migrate every replica off the dead server and
    // restore the factor: each committed extent keeps a live primary and
    // regains at least one live backup.
    let repair_deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let layout = store.node_replicas("/r64").await.unwrap();
        let healed = layout.iter().filter(|re| re.extent.len > 0).all(|re| {
            re.extent.loc.addr != dead_addr
                && !re.backups.is_empty()
                && re.backups.iter().all(|b| b.addr != dead_addr)
        });
        if healed {
            break;
        }
        assert!(
            Instant::now() < repair_deadline,
            "sweeper did not restore the replication factor within 60s"
        );
        tokio::time::sleep(Duration::from_millis(100)).await;
    }

    // The repair drains the under-replication gauge back to zero.
    let gauge_deadline = Instant::now() + Duration::from_secs(30);
    while cluster.metrics().snapshot().under_replicated > 0 {
        assert!(
            Instant::now() < gauge_deadline,
            "under-replicated gauge never drained after repair"
        );
        tokio::time::sleep(Duration::from_millis(100)).await;
    }

    // Reads come from the surviving replicas, bit-exact. A fresh client
    // with the lookup cache disabled cannot be rescued by stale state.
    let reader = StoreClient::connect(cluster.client_config().with_lookup_cache_ttl(None))
        .await
        .unwrap();
    let back = reader.read_all_file("/r64").await;
    assert_eq!(back.len(), total);
    assert_eq!(back, data, "read-back differs after replicated failover");

    cluster.shutdown();
}
