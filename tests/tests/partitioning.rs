//! Namespace partitioning across multiple metadata servers (paper §4.1,
//! footnote 4).

use bytes::Bytes;
use glider_core::{ActionSpec, ClusterConfig, ErrorCode, PartitionedCluster};

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn paths_spread_across_partitions_and_round_trip() {
    let cluster = PartitionedCluster::start(3, ClusterConfig::default())
        .await
        .unwrap();
    let store = cluster.client().await.unwrap();
    assert_eq!(store.partition_count(), 3);

    // Create many top-level subtrees; they must hash across partitions.
    for i in 0..12 {
        store.create_dir(&format!("/job-{i}")).await.unwrap();
        let file = store.create_file(&format!("/job-{i}/data")).await.unwrap();
        file.write_all(Bytes::from(vec![i as u8; 10_000]))
            .await
            .unwrap();
    }
    // Every partition got at least one subtree (12 keys over 3 partitions
    // — a pathological hash would fail this, FNV does not for these keys).
    let per_partition: Vec<usize> = {
        let mut counts = vec![0usize; 3];
        for cluster_part in cluster.partitions() {
            let _ = cluster_part; // counted below via direct clients
        }
        let mut counts_real = Vec::new();
        for part in cluster.partitions() {
            let direct = part.client().await.unwrap();
            counts_real.push(direct.list("/").await.unwrap().len());
        }
        counts.copy_from_slice(&counts_real);
        counts
    };
    assert_eq!(per_partition.iter().sum::<usize>(), 12);
    assert!(
        per_partition.iter().all(|&c| c > 0),
        "hash placement degenerate: {per_partition:?}"
    );

    // Everything reads back through the routing client.
    for i in 0..12 {
        let file = store.lookup_file(&format!("/job-{i}/data")).await.unwrap();
        assert_eq!(file.read_all().await.unwrap(), vec![i as u8; 10_000]);
    }

    // Root listing merges all partitions.
    let all = store.list("/").await.unwrap();
    assert_eq!(all.len(), 12);
    assert!(all.windows(2).all(|w| w[0] <= w[1]), "merged sorted");
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn actions_work_within_their_partition() {
    let cluster = PartitionedCluster::start(2, ClusterConfig::default())
        .await
        .unwrap();
    let store = cluster.client().await.unwrap();
    for name in ["alpha", "beta", "gamma", "delta"] {
        store.create_dir(&format!("/{name}")).await.unwrap();
        let action = store
            .create_action(&format!("/{name}/merge"), ActionSpec::new("merge", true))
            .await
            .unwrap();
        action
            .write_all(Bytes::from_static(b"1,1\n"))
            .await
            .unwrap();
        assert_eq!(action.read_all().await.unwrap(), b"1,1\n");
    }
    // Deleting a subtree cleans up on its own partition only.
    store.delete("/alpha").await.unwrap();
    assert_eq!(
        store.lookup("/alpha/merge").await.unwrap_err().code(),
        ErrorCode::NotFound
    );
    store.lookup("/beta/merge").await.unwrap();
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn near_data_traffic_stays_inside_one_partition() {
    // A filter action must read its backing file from the partition it
    // shares a subtree with (same first path component).
    let cluster = PartitionedCluster::start(2, ClusterConfig::default())
        .await
        .unwrap();
    let store = cluster.client().await.unwrap();
    store.create_dir("/pipe").await.unwrap();
    let file = store.create_file("/pipe/input").await.unwrap();
    file.write_all(Bytes::from_static(b"keep HIT\ndrop\nanother HIT\n"))
        .await
        .unwrap();
    let action = store
        .create_action(
            "/pipe/filter",
            ActionSpec::new("filter", false).with_params("src=/pipe/input;pattern=HIT"),
        )
        .await
        .unwrap();
    let out = action.read_all().await.unwrap();
    assert_eq!(&out[..], b"keep HIT\nanother HIT\n");
}
