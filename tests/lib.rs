//! Cross-crate integration tests for the Glider reproduction.
//!
//! The actual tests live in `tests/` (one file per concern):
//!
//! - `end_to_end.rs` — whole-cluster lifecycles over real RPC;
//! - `concurrency.rs` — the action concurrency model under many clients;
//! - `properties.rs` — property-based tests of codec, namespace,
//!   block-store and stream invariants;
//! - `workloads.rs` — baseline/Glider equivalence of every workload pair;
//! - `limits.rs` — FaaS resource limits interacting with the store.
