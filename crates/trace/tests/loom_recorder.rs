//! Loom model of the `FlightRecorder` concurrency contract.
//!
//! The recorder's synchronization story (see `src/recorder.rs`) is "one
//! relaxed `fetch_add` for the sequence number, then one short per-ring
//! mutex per push; snapshots take each ring mutex in turn". Loom
//! enumerates every interleaving of concurrent span pushes against a
//! `DumpSpans`-style snapshot and checks the documented guarantees:
//!
//! - **no loss, no invention**: a snapshot taken while pushers run sees
//!   a subset of the pushed spans — never a torn span, never a
//!   duplicate sequence number;
//! - **seq-sorted snapshots**: the merged churn+pinned view is strictly
//!   increasing in `seq` (the property `glider-cli trace` relies on);
//! - **bounded rings**: capacity is enforced under every interleaving,
//!   with one eviction counted per dropped span.
//!
//! This file only compiles under `RUSTFLAGS="--cfg loom"`; the `loom`
//! crate is provisioned by the CI `loom` job (`cargo add loom --dev`)
//! rather than carried as a permanent dependency of the workspace.
#![cfg(loom)]

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;
use std::collections::VecDeque;

/// Loom mirror of `FlightRecorder`: same seq/ring/eviction logic, same
/// orderings, loom's primitives. Kept deliberately parallel to
/// `glider_trace::recorder` so a change to the real synchronization must
/// be mirrored (and re-model-checked) here.
struct ModelRecorder {
    seq: AtomicU64,
    dropped: AtomicU64,
    cap: usize,
    recent: Mutex<VecDeque<(u64, u64)>>, // (seq, trace_id)
    pinned: Mutex<VecDeque<(u64, u64)>>,
}

impl ModelRecorder {
    fn new(cap: usize) -> Self {
        ModelRecorder {
            seq: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            cap,
            recent: Mutex::new(VecDeque::new()),
            pinned: Mutex::new(VecDeque::new()),
        }
    }

    fn push(&self, trace_id: u64, pin: bool) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ring = if pin { &self.pinned } else { &self.recent };
        let mut guard = ring.lock().unwrap();
        guard.push_back((seq, trace_id));
        if guard.len() > self.cap {
            guard.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut spans: Vec<(u64, u64)> = self.recent.lock().unwrap().iter().copied().collect();
        spans.extend(self.pinned.lock().unwrap().iter().copied());
        spans.sort_by_key(|&(seq, _)| seq);
        spans
    }
}

#[test]
fn concurrent_push_vs_snapshot_is_consistent() {
    loom::model(|| {
        let rec = Arc::new(ModelRecorder::new(4));
        let pusher_a = {
            let rec = Arc::clone(&rec);
            thread::spawn(move || {
                rec.push(1, false);
                rec.push(2, true);
            })
        };
        let pusher_b = {
            let rec = Arc::clone(&rec);
            thread::spawn(move || rec.push(3, false))
        };

        // A snapshot racing the pushers: whatever it sees must be
        // seq-sorted, duplicate-free, and contain only pushed traces.
        let mid = rec.snapshot();
        let mut seqs: Vec<u64> = mid.iter().map(|&(s, _)| s).collect();
        let sorted = {
            let mut s = seqs.clone();
            s.sort_unstable();
            s.dedup();
            s
        };
        assert_eq!(seqs, sorted, "snapshot must be seq-sorted, no dupes");
        seqs.clear();
        assert!(mid.iter().all(|&(_, t)| (1..=3).contains(&t)));

        pusher_a.join().unwrap();
        pusher_b.join().unwrap();

        // Quiescent snapshot: all three spans, strictly increasing seq,
        // nothing evicted at this volume.
        let end = rec.snapshot();
        assert_eq!(end.len(), 3);
        assert!(end.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(rec.dropped.load(Ordering::Relaxed), 0);
    });
}

#[test]
fn eviction_is_bounded_under_races() {
    loom::model(|| {
        let rec = Arc::new(ModelRecorder::new(1));
        let pusher = {
            let rec = Arc::clone(&rec);
            thread::spawn(move || {
                rec.push(1, false);
                rec.push(2, false);
            })
        };
        rec.push(3, false);
        pusher.join().unwrap();

        let end = rec.snapshot();
        assert_eq!(end.len(), 1, "churn ring holds exactly its capacity");
        assert_eq!(rec.dropped.load(Ordering::Relaxed), 2);
        // The survivor is the highest seq: eviction is FIFO.
        assert_eq!(end[0].0, 3);
    });
}
