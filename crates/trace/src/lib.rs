//! Request tracing spans for Glider, with zero dependencies.
//!
//! This crate is a small, self-contained stand-in for the `tracing`
//! facade (the workspace builds in hermetic environments where external
//! crates are unavailable), shaped after the same concepts:
//!
//! - a [`Span`] measures one named unit of work and carries a
//!   [`SpanContext`] — a `(trace_id, span_id)` pair. The trace id is
//!   minted once at the root of a request and propagated across process
//!   boundaries in the RPC header, so every hop of one client operation
//!   shares it.
//! - a global [`Subscriber`] observes span closures and events. When no
//!   subscriber is installed (the default), spans skip timing entirely:
//!   creating and dropping one costs a single relaxed atomic load plus
//!   the id arithmetic needed to keep wire trace ids flowing.
//! - [`init_from_env`] installs a stderr subscriber when `GLIDER_TRACE`
//!   (or, as a fallback, `RUST_LOG`) selects one — the env-filter style
//!   switch: off by default, `all` for everything, or a comma-separated
//!   list of span-name prefixes (`rpc,action` traces the RPC layer and
//!   the action runtime).
//!
//! The span hierarchy Glider emits for one client call is documented in
//! DESIGN.md §Observability:
//!
//! ```text
//! client.call                 (root, client process)
//! └── rpc.dispatch            (remote: same trace id, new process)
//!     └── <server>.handle     (meta.handle / data.handle / active.handle)
//!         └── action.queue    (time spent waiting in the mailbox)
//!             └── action.run  (the handler method itself)
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

mod recorder;

pub use recorder::{CompletedSpan, FlightRecorder, StructuredEvent};

// ---------------------------------------------------------------------------
// Ids and context
// ---------------------------------------------------------------------------

/// The identity of a span: which trace it belongs to and which span it is.
///
/// A zero `trace_id` means "no trace" ([`SpanContext::NONE`]); real ids
/// are never zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// Shared by every span of one end-to-end request.
    pub trace_id: u64,
    /// Unique per span (within a process run).
    pub span_id: u64,
}

impl SpanContext {
    /// The absent context: no trace, no span.
    pub const NONE: SpanContext = SpanContext {
        trace_id: 0,
        span_id: 0,
    };

    /// True when this is [`SpanContext::NONE`].
    pub fn is_none(&self) -> bool {
        self.trace_id == 0
    }
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// SplitMix64: decorrelates the sequential counter so ids look random
/// without any external RNG.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A fresh non-zero trace/span id.
pub fn next_id() -> u64 {
    loop {
        let id = mix(NEXT_ID.fetch_add(1, Ordering::Relaxed));
        if id != 0 {
            return id;
        }
    }
}

// ---------------------------------------------------------------------------
// Subscriber
// ---------------------------------------------------------------------------

/// A closed span, as delivered to subscribers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span's static name (e.g. `rpc.dispatch`).
    pub name: &'static str,
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// The parent span's id; 0 for roots and remote continuations.
    pub parent_span: u64,
    /// True when the span continues a trace that crossed a process (or
    /// connection) boundary, so its parent span lives elsewhere.
    pub remote: bool,
    /// Wall-clock time between span creation and drop.
    pub duration: Duration,
    /// True when the unit of work failed ([`Span::set_error`]); the
    /// flight recorder pins error spans so they survive ring churn.
    pub err: bool,
}

/// Observer of span closures and events.
pub trait Subscriber: Send + Sync {
    /// Whether spans/events with this name should be recorded at all.
    fn enabled(&self, name: &str) -> bool;
    /// Called when an enabled span is dropped.
    fn on_span_close(&self, span: &SpanRecord);
    /// Called for point-in-time events (e.g. slow-op reports).
    fn on_event(&self, name: &str, message: &str, ctx: SpanContext);
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SUB_PRESENT: AtomicBool = AtomicBool::new(false);
static REC_PRESENT: AtomicBool = AtomicBool::new(false);
static SUBSCRIBER: Mutex<Option<Arc<dyn Subscriber>>> = Mutex::new(None);
static RECORDER: Mutex<Option<Arc<FlightRecorder>>> = Mutex::new(None);

fn subscriber_slot() -> std::sync::MutexGuard<'static, Option<Arc<dyn Subscriber>>> {
    // A panicking subscriber must not poison tracing for everyone else.
    SUBSCRIBER.lock().unwrap_or_else(|e| e.into_inner())
}

fn recorder_slot() -> std::sync::MutexGuard<'static, Option<Arc<FlightRecorder>>> {
    RECORDER.lock().unwrap_or_else(|e| e.into_inner())
}

/// ENABLED stays the single hot-path gate: true while *either* a
/// subscriber or a flight recorder is installed. The per-slot flags are
/// maintained by the setters; a race between two setters can only make
/// ENABLED momentarily conservative (true with nothing installed), never
/// drop records while something is listening.
fn recompute_enabled() {
    ENABLED.store(
        SUB_PRESENT.load(Ordering::Acquire) || REC_PRESENT.load(Ordering::Acquire),
        Ordering::Release,
    );
}

/// Installs (or, with `None`, removes) the global subscriber.
///
/// Later installations replace earlier ones; spans created before the
/// switch report to whatever is installed when they *close*. An
/// installed [`FlightRecorder`] is independent of the subscriber and
/// keeps recording across subscriber swaps.
pub fn set_subscriber(subscriber: Option<Arc<dyn Subscriber>>) {
    let mut slot = subscriber_slot();
    SUB_PRESENT.store(subscriber.is_some(), Ordering::Release);
    *slot = subscriber;
    drop(slot);
    recompute_enabled();
}

/// Installs (or, with `None`, removes) the process-global flight
/// recorder. The recorder is a retention buffer, not a filter: while one
/// is installed every span is timed and recorded regardless of the
/// subscriber's name filter.
pub fn set_recorder(rec: Option<Arc<FlightRecorder>>) {
    let mut slot = recorder_slot();
    REC_PRESENT.store(rec.is_some(), Ordering::Release);
    *slot = rec;
    drop(slot);
    recompute_enabled();
}

/// The installed flight recorder, if any. Checks a flag before touching
/// the registry lock so the recorder-less path stays lock-free.
pub fn recorder() -> Option<Arc<FlightRecorder>> {
    if !REC_PRESENT.load(Ordering::Acquire) {
        return None;
    }
    recorder_slot().clone()
}

/// Returns the installed flight recorder, installing a fresh
/// default-capacity one when none is present. Server processes call this
/// at startup so the recorder is always-on; a second server starting in
/// the same process (the in-process cluster) shares the first one.
pub fn install_recorder() -> Arc<FlightRecorder> {
    let mut slot = recorder_slot();
    let rec = match &*slot {
        Some(rec) => Arc::clone(rec),
        None => {
            let rec = Arc::new(FlightRecorder::new());
            *slot = Some(Arc::clone(&rec));
            REC_PRESENT.store(true, Ordering::Release);
            rec
        }
    };
    drop(slot);
    recompute_enabled();
    rec
}

/// Runs `f` with the current subscriber, if any. The registry lock is
/// released before `f` runs, so subscribers may re-enter the API.
fn with_subscriber(f: impl FnOnce(&dyn Subscriber)) {
    if !ENABLED.load(Ordering::Acquire) {
        return;
    }
    let subscriber = subscriber_slot().clone();
    if let Some(s) = subscriber {
        f(&*s);
    }
}

/// Whether a span/event with `name` would currently be recorded. The
/// flight recorder records unconditionally, so its presence enables
/// every name; otherwise the subscriber's filter decides.
pub fn enabled_for(name: &str) -> bool {
    if !ENABLED.load(Ordering::Acquire) {
        return false;
    }
    if REC_PRESENT.load(Ordering::Acquire) {
        return true;
    }
    let mut yes = false;
    with_subscriber(|s| yes = s.enabled(name));
    yes
}

/// True when any subscriber is installed (one relaxed atomic load; the
/// hot-path check).
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Emits a point-in-time event to the subscriber, if one is installed
/// and enables `name`, and into the flight recorder's event log.
pub fn event(name: &'static str, message: &str, ctx: SpanContext) {
    with_subscriber(|s| {
        if s.enabled(name) {
            s.on_event(name, message, ctx);
        }
    });
    if let Some(rec) = recorder() {
        rec.record_event(name, message, "", 0, ctx.trace_id);
    }
}

/// Emits a structured fault event — retries, reconnects, liveness
/// transitions, pool/credit exhaustion — into the flight recorder's
/// bounded event log (and, human-formatted, to the subscriber). Fields
/// that do not apply may be empty / zero. Costs one relaxed atomic load
/// when neither a recorder nor a subscriber is installed.
pub fn structured_event(kind: &'static str, op: &str, addr: &str, attempt: u64, trace_id: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    if let Some(rec) = recorder() {
        rec.record_event(kind, op, addr, attempt, trace_id);
    }
    with_subscriber(|s| {
        if s.enabled(kind) {
            let ctx = SpanContext {
                trace_id,
                span_id: 0,
            };
            s.on_event(kind, &format!("op={op} addr={addr} attempt={attempt}"), ctx);
        }
    });
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

/// A named unit of work; reports its duration to the subscriber on drop.
///
/// Spans always carry real ids (so trace ids can propagate on the wire
/// even while tracing output is off) but only start a timer — and only
/// report on drop — when a subscriber enabling their name was installed
/// at creation time.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    ctx: SpanContext,
    parent_span: u64,
    remote: bool,
    start: Option<Instant>,
    err: Cell<bool>,
}

impl Span {
    fn new(name: &'static str, ctx: SpanContext, parent_span: u64, remote: bool) -> Span {
        let start = if enabled_for(name) {
            Some(Instant::now())
        } else {
            None
        };
        Span {
            name,
            ctx,
            parent_span,
            remote,
            start,
            err: Cell::new(false),
        }
    }

    /// Starts a new trace: fresh trace id, no parent.
    pub fn root(name: &'static str) -> Span {
        let ctx = SpanContext {
            trace_id: next_id(),
            span_id: next_id(),
        };
        Span::new(name, ctx, 0, false)
    }

    /// Continues a trace that arrived over the wire. The parent span ran
    /// in another process, so the record is marked `remote` with no local
    /// parent. A zero `trace_id` (untraced peer) starts a fresh trace.
    pub fn remote(name: &'static str, trace_id: u64) -> Span {
        let (trace_id, remote) = if trace_id == 0 {
            (next_id(), false)
        } else {
            (trace_id, true)
        };
        let ctx = SpanContext {
            trace_id,
            span_id: next_id(),
        };
        Span::new(name, ctx, 0, remote)
    }

    /// A child span within the same process. With a [`SpanContext::NONE`]
    /// parent this degenerates to a fresh root.
    pub fn child_of(parent: SpanContext, name: &'static str) -> Span {
        if parent.is_none() {
            return Span::root(name);
        }
        let ctx = SpanContext {
            trace_id: parent.trace_id,
            span_id: next_id(),
        };
        Span::new(name, ctx, parent.span_id, false)
    }

    /// An inert span: no ids, no timing, nothing reported on drop.
    pub fn none() -> Span {
        Span {
            name: "",
            ctx: SpanContext::NONE,
            parent_span: 0,
            remote: false,
            start: None,
            err: Cell::new(false),
        }
    }

    /// Marks this span as failed. The record carries the flag to
    /// subscribers, and the flight recorder's tail-based retention pins
    /// error spans so they survive ring churn.
    pub fn set_error(&self) {
        self.err.set(true);
    }

    /// This span's context, for building children or wire propagation.
    pub fn context(&self) -> SpanContext {
        self.ctx
    }

    /// The trace id to propagate on the wire.
    pub fn trace_id(&self) -> u64 {
        self.ctx.trace_id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let record = SpanRecord {
            name: self.name,
            trace_id: self.ctx.trace_id,
            span_id: self.ctx.span_id,
            parent_span: self.parent_span,
            remote: self.remote,
            duration: start.elapsed(),
            err: self.err.get(),
        };
        with_subscriber(|s| {
            if s.enabled(record.name) {
                s.on_span_close(&record);
            }
        });
        if let Some(rec) = recorder() {
            rec.push_span(&record);
        }
    }
}

// ---------------------------------------------------------------------------
// Subscribers
// ---------------------------------------------------------------------------

/// Collects every span and event in memory; for tests.
#[derive(Debug, Default)]
pub struct CapturingSubscriber {
    spans: Mutex<Vec<SpanRecord>>,
    events: Mutex<Vec<(String, String, SpanContext)>>,
}

impl CapturingSubscriber {
    /// Creates an empty capture buffer.
    pub fn new() -> Arc<CapturingSubscriber> {
        Arc::new(CapturingSubscriber::default())
    }

    /// Creates a capture buffer and installs it as the global subscriber.
    pub fn install() -> Arc<CapturingSubscriber> {
        let sub = CapturingSubscriber::new();
        set_subscriber(Some(Arc::clone(&sub) as Arc<dyn Subscriber>));
        sub
    }

    /// All spans closed so far.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// All events emitted so far.
    pub fn events(&self) -> Vec<(String, String, SpanContext)> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

impl Subscriber for CapturingSubscriber {
    fn enabled(&self, _name: &str) -> bool {
        true
    }

    fn on_span_close(&self, span: &SpanRecord) {
        self.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(span.clone());
    }

    fn on_event(&self, name: &str, message: &str, ctx: SpanContext) {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).push((
            name.to_string(),
            message.to_string(),
            ctx,
        ));
    }
}

/// Prints span closures and events to stderr, filtered by name prefixes.
#[derive(Debug)]
pub struct StderrSubscriber {
    /// Span-name prefixes to print; empty means everything.
    prefixes: Vec<String>,
}

impl StderrSubscriber {
    /// A subscriber printing spans whose name starts with any of
    /// `prefixes` (all spans when empty).
    pub fn new(prefixes: Vec<String>) -> StderrSubscriber {
        StderrSubscriber { prefixes }
    }
}

impl Subscriber for StderrSubscriber {
    fn enabled(&self, name: &str) -> bool {
        self.prefixes.is_empty() || self.prefixes.iter().any(|p| name.starts_with(p.as_str()))
    }

    fn on_span_close(&self, span: &SpanRecord) {
        eprintln!(
            "[trace {:016x}] {} span={:016x} parent={:016x}{} {:?}",
            span.trace_id,
            span.name,
            span.span_id,
            span.parent_span,
            if span.remote { " remote" } else { "" },
            span.duration,
        );
    }

    fn on_event(&self, name: &str, message: &str, ctx: SpanContext) {
        if ctx.is_none() {
            eprintln!("[trace] {name}: {message}");
        } else {
            eprintln!("[trace {:016x}] {name}: {message}", ctx.trace_id);
        }
    }
}

/// Parses a `GLIDER_TRACE`/`RUST_LOG`-style value into a subscriber
/// choice: `None` when tracing should stay off, otherwise the name
/// prefixes to print (empty = everything).
fn parse_filter(value: &str) -> Option<Vec<String>> {
    let value = value.trim();
    match value {
        "" | "0" | "off" | "none" => None,
        "1" | "all" | "trace" | "debug" | "info" => Some(Vec::new()),
        list => Some(
            list.split(',')
                .map(|p| p.trim().to_string())
                .filter(|p| !p.is_empty())
                .collect(),
        ),
    }
}

/// Installs a [`StderrSubscriber`] when `GLIDER_TRACE` (preferred) or
/// `RUST_LOG` enables tracing; leaves tracing off otherwise. Returns
/// whether a subscriber was installed.
pub fn init_from_env() -> bool {
    let value = std::env::var("GLIDER_TRACE")
        .or_else(|_| std::env::var("RUST_LOG"))
        .unwrap_or_default();
    match parse_filter(&value) {
        Some(prefixes) => {
            set_subscriber(Some(Arc::new(StderrSubscriber::new(prefixes))));
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The subscriber registry is process-global, so tests that install
    // one must not run concurrently with each other.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id}");
        }
    }

    #[test]
    fn disabled_spans_report_nothing() {
        let _guard = serial();
        set_subscriber(None);
        let root = Span::root("t.root");
        assert_ne!(root.trace_id(), 0, "ids flow even when tracing is off");
        drop(root);
        // Installing after the fact must not resurrect old spans.
        let sub = CapturingSubscriber::install();
        assert!(sub.spans().is_empty());
        set_subscriber(None);
    }

    #[test]
    fn disabled_capture_is_one_flag_load() {
        let _guard = serial();
        set_subscriber(None);
        set_recorder(None);
        // The acceptance bar for always-on tracing: with neither a
        // subscriber nor a recorder installed, span capture costs one
        // atomic flag load. Everything downstream of that load must be
        // skipped — observable as: no timer is ever started (so drop
        // returns before touching the registry), and structured events
        // return at the same flag.
        assert!(!tracing_enabled());
        let span = Span::root("t.cold");
        assert!(
            span.start.is_none(),
            "disabled spans must not even read the clock"
        );
        drop(span);
        structured_event("t.cold.event", "op", "addr", 1, 7);
        // Nothing was buffered anywhere: a recorder installed afterwards
        // starts empty.
        let rec = install_recorder();
        let snap = rec.snapshot(0, 0);
        assert!(snap.spans.is_empty() && snap.events.is_empty());
        set_recorder(None);
    }

    #[test]
    fn span_tree_links_parents_and_trace() {
        let _guard = serial();
        let sub = CapturingSubscriber::install();
        let root = Span::root("t.a");
        let child = Span::child_of(root.context(), "t.b");
        let grandchild = Span::child_of(child.context(), "t.c");
        let trace = root.trace_id();
        drop(grandchild);
        drop(child);
        drop(root);
        set_subscriber(None);

        let spans = sub.spans();
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|s| s.trace_id == trace));
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("t.a").parent_span, 0);
        assert_eq!(by_name("t.b").parent_span, by_name("t.a").span_id);
        assert_eq!(by_name("t.c").parent_span, by_name("t.b").span_id);
    }

    #[test]
    fn remote_spans_continue_the_wire_trace() {
        let _guard = serial();
        let sub = CapturingSubscriber::install();
        drop(Span::remote("t.remote", 42));
        drop(Span::remote("t.fresh", 0));
        set_subscriber(None);
        let spans = sub.spans();
        let remote = spans.iter().find(|s| s.name == "t.remote").unwrap();
        assert_eq!(remote.trace_id, 42);
        assert!(remote.remote);
        let fresh = spans.iter().find(|s| s.name == "t.fresh").unwrap();
        assert_ne!(fresh.trace_id, 0);
        assert!(!fresh.remote);
    }

    #[test]
    fn none_spans_are_inert() {
        let _guard = serial();
        let sub = CapturingSubscriber::install();
        let span = Span::none();
        assert!(span.context().is_none());
        drop(span);
        // child_of(NONE) becomes a root.
        let orphan = Span::child_of(SpanContext::NONE, "t.orphan");
        assert_ne!(orphan.trace_id(), 0);
        drop(orphan);
        set_subscriber(None);
        let spans = sub.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "t.orphan");
        assert_eq!(spans[0].parent_span, 0);
    }

    #[test]
    fn events_reach_the_subscriber() {
        let _guard = serial();
        let sub = CapturingSubscriber::install();
        event("t.slow-op", "write-block took 12ms", SpanContext::NONE);
        set_subscriber(None);
        event("t.slow-op", "dropped after uninstall", SpanContext::NONE);
        let events = sub.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].0, "t.slow-op");
    }

    #[test]
    fn recorder_and_subscriber_coexist() {
        let _guard = serial();
        let sub = CapturingSubscriber::install();
        let rec = Arc::new(FlightRecorder::with_capacity(16, 16, 16));
        set_recorder(Some(Arc::clone(&rec)));
        let root = Span::root("t.both");
        let trace = root.trace_id();
        drop(root);
        set_recorder(None);
        set_subscriber(None);

        assert_eq!(sub.spans().len(), 1, "subscriber still sees spans");
        let snap = rec.snapshot(trace, 0);
        assert_eq!(snap.spans.len(), 1, "recorder sees the same span");
        assert_eq!(snap.spans[0].name, "t.both");
        assert_eq!(snap.spans[0].trace_id, trace);
    }

    #[test]
    fn recorder_alone_enables_capture_and_error_pinning() {
        let _guard = serial();
        set_subscriber(None);
        assert!(!tracing_enabled());
        let rec = install_recorder();
        assert!(tracing_enabled(), "recorder alone turns capture on");
        // install_recorder is get-or-create: same instance back.
        assert!(Arc::ptr_eq(&rec, &install_recorder()));
        rec.clear();

        let span = Span::root("t.fail");
        span.set_error();
        let trace = span.trace_id();
        drop(span);
        structured_event("t.retry", "write-block", "mem://9", 2, trace);
        set_recorder(None);
        assert!(!tracing_enabled(), "uninstall turns capture back off");

        let snap = rec.snapshot(trace, 0);
        assert_eq!(snap.spans.len(), 1);
        assert!(snap.spans[0].err && snap.spans[0].pinned);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].kind, "t.retry");
        assert_eq!(snap.events[0].addr, "mem://9");
        assert_eq!(snap.events[0].attempt, 2);
    }

    #[test]
    fn filter_parsing_matches_env_conventions() {
        assert_eq!(parse_filter(""), None);
        assert_eq!(parse_filter("off"), None);
        assert_eq!(parse_filter("0"), None);
        assert_eq!(parse_filter("none"), None);
        assert_eq!(parse_filter("all"), Some(vec![]));
        assert_eq!(parse_filter("1"), Some(vec![]));
        assert_eq!(parse_filter("info"), Some(vec![]));
        assert_eq!(
            parse_filter("rpc, action"),
            Some(vec!["rpc".to_string(), "action".to_string()])
        );
    }

    #[test]
    fn stderr_subscriber_prefix_filter() {
        let all = StderrSubscriber::new(vec![]);
        assert!(all.enabled("anything"));
        let some = StderrSubscriber::new(vec!["rpc".into(), "action".into()]);
        assert!(some.enabled("rpc.dispatch"));
        assert!(some.enabled("action.queue"));
        assert!(!some.enabled("meta.handle"));
    }
}
