//! The flight recorder: always-on, bounded retention of completed spans
//! and structured fault events (DESIGN.md §13).
//!
//! Every process keeps one [`FlightRecorder`] (installed via
//! [`crate::install_recorder`]); the `DumpSpans` RPC snapshots it over
//! the wire so a trace can be reassembled across processes after the
//! fact — a flight recorder, not a firehose.
//!
//! Retention is **tail-based**: the interesting spans of a workload are
//! the slow ones and the failed ones, and those are exactly the spans a
//! fixed-size FIFO would age out first under load. So the recorder keeps
//! two rings — a churn ring for ordinary spans and a pinned ring for
//! spans that closed over the slow threshold or with the error flag set.
//! Both rings are bounded; eviction counts are kept so a dump can say
//! how much history it lost.

use crate::SpanRecord;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Default capacity of the churn ring (ordinary completed spans).
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;
/// Default capacity of the pinned ring (slow / error spans).
pub const DEFAULT_PINNED_CAPACITY: usize = 1024;
/// Default capacity of the structured event log.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;
/// Default slow-span pin threshold (100ms), overridable per recorder and
/// via `GLIDER_SLOW_OP_MS` (shared with the metrics slow-op reporter).
pub const DEFAULT_SLOW_NS: u64 = 100_000_000;

/// One retained span, as kept by (and dumped from) the recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedSpan {
    /// Monotonic per-recorder sequence number, assigned at close.
    pub seq: u64,
    /// The span's static name (e.g. `rpc.dispatch`).
    pub name: &'static str,
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// The parent span's id; 0 for roots and remote continuations.
    pub parent_span: u64,
    /// True when the parent span lives in another process.
    pub remote: bool,
    /// Wall-clock duration of the span.
    pub duration: Duration,
    /// True when the span closed with [`crate::Span::set_error`] set.
    pub err: bool,
    /// True when retention pinned this span (slow or error).
    pub pinned: bool,
}

/// One structured fault event: a retry, a reconnect, a server-liveness
/// transition, pool/credit exhaustion. Fields that do not apply to a
/// given kind are empty / zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuredEvent {
    /// Monotonic per-recorder sequence number (shared with spans).
    pub seq: u64,
    /// The event kind (e.g. `rpc.retry`, `server.liveness`).
    pub kind: String,
    /// The operation or transition the event describes.
    pub op: String,
    /// The server address involved, when known.
    pub addr: String,
    /// The attempt number, for retry/reconnect kinds.
    pub attempt: u64,
    /// The trace the event belongs to (0 when untraced).
    pub trace_id: u64,
}

/// A consistent view of the recorder, as served by `DumpSpans`.
#[derive(Debug, Clone, Default)]
pub struct RecorderSnapshot {
    /// Retained spans, in ascending `seq` order.
    pub spans: Vec<CompletedSpan>,
    /// Retained structured events, in ascending `seq` order.
    pub events: Vec<StructuredEvent>,
    /// Spans evicted (aged out of either ring) since recorder creation.
    pub dropped_spans: u64,
    /// Events evicted from the event log since recorder creation.
    pub dropped_events: u64,
}

/// Bounded in-memory retention of completed spans and fault events.
///
/// Pushes take one short per-ring mutex; the no-recorder hot path in
/// [`crate::tracing_enabled`] stays a single relaxed atomic load.
#[derive(Debug)]
pub struct FlightRecorder {
    seq: AtomicU64,
    slow_ns: AtomicU64,
    dropped_spans: AtomicU64,
    dropped_events: AtomicU64,
    span_cap: usize,
    pinned_cap: usize,
    event_cap: usize,
    recent: Mutex<VecDeque<CompletedSpan>>,
    pinned: Mutex<VecDeque<CompletedSpan>>,
    events: Mutex<VecDeque<StructuredEvent>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic mid-push must not poison retention for the process.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl FlightRecorder {
    /// A recorder with default capacities. The slow threshold honors
    /// `GLIDER_SLOW_OP_MS` (the same knob as the metrics slow-op
    /// reporter), defaulting to 100ms.
    pub fn new() -> FlightRecorder {
        let slow_ns = std::env::var("GLIDER_SLOW_OP_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(|ms| ms.saturating_mul(1_000_000))
            .filter(|&ns| ns != 0)
            .unwrap_or(DEFAULT_SLOW_NS);
        FlightRecorder::with_capacity(
            DEFAULT_SPAN_CAPACITY,
            DEFAULT_PINNED_CAPACITY,
            DEFAULT_EVENT_CAPACITY,
        )
        .with_slow_threshold(Duration::from_nanos(slow_ns))
    }

    /// A recorder with explicit ring capacities (each clamped to ≥ 1).
    pub fn with_capacity(span_cap: usize, pinned_cap: usize, event_cap: usize) -> FlightRecorder {
        FlightRecorder {
            seq: AtomicU64::new(1),
            slow_ns: AtomicU64::new(DEFAULT_SLOW_NS),
            dropped_spans: AtomicU64::new(0),
            dropped_events: AtomicU64::new(0),
            span_cap: span_cap.max(1),
            pinned_cap: pinned_cap.max(1),
            event_cap: event_cap.max(1),
            recent: Mutex::new(VecDeque::new()),
            pinned: Mutex::new(VecDeque::new()),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// Sets the slow-span pin threshold; spans at or over it are pinned.
    /// Zero disables slow pinning (error spans stay pinned).
    pub fn with_slow_threshold(self, threshold: Duration) -> FlightRecorder {
        self.set_slow_threshold(threshold);
        self
    }

    /// Adjusts the slow-span pin threshold of a live recorder.
    pub fn set_slow_threshold(&self, threshold: Duration) {
        let ns = threshold.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.slow_ns.store(ns, Ordering::Relaxed);
    }

    /// Records one closed span, deciding its retention class.
    pub fn push_span(&self, record: &SpanRecord) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let slow_ns = self.slow_ns.load(Ordering::Relaxed);
        let ns = record.duration.as_nanos().min(u128::from(u64::MAX)) as u64;
        let pinned = record.err || (slow_ns != 0 && ns >= slow_ns);
        let span = CompletedSpan {
            seq,
            name: record.name,
            trace_id: record.trace_id,
            span_id: record.span_id,
            parent_span: record.parent_span,
            remote: record.remote,
            duration: record.duration,
            err: record.err,
            pinned,
        };
        let (ring, cap) = if pinned {
            (&self.pinned, self.pinned_cap)
        } else {
            (&self.recent, self.span_cap)
        };
        let mut guard = lock(ring);
        guard.push_back(span);
        if guard.len() > cap {
            guard.pop_front();
            self.dropped_spans.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Appends one structured event to the bounded event log.
    pub fn record_event(&self, kind: &str, op: &str, addr: &str, attempt: u64, trace_id: u64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ev = StructuredEvent {
            seq,
            kind: kind.to_string(),
            op: op.to_string(),
            addr: addr.to_string(),
            attempt,
            trace_id,
        };
        let mut guard = lock(&self.events);
        guard.push_back(ev);
        if guard.len() > self.event_cap {
            guard.pop_front();
            self.dropped_events.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshots retained spans and events, optionally filtered.
    ///
    /// `trace_id` 0 matches everything; otherwise only that trace's
    /// spans/events are returned. `since_seq` keeps only records with
    /// `seq > since_seq` (0 = from the beginning). Results are sorted by
    /// `seq`, so merged churn + pinned output reads in close order.
    pub fn snapshot(&self, trace_id: u64, since_seq: u64) -> RecorderSnapshot {
        let keep_span =
            |s: &&CompletedSpan| s.seq > since_seq && (trace_id == 0 || s.trace_id == trace_id);
        let mut spans: Vec<CompletedSpan> = lock(&self.recent)
            .iter()
            .filter(keep_span)
            .cloned()
            .collect();
        spans.extend(lock(&self.pinned).iter().filter(keep_span).cloned());
        spans.sort_by_key(|s| s.seq);
        let events: Vec<StructuredEvent> = lock(&self.events)
            .iter()
            .filter(|e| e.seq > since_seq && (trace_id == 0 || e.trace_id == trace_id))
            .cloned()
            .collect();
        RecorderSnapshot {
            spans,
            events,
            dropped_spans: self.dropped_spans.load(Ordering::Relaxed),
            dropped_events: self.dropped_events.load(Ordering::Relaxed),
        }
    }

    /// The highest sequence number assigned so far (0 = nothing yet);
    /// feed it back as `since_seq` for incremental dumps.
    pub fn last_seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed).saturating_sub(1)
    }

    /// Empties both span rings and the event log (tests, long-lived
    /// tools). Eviction counters keep running.
    pub fn clear(&self) {
        lock(&self.recent).clear();
        lock(&self.pinned).clear();
        lock(&self.events).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &'static str, trace_id: u64, ms: u64, err: bool) -> SpanRecord {
        SpanRecord {
            name,
            trace_id,
            span_id: crate::next_id(),
            parent_span: 0,
            remote: false,
            duration: Duration::from_millis(ms),
            err,
        }
    }

    #[test]
    fn fast_spans_age_out_fifo() {
        let rec =
            FlightRecorder::with_capacity(4, 4, 4).with_slow_threshold(Duration::from_secs(1));
        for i in 0..10u64 {
            rec.push_span(&record("t.op", i + 1, 0, false));
        }
        let snap = rec.snapshot(0, 0);
        assert_eq!(snap.spans.len(), 4);
        assert_eq!(snap.dropped_spans, 6);
        // The survivors are the newest four, in seq order.
        let traces: Vec<u64> = snap.spans.iter().map(|s| s.trace_id).collect();
        assert_eq!(traces, vec![7, 8, 9, 10]);
        let seqs: Vec<u64> = snap.spans.iter().map(|s| s.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
    }

    #[test]
    fn slow_and_error_spans_survive_churn() {
        let rec =
            FlightRecorder::with_capacity(2, 8, 4).with_slow_threshold(Duration::from_millis(50));
        rec.push_span(&record("t.slow", 1, 60, false));
        rec.push_span(&record("t.err", 2, 0, true));
        for i in 0..100u64 {
            rec.push_span(&record("t.fast", 10 + i, 0, false));
        }
        let snap = rec.snapshot(0, 0);
        assert!(snap.spans.iter().any(|s| s.name == "t.slow" && s.pinned));
        assert!(snap
            .spans
            .iter()
            .any(|s| s.name == "t.err" && s.pinned && s.err));
        // The churn ring still holds only its capacity of fast spans.
        assert_eq!(snap.spans.iter().filter(|s| !s.pinned).count(), 2);
    }

    #[test]
    fn snapshot_filters_by_trace_and_seq() {
        let rec = FlightRecorder::with_capacity(16, 16, 16);
        rec.push_span(&record("t.a", 7, 0, false));
        rec.push_span(&record("t.b", 8, 0, false));
        rec.record_event("t.ev", "op", "addr", 3, 7);
        let by_trace = rec.snapshot(7, 0);
        assert_eq!(by_trace.spans.len(), 1);
        assert_eq!(by_trace.spans[0].name, "t.a");
        assert_eq!(by_trace.events.len(), 1);
        let cutoff = by_trace.spans[0].seq;
        let later = rec.snapshot(0, cutoff);
        assert!(later.spans.iter().all(|s| s.seq > cutoff));
        assert_eq!(later.spans.len(), 1);
        assert_eq!(later.spans[0].name, "t.b");
    }

    #[test]
    fn event_log_is_bounded_and_counts_drops() {
        let rec = FlightRecorder::with_capacity(4, 4, 3);
        for i in 0..10u64 {
            rec.record_event("t.retry", "lookup-node", "mem://m", i, 0);
        }
        let snap = rec.snapshot(0, 0);
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.dropped_events, 7);
        assert_eq!(snap.events.last().unwrap().attempt, 9);
    }
}
