//! Ablation: NodeKernel block size. Small blocks mean more metadata
//! round trips per byte written (AddBlock/CommitBlock per block); large
//! blocks amortize them — the trade-off behind the workspace's 1 MiB
//! default.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use glider_core::{Cluster, ClusterConfig};
use glider_util::ByteSize;
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

const TOTAL: u64 = 4 * 1024 * 1024;

fn bench_block_size(c: &mut Criterion) {
    let rt = glider_bench::runtime();
    let mut group = c.benchmark_group("block_size");
    group.throughput(Throughput::Bytes(TOTAL));
    group.sample_size(10);

    for block_kib in [64u64, 256, 1024, 4096] {
        let block = ByteSize::kib(block_kib);
        let blocks_needed = (TOTAL * 64).div_ceil(block.as_u64()) + 16;
        let cluster = rt.block_on(async {
            Cluster::start(
                ClusterConfig::default()
                    .with_block_size(block)
                    .with_data(1, blocks_needed),
            )
            .await
            .expect("cluster")
        });
        group.bench_with_input(
            BenchmarkId::new("file_write_4MiB", block_kib),
            &block,
            |b, _| {
                b.to_async(&rt).iter(|| {
                    let cluster = &cluster;
                    async move {
                        let store = cluster.client().await.expect("client");
                        let path = format!("/b-{}", UNIQUE.fetch_add(1, Ordering::Relaxed));
                        let file = store.create_file(&path).await.expect("create");
                        file.write_all(bytes::Bytes::from(vec![0u8; TOTAL as usize]))
                            .await
                            .expect("write");
                        store.delete(&path).await.expect("cleanup");
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_block_size);
criterion_main!(benches);
