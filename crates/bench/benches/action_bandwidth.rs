//! Criterion micro-benchmark behind Fig. 6 (top): stream bandwidth to
//! files vs actions at two buffer sizes. The full sweep lives in the
//! `fig6` harness binary; this bench tracks regressions cheaply.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use glider_bench::BwHarness;
use glider_util::ByteSize;
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn bench_bandwidth(c: &mut Criterion) {
    let rt = glider_bench::runtime();
    let total = ByteSize::mib(4);

    let mut group = c.benchmark_group("bandwidth");
    group.throughput(Throughput::Bytes(total.as_u64()));
    group.sample_size(10);

    for chunk_kib in [128u64, 1024] {
        let chunk = ByteSize::kib(chunk_kib);
        let harness = rt.block_on(async {
            BwHarness::start(ByteSize::mib(512), chunk, 8)
                .await
                .expect("harness")
        });

        group.bench_with_input(BenchmarkId::new("file_write", chunk_kib), &chunk, |b, _| {
            b.to_async(&rt).iter(|| async {
                // Fresh file per iteration, deleted afterwards so the
                // block pool never exhausts (the delete is one
                // metadata op against a 4 MiB transfer).
                let path = format!("/bw-{}", UNIQUE.fetch_add(1, Ordering::Relaxed));
                let gbps = harness.file_write(&path, total).await.expect("write");
                let store = harness.client().await.expect("client");
                store.delete(&path).await.expect("cleanup");
                gbps
            });
        });
        // One action is created per configuration and reused: `null`
        // discards writes and regenerates reads, so iterations are
        // independent and slots never exhaust.
        let write_action = format!("/abw-{}", UNIQUE.fetch_add(1, Ordering::Relaxed));
        rt.block_on(async {
            let store = harness.client().await.expect("client");
            store
                .create_action(&write_action, glider_core::ActionSpec::new("null", false))
                .await
                .expect("create write action");
        });
        group.bench_with_input(
            BenchmarkId::new("action_write", chunk_kib),
            &chunk,
            |b, _| {
                b.to_async(&rt).iter(|| async {
                    harness
                        .action_write_existing(&write_action, total)
                        .await
                        .expect("write")
                });
            },
        );
        let read_action = format!("/ar-{}", UNIQUE.fetch_add(1, Ordering::Relaxed));
        rt.block_on(async {
            let store = harness.client().await.expect("client");
            store
                .create_action(
                    &read_action,
                    glider_core::ActionSpec::new("null", false)
                        .with_params(format!("size={}", total.as_u64())),
                )
                .await
                .expect("create read action");
        });
        group.bench_with_input(
            BenchmarkId::new("action_read", chunk_kib),
            &chunk,
            |b, _| {
                b.to_async(&rt).iter(|| async {
                    harness
                        .action_read_existing(&read_action)
                        .await
                        .expect("read")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bandwidth);
criterion_main!(benches);
