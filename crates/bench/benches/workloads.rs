//! End-to-end workload benches: tiny instances of the Fig. 5 reduce and
//! Fig. 7 sort, baseline vs Glider, so regressions in the full pipelines
//! show up in `cargo bench` without running the harness binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glider_analytics::reduce::{self, ReduceConfig};
use glider_analytics::sort::{self, SortConfig};

fn bench_workloads(c: &mut Criterion) {
    let rt = glider_bench::runtime();
    let mut group = c.benchmark_group("workloads");
    group.sample_size(10);

    let reduce_cfg = ReduceConfig {
        workers: 2,
        pairs_per_worker: 10_000,
        ..ReduceConfig::default()
    };
    group.bench_with_input(
        BenchmarkId::new("reduce", "baseline"),
        &reduce_cfg,
        |b, cfg| {
            b.to_async(&rt)
                .iter(|| async { reduce::run_baseline(cfg).await.expect("run") });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("reduce", "glider"),
        &reduce_cfg,
        |b, cfg| {
            b.to_async(&rt)
                .iter(|| async { reduce::run_glider(cfg).await.expect("run") });
        },
    );

    let sort_cfg = SortConfig {
        workers: 2,
        records_per_worker: 5_000,
        ..SortConfig::default()
    };
    group.bench_with_input(BenchmarkId::new("sort", "baseline"), &sort_cfg, |b, cfg| {
        b.to_async(&rt)
            .iter(|| async { sort::run_baseline(cfg).await.expect("run") });
    });
    group.bench_with_input(BenchmarkId::new("sort", "glider"), &sort_cfg, |b, cfg| {
        b.to_async(&rt)
            .iter(|| async { sort::run_glider(cfg).await.expect("run") });
    });
    group.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
