//! Ablation: the §4.2 interleaving design choice.
//!
//! N concurrent writers stream pairs into one `merge` action with
//! interleaving on vs off. Without interleaving, method executions
//! serialize and the writers' streams progress one at a time; with it,
//! methods take turns at I/O waits and the writers overlap — the paper's
//! motivation for Orleans-style turns ("this effectively optimizes
//! network utilization").

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use glider_core::{ActionSpec, Cluster, ClusterConfig};
use glider_util::textgen::PairGen;
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

const WRITERS: usize = 4;
const PAIRS_PER_WRITER: usize = 20_000;

fn bench_interleaving(c: &mut Criterion) {
    let rt = glider_bench::runtime();
    let cluster = rt.block_on(async {
        Cluster::start(ClusterConfig::default().with_active(1, 256))
            .await
            .expect("cluster")
    });
    // Pre-generate the payloads once.
    let payloads: Vec<Bytes> = (0..WRITERS)
        .map(|w| Bytes::from(PairGen::new(w as u64, 1024).generate_pairs(PAIRS_PER_WRITER)))
        .collect();
    let payload_bytes: u64 = payloads.iter().map(|p| p.len() as u64).sum();

    let mut group = c.benchmark_group("interleaving");
    group.throughput(Throughput::Bytes(payload_bytes));
    group.sample_size(10);

    for interleaved in [false, true] {
        group.bench_with_input(
            BenchmarkId::new("merge_4_writers", interleaved),
            &interleaved,
            |b, &interleaved| {
                b.to_async(&rt).iter(|| {
                    let cluster = &cluster;
                    let payloads = payloads.clone();
                    async move {
                        let store = cluster.client().await.expect("client");
                        let path = format!(
                            "/il-{}-{}",
                            interleaved,
                            UNIQUE.fetch_add(1, Ordering::Relaxed)
                        );
                        let action = store
                            .create_action(&path, ActionSpec::new("merge", interleaved))
                            .await
                            .expect("create");
                        let mut tasks = Vec::new();
                        for payload in payloads {
                            let action = action.clone();
                            tasks.push(tokio::spawn(async move {
                                action.write_all(payload).await.expect("write");
                            }));
                        }
                        for t in tasks {
                            t.await.expect("writer");
                        }
                        store.delete(&path).await.expect("cleanup");
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_interleaving);
criterion_main!(benches);
