//! Ablation: the operation window ("keep a data operation always in
//! flight", paper §6.1/§7.2). Window = 1 is the paper's *direct* stream
//! (one op at a time); larger windows are *buffered* streams.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use glider_core::{Cluster, ClusterConfig, StoreClient};
use glider_util::ByteSize;
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

const TOTAL: u64 = 4 * 1024 * 1024;

fn bench_window(c: &mut Criterion) {
    let rt = glider_bench::runtime();
    let cluster = rt.block_on(async {
        Cluster::start(ClusterConfig::default().with_data(1, 2048))
            .await
            .expect("cluster")
    });

    let mut group = c.benchmark_group("window");
    group.throughput(Throughput::Bytes(TOTAL));
    group.sample_size(10);

    for window in [1usize, 2, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("file_write_4MiB", window),
            &window,
            |b, &window| {
                b.to_async(&rt).iter(|| {
                    let cluster = &cluster;
                    async move {
                        let config = cluster
                            .client_config()
                            .with_chunk_size(ByteSize::kib(64))
                            .with_window(window);
                        let store = StoreClient::connect(config).await.expect("client");
                        let path = format!("/w-{}", UNIQUE.fetch_add(1, Ordering::Relaxed));
                        let file = store.create_file(&path).await.expect("create");
                        let mut out = file.output_stream().await.expect("stream");
                        let chunk = bytes::Bytes::from(vec![0u8; 64 * 1024]);
                        let mut remaining = TOTAL;
                        while remaining > 0 {
                            let n = remaining.min(chunk.len() as u64);
                            out.write(chunk.slice(..n as usize)).await.expect("write");
                            remaining -= n;
                        }
                        out.close().await.expect("close");
                        store.delete(&path).await.expect("cleanup");
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_window);
criterion_main!(benches);
