//! Ablation: TCP vs the in-process RDMA-simulation transport for
//! action traffic (the substitution behind Table 2's "Glider (RDMA)"
//! row — see DESIGN.md §4), plus a raw data-plane payload sweep
//! (4 KiB → 4 MiB over TCP and `mem://`) that also refreshes the
//! `BENCH_transport.json` baseline at the repository root.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use glider_bench::transport::{
    baseline_from_env, render_transport_json, sweep_transport, SWEEP_SIZES, SWEEP_WINDOW,
};
use glider_core::{ActionSpec, Cluster, ClusterConfig};
use glider_util::ByteSize;
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

const TRANSFER: u64 = 4 * 1024 * 1024;

/// Bytes moved per direction per payload size in the sweep (kept modest so
/// `cargo bench` stays quick; the `transport_sweep` binary scales it up).
const SWEEP_TOTAL: u64 = 64 * 1024 * 1024;

fn bench_payload_sweep(c: &mut Criterion) {
    let rt = glider_bench::runtime();
    let mut group = c.benchmark_group("transport_payload");
    group.sample_size(10);

    for addr in ["127.0.0.1:0", "mem://bench-transport"] {
        let name = if addr.starts_with("mem://") {
            "mem"
        } else {
            "tcp"
        };
        for &size in SWEEP_SIZES {
            group.throughput(Throughput::Bytes(size));
            group.bench_with_input(
                BenchmarkId::new(format!("write_{}", ByteSize::bytes(size)), name),
                &size,
                |b, &size| {
                    b.to_async(&rt).iter(|| async move {
                        sweep_transport(addr, &[size], size * 4, 4)
                            .await
                            .expect("sweep");
                    });
                },
            );
        }
    }
    group.finish();

    // One full measured sweep to refresh the committed baseline document.
    let samples = rt.block_on(async {
        let mut all = Vec::new();
        for addr in ["127.0.0.1:0", "mem://bench-transport-final"] {
            all.extend(
                sweep_transport(addr, SWEEP_SIZES, SWEEP_TOTAL, SWEEP_WINDOW)
                    .await
                    .expect("sweep"),
            );
        }
        all
    });
    let doc = render_transport_json(&samples, baseline_from_env());
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_transport.json");
    if let Err(err) = std::fs::write(&path, doc) {
        eprintln!("could not write {}: {err}", path.display());
    }
}

fn bench_transport(c: &mut Criterion) {
    let rt = glider_bench::runtime();
    let mut group = c.benchmark_group("transport");
    group.throughput(Throughput::Bytes(TRANSFER));
    group.sample_size(10);

    for rdma in [false, true] {
        let cluster = rt.block_on(async {
            Cluster::start(
                ClusterConfig::default()
                    .with_active(1, 256)
                    .with_rdma_sim(rdma),
            )
            .await
            .expect("cluster")
        });
        let name = if rdma { "rdma_sim" } else { "tcp" };
        let payload = Bytes::from(vec![0u8; TRANSFER as usize]);
        group.bench_with_input(
            BenchmarkId::new("action_write_4MiB", name),
            &rdma,
            |b, _| {
                b.to_async(&rt).iter(|| {
                    let cluster = &cluster;
                    let payload = payload.clone();
                    async move {
                        // The client is a storage-tier peer here so that it
                        // is *allowed* on the mem:// fabric (workers are
                        // not): this isolates the fabric cost.
                        let config = cluster
                            .client_config()
                            .with_chunk_size(ByteSize::kib(256))
                            .intra_storage();
                        let store = glider_core::StoreClient::connect(config)
                            .await
                            .expect("client");
                        let path = format!("/t-{}", UNIQUE.fetch_add(1, Ordering::Relaxed));
                        let action = store
                            .create_action(&path, ActionSpec::new("null", false))
                            .await
                            .expect("create");
                        action.write_all(payload).await.expect("write");
                        store.delete(&path).await.expect("cleanup");
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transport, bench_payload_sweep);
criterion_main!(benches);
