//! Ablation: TCP vs the in-process RDMA-simulation transport for
//! action traffic (the substitution behind Table 2's "Glider (RDMA)"
//! row — see DESIGN.md §4).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use glider_core::{ActionSpec, Cluster, ClusterConfig};
use glider_util::ByteSize;
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

const TRANSFER: u64 = 4 * 1024 * 1024;

fn bench_transport(c: &mut Criterion) {
    let rt = glider_bench::runtime();
    let mut group = c.benchmark_group("transport");
    group.throughput(Throughput::Bytes(TRANSFER));
    group.sample_size(10);

    for rdma in [false, true] {
        let cluster = rt.block_on(async {
            Cluster::start(
                ClusterConfig::default()
                    .with_active(1, 256)
                    .with_rdma_sim(rdma),
            )
            .await
            .expect("cluster")
        });
        let name = if rdma { "rdma_sim" } else { "tcp" };
        let payload = Bytes::from(vec![0u8; TRANSFER as usize]);
        group.bench_with_input(
            BenchmarkId::new("action_write_4MiB", name),
            &rdma,
            |b, _| {
                b.to_async(&rt).iter(|| {
                    let cluster = &cluster;
                    let payload = payload.clone();
                    async move {
                        // The client is a storage-tier peer here so that it
                        // is *allowed* on the mem:// fabric (workers are
                        // not): this isolates the fabric cost.
                        let config = cluster
                            .client_config()
                            .with_chunk_size(ByteSize::kib(256))
                            .intra_storage();
                        let store = glider_core::StoreClient::connect(config)
                            .await
                            .expect("client");
                        let path =
                            format!("/t-{}", UNIQUE.fetch_add(1, Ordering::Relaxed));
                        let action = store
                            .create_action(&path, ActionSpec::new("null", false))
                            .await
                            .expect("create");
                        action.write_all(payload).await.expect("write");
                        store.delete(&path).await.expect("cleanup");
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transport);
criterion_main!(benches);
