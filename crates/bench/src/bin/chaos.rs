//! Drives the fault-injection scenarios of `glider_bench::chaos` over the
//! `mem://` transport and prints how the RPC plane absorbed each failure
//! mode (DESIGN.md §10).
//!
//! ```text
//! cargo run -p glider-bench --release --bin chaos
//! cargo run -p glider-bench --release --bin chaos -- --smoke
//! ```
//!
//! `--smoke` runs a small pass and asserts the fault-tolerance invariants
//! (used by CI's chaos job).

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = glider_bench::scale_from_args();
    let calls = if smoke {
        16
    } else {
        glider_bench::scaled(256, scale) as u64
    };

    let rt = glider_bench::runtime();
    let samples = rt
        .block_on(glider_bench::chaos::run_all(calls))
        .expect("chaos scenarios");

    println!("chaos scenarios over mem:// fault injection — {calls} calls/scenario");
    println!(
        "{:>20} {:>8} {:>10} {:>9} {:>11} {:>10}",
        "scenario", "calls", "failures", "retries", "reconnects", "elapsed"
    );
    for s in &samples {
        println!(
            "{:>20} {:>8} {:>10} {:>9} {:>11} {:>10.1?}",
            s.scenario, s.calls, s.surfaced_failures, s.retries, s.reconnects, s.elapsed
        );
    }

    glider_bench::chaos::assert_smoke(&samples);
    println!("chaos invariants ok");
}
