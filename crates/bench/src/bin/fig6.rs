//! Regenerates **Fig. 6**: action vs file bandwidth micro-benchmarks.
//!
//! Top half: average access bandwidth to files and actions, read and
//! write, buffer sizes {128, 256, 512, 1024} KiB (paper: 10 GiB per
//! measurement; actions run empty methods, and write bandwidth to actions
//! can *exceed* files because no blocks are allocated/committed).
//!
//! Bottom half: aggregate bandwidth with {1, 2, 4, 8} concurrent actions
//! (dedicated client each) vs the same for files.
//!
//! Run: `cargo run -p glider-bench --release --bin fig6 [--scale f]`

use glider_bench::{print_row, print_rule, scale_from_args, BwHarness};
use glider_util::ByteSize;

fn main() {
    let scale = scale_from_args();
    let rt = glider_bench::runtime();
    rt.block_on(async move {
        let total = ByteSize::mib(((64.0 * scale) as u64).max(8));
        println!("Fig. 6 (top) — bandwidth vs buffer size, {total} per measurement");
        let widths = [12, 14, 14, 14, 14];
        print_row(
            &[
                "buffer".into(),
                "file read".into(),
                "action read".into(),
                "file write".into(),
                "action write".into(),
            ],
            &widths,
        );
        print_rule(&widths);
        for kib in [128u64, 256, 512, 1024] {
            let chunk = ByteSize::kib(kib);
            let h = BwHarness::start(total, chunk, 8).await.expect("harness");
            let fw = h.file_write("/bw-file", total).await.expect("file write");
            let fr = h.file_read("/bw-file").await.expect("file read");
            let aw = h.action_write("/bw-aw", total).await.expect("action write");
            let ar = h.action_read("/bw-ar", total).await.expect("action read");
            print_row(
                &[
                    format!("{kib} KiB"),
                    format!("{fr:.2} Gbps"),
                    format!("{ar:.2} Gbps"),
                    format!("{fw:.2} Gbps"),
                    format!("{aw:.2} Gbps"),
                ],
                &widths,
            );
        }

        println!();
        let per = ByteSize::mib(((32.0 * scale) as u64).max(4));
        println!("Fig. 6 (bottom) — aggregate bandwidth vs number of concurrent actions ({per} each, 1 MiB buffers)");
        let widths = [10, 16, 16];
        print_row(
            &["n".into(), "actions".into(), "files".into()],
            &widths,
        );
        print_rule(&widths);
        for n in [1usize, 2, 4, 8] {
            let h = BwHarness::start(ByteSize::bytes(per.as_u64() * n as u64 * 2), ByteSize::mib(1), n as u64 + 2)
                .await
                .expect("harness");
            let actions = h.parallel_action_write(n, per).await.expect("actions");
            let files = h.parallel_file_write(n, per).await.expect("files");
            print_row(
                &[
                    n.to_string(),
                    format!("{actions:.2} Gbps"),
                    format!("{files:.2} Gbps"),
                ],
                &widths,
            );
        }
        println!();
        println!(
            "expected shape (paper): actions within ~±12% of files per buffer size; \
             aggregate bandwidth grows with n and plateaus at the fabric limit"
        );
    });
}
