//! Regenerates **Fig. 7**: the distributed sort sweep.
//!
//! Paper: workers ∈ {1, 2, 4, 8, 16}, 1 GiB per worker, phases P1 (map/
//! shuffle) and P2 (sort/write) for the baseline and Glider. Expected
//! shape: Glider always faster overall; Glider P1 slightly slower (the
//! actions parse while receiving), Glider P2 much faster (up to 71%); at
//! the largest point the total is ~50% faster.
//!
//! Run: `cargo run -p glider-bench --release --bin fig7 [--scale f]`

use glider_analytics::sort::{run_baseline, run_glider, SortConfig};
use glider_bench::{print_row, print_rule, scale_from_args, scaled};
use glider_net::stats::{build_stats, render_stats_json};

fn main() {
    let scale = scale_from_args();
    let rt = glider_bench::runtime();
    let last_glider_metrics = rt.block_on(async move {
        let records = scaled(100_000, scale);
        println!(
            "Fig. 7 — distributed sort, {records} records (100 B each) per worker (scale {scale})"
        );
        let widths = [8, 10, 10, 10, 10, 12];
        print_row(
            &[
                "workers".into(),
                "system".into(),
                "P1".into(),
                "P2".into(),
                "total".into(),
                "records".into(),
            ],
            &widths,
        );
        print_rule(&widths);
        let mut last_glider_metrics = None;
        for workers in [1usize, 2, 4, 8, 16] {
            let cfg = SortConfig {
                workers,
                records_per_worker: records,
                ..SortConfig::default()
            };
            let base = run_baseline(&cfg).await.expect("baseline run");
            let glider = run_glider(&cfg).await.expect("glider run");
            assert_eq!(
                base.output_checksum, glider.output_checksum,
                "results must match"
            );
            for (name, outcome) in [("baseline", &base), ("glider", &glider)] {
                print_row(
                    &[
                        workers.to_string(),
                        name.into(),
                        format!(
                            "{:.3}s",
                            outcome.report.phase("P1").unwrap_or_default().as_secs_f64()
                        ),
                        format!(
                            "{:.3}s",
                            outcome.report.phase("P2").unwrap_or_default().as_secs_f64()
                        ),
                        format!("{:.3}s", outcome.report.elapsed.as_secs_f64()),
                        outcome.output_records.to_string(),
                    ],
                    &widths,
                );
            }
            let cut = (1.0
                - glider.report.elapsed.as_secs_f64() / base.report.elapsed.as_secs_f64())
                * 100.0;
            let p2_cut = (1.0
                - glider.report.phase("P2").unwrap_or_default().as_secs_f64()
                    / base
                        .report
                        .phase("P2")
                        .unwrap_or_default()
                        .as_secs_f64()
                        .max(1e-9))
                * 100.0;
            println!(
                "  w={workers}: total run-time cut {cut:.1}% (paper: 49.8% at 16), \
                 P2 cut {p2_cut:.1}% (paper: up to 71%)"
            );
            last_glider_metrics = Some(glider.report.metrics.clone());
        }

        last_glider_metrics
    });

    // Per-op latency percentiles of the largest Glider run, in the same
    // schema as `glider stats --json`. Written outside the async block:
    // blocking file I/O must not run on an executor thread.
    if let Some(snapshot) = last_glider_metrics {
        let doc = render_stats_json(&build_stats(&snapshot));
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_latency.json");
        std::fs::write(&path, doc).expect("write BENCH_latency.json");
        println!("wrote {}", path.display());
    }
}
