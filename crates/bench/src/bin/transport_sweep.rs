//! Sweeps raw data-plane throughput (windowed `WriteBlock`/`ReadBlock`
//! RPCs, 4 KiB → 4 MiB payloads) over TCP loopback and the `mem://`
//! fabric, and writes `BENCH_transport.json` at the repository root.
//!
//! To record a before/after comparison, run the pre-change build first,
//! note its 1 MiB TCP write number, then re-run the post-change build
//! with `GLIDER_TRANSPORT_BASELINE_GBPS=<that number>`:
//!
//! ```text
//! cargo run -p glider-bench --release --bin transport_sweep
//! GLIDER_TRANSPORT_BASELINE_GBPS=9.4 \
//!     cargo run -p glider-bench --release --bin transport_sweep
//! ```

use glider_bench::transport::{
    baseline_from_env, render_transport_json, sweep_transport, SWEEP_SIZES, SWEEP_WINDOW,
};
use glider_util::ByteSize;

fn main() {
    let scale = glider_bench::scale_from_args();
    let total = ((256.0 * scale) as u64).max(16) * 1024 * 1024;
    let rt = glider_bench::runtime();
    let mut samples = Vec::new();
    rt.block_on(async {
        for addr in ["127.0.0.1:0", "mem://transport-sweep"] {
            let batch = sweep_transport(addr, SWEEP_SIZES, total, SWEEP_WINDOW)
                .await
                .expect("transport sweep");
            samples.extend(batch);
        }
    });

    println!(
        "transport sweep — {} per size per direction, window {SWEEP_WINDOW}",
        ByteSize::bytes(total)
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>13} {:>13}",
        "xport", "payload", "write Gbps", "read Gbps", "write p50 us", "read p50 us"
    );
    for s in &samples {
        println!(
            "{:>6} {:>12} {:>12.2} {:>12.2} {:>13.1} {:>13.1}",
            s.transport,
            ByteSize::bytes(s.payload_bytes).to_string(),
            s.write_gbps,
            s.read_gbps,
            s.write_latency.p50() as f64 / 1e3,
            s.read_latency.p50() as f64 / 1e3,
        );
    }

    let doc = render_transport_json(&samples, baseline_from_env());
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_transport.json");
    std::fs::write(&path, doc).expect("write BENCH_transport.json");
    println!("wrote {}", path.display());
}
