//! Sweeps raw data-plane throughput (windowed `WriteBlock`/`ReadBlock`
//! RPCs, 4 KiB → 4 MiB payloads) over TCP loopback and the `mem://`
//! fabric, and writes `BENCH_transport.json` at the repository root.
//!
//! To record a before/after comparison, run the pre-change build first,
//! note its 1 MiB TCP write number, then re-run the post-change build
//! with `GLIDER_TRANSPORT_BASELINE_GBPS=<that number>`:
//!
//! ```text
//! cargo run -p glider-bench --release --bin transport_sweep
//! GLIDER_TRANSPORT_BASELINE_GBPS=9.4 \
//!     cargo run -p glider-bench --release --bin transport_sweep
//! cargo run -p glider-bench --release --bin transport_sweep -- --smoke
//! ```
//!
//! `--smoke` is CI's bench-gate mode: a short two-size sweep whose 1 MiB
//! TCP write number is compared against the committed
//! `BENCH_transport.json` (tolerance `GLIDER_BENCH_TOLERANCE`, default
//! 15%; an empty/null baseline passes with a bootstrap warning). Smoke
//! runs never rewrite the JSON. Both modes assert the ≥95% steady-state
//! buffer-pool hit rate inside the sweep itself.

use glider_bench::transport::{
    baseline_from_env, render_transport_json, sweep_transport, TransportSample, SWEEP_SIZES,
    SWEEP_WINDOW,
};
use glider_util::ByteSize;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = glider_bench::scale_from_args();
    // Smoke keeps 1 MiB in the mix (the gated size) and runs ≥ 20×window
    // iterations per size so the pool hit-rate assertion is armed.
    let (sizes, total, window): (&[u64], u64, usize) = if smoke {
        (&[64 * 1024, 1024 * 1024], 160 * 1024 * 1024, 8)
    } else {
        (
            SWEEP_SIZES,
            ((256.0 * scale) as u64).max(16) * 1024 * 1024,
            SWEEP_WINDOW,
        )
    };

    let rt = glider_bench::runtime();
    let mut samples = Vec::new();
    rt.block_on(async {
        for addr in ["127.0.0.1:0", "mem://transport-sweep"] {
            let batch = sweep_transport(addr, sizes, total, window)
                .await
                .expect("transport sweep");
            samples.extend(batch);
        }
    });

    println!(
        "transport sweep — {} per size per direction, window {window}",
        ByteSize::bytes(total)
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>13} {:>13} {:>9}",
        "xport", "payload", "write Gbps", "read Gbps", "write p50 us", "read p50 us", "pool hit"
    );
    for s in &samples {
        println!(
            "{:>6} {:>12} {:>12.2} {:>12.2} {:>13.1} {:>13.1} {:>8.1}%",
            s.transport,
            ByteSize::bytes(s.payload_bytes).to_string(),
            s.write_gbps,
            s.read_gbps,
            s.write_latency.p50() as f64 / 1e3,
            s.read_latency.p50() as f64 / 1e3,
            s.write_pool_hit_rate * 100.0,
        );
    }

    if smoke {
        let current = gated_sample(&samples).expect("smoke sweep includes 1 MiB tcp");
        let baseline = glider_bench::gate::committed_baseline(
            env!("CARGO_MANIFEST_DIR"),
            "BENCH_transport.json",
            "current_1mib_tcp_write_gbps",
        );
        let ok = glider_bench::gate::report(
            "1mib_tcp_write_gbps",
            baseline,
            current,
            glider_bench::gate::tolerance_from_env(),
        );
        if !ok {
            std::process::exit(1);
        }
        println!("smoke pass ok");
        return;
    }

    let doc = render_transport_json(&samples, baseline_from_env());
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_transport.json");
    std::fs::write(&path, doc).expect("write BENCH_transport.json");
    println!("wrote {}", path.display());
}

/// The gated headline number: 1 MiB TCP write throughput.
fn gated_sample(samples: &[TransportSample]) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.transport == "tcp" && s.payload_bytes == 1024 * 1024)
        .map(|s| s.write_gbps)
}
