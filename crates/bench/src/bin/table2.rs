//! Regenerates **Table 2**: the ingest pre-processing pipeline.
//!
//! Paper (10 GiB, 10 workers, 100 Gbps cluster):
//!
//! | | Ingested | Time (s) | Throughput |
//! |---|---|---|---|
//! | Data-shipping | 10 GiB | 28.866 | 2.98 Gbps |
//! | Glider | 25.7 MiB | 10.813 | 7.94 Gbps |
//! | Glider (RDMA) | 25.7 MiB | 9.182 | 9.36 Gbps |
//!
//! Run: `cargo run -p glider-bench --release --bin table2 [--scale f]`

use glider_analytics::pipeline::{run_baseline, run_glider, PipelineConfig, PipelineOutcome};
use glider_bench::{bytes_h, print_row, print_rule, scale_from_args, scaled};
use glider_core::MetricsSnapshot;
use glider_util::ByteSize;

fn main() {
    let scale = scale_from_args();
    let rt = glider_bench::runtime();
    rt.block_on(async move {
        let cfg = PipelineConfig {
            workers: 10,
            bytes_per_worker: ByteSize::mib(scaled(16, scale) as u64),
            selectivity: 0.0025,
            ..PipelineConfig::default()
        };
        println!(
            "Table 2 — data processing pipeline on {} with {} workers (scale {scale})",
            bytes_h(cfg.bytes_per_worker.as_u64() * cfg.workers as u64),
            cfg.workers
        );
        match cfg.worker_bandwidth_mibps {
            Some(bw) => println!(
                "worker links capped at {bw} MiB/s (the paper's compute/storage bandwidth \
                 asymmetry; see EXPERIMENTS.md)"
            ),
            None => println!("worker links uncapped"),
        }
        let widths = [16, 12, 10, 12, 12];
        print_row(
            &[
                "".into(),
                "Ingested".into(),
                "Time (s)".into(),
                "Throughput".into(),
                "Words".into(),
            ],
            &widths,
        );
        print_rule(&widths);

        let base = run_baseline(&cfg).await.expect("baseline run");
        print_outcome("Data-shipping", &base, &widths);

        let glider = run_glider(&cfg).await.expect("glider run");
        print_outcome("Glider", &glider, &widths);

        let mut rdma_cfg = cfg.clone();
        rdma_cfg.rdma = true;
        let rdma = run_glider(&rdma_cfg).await.expect("glider rdma run");
        print_outcome("Glider (RDMA)", &rdma, &widths);

        assert_eq!(base.total_words, glider.total_words, "results must match");
        assert_eq!(base.total_words, rdma.total_words, "results must match");
        let ingest_cut = MetricsSnapshot::reduction_pct(
            base.report.metrics.compute_ingress_bytes(),
            glider.report.metrics.compute_ingress_bytes(),
        );
        println!();
        println!("data transfer reduction (paper: 99.75%): {ingest_cut:.2}%");
        println!(
            "speedup Glider vs baseline (paper: 2.7x): {:.2}x",
            glider.report.speedup_vs(&base.report)
        );
        println!(
            "speedup Glider (RDMA) vs baseline (paper: 3.14x): {:.2}x",
            rdma.report.speedup_vs(&base.report)
        );
    });
}

fn print_outcome(label: &str, outcome: &PipelineOutcome, widths: &[usize]) {
    let ingested = outcome.report.metrics.compute_ingress_bytes();
    print_row(
        &[
            label.into(),
            bytes_h(ingested),
            format!("{:.3}", outcome.report.elapsed.as_secs_f64()),
            format!("{:.2} Gbps", outcome.report.gbps(outcome.input_bytes)),
            outcome.total_words.to_string(),
        ],
        widths,
    );
}
