//! Regenerates **Fig. 9**: serverless genomics variant calling.
//!
//! Paper: x-axis points `a×q,r` ∈ {1×5,1; 2×10,1; 3×20,2; 5×20,2;
//! 20×35,2-3} with stacked Map / Ranges / Reduce times for the baseline
//! (S3 + S3 SELECT) and Glider (Sampler/Manager/Reader actions). Expected
//! shape: Glider's map is slightly slower (sampling happens at the
//! actions), its range phase is much faster (no SELECT re-read of the
//! intermediate data), and the reduce is faster; total improves up to
//! ~36-40% at full scale.
//!
//! The full 20×35 point runs 700 mappers; include it with `--full`.
//!
//! Run: `cargo run -p glider-bench --release --bin fig9 [--scale f] [--full]`

use glider_analytics::genomics::{run_baseline, run_glider, GenomicsConfig};
use glider_bench::{print_row, print_rule, scale_from_args, scaled};

fn main() {
    let scale = scale_from_args();
    let full = std::env::args().any(|a| a == "--full");
    let rt = glider_bench::runtime();
    rt.block_on(async move {
        let records = scaled(20_000, scale);
        let mut points = vec![(1, 5, 1), (2, 10, 1), (3, 20, 2), (5, 20, 2)];
        if full {
            points.push((20, 35, 2));
        }
        println!(
            "Fig. 9 — genomics variant calling, {records} records per map task (scale {scale})"
        );
        let widths = [10, 10, 10, 10, 10, 10, 12];
        print_row(
            &[
                "a x q,r".into(),
                "system".into(),
                "map".into(),
                "ranges".into(),
                "reduce".into(),
                "total".into(),
                "functions".into(),
            ],
            &widths,
        );
        print_rule(&widths);
        for (a, q, r) in points {
            let mut cfg = GenomicsConfig::point(a, q, r);
            cfg.records_per_map = records;
            let base = run_baseline(&cfg).await.expect("baseline run");
            let glider = run_glider(&cfg).await.expect("glider run");
            assert_eq!(
                base.variants_checksum, glider.variants_checksum,
                "results must match"
            );
            for (name, outcome) in [("baseline", &base), ("glider", &glider)] {
                print_row(
                    &[
                        format!("{a}x{q},{r}"),
                        name.into(),
                        phase(outcome, "map"),
                        phase(outcome, "ranges"),
                        phase(outcome, "reduce"),
                        format!("{:.3}s", outcome.report.elapsed.as_secs_f64()),
                        outcome.invocations.to_string(),
                    ],
                    &widths,
                );
            }
            let cut = (1.0
                - glider.report.elapsed.as_secs_f64() / base.report.elapsed.as_secs_f64())
                * 100.0;
            println!(
                "  {a}x{q},{r}: total run-time cut {cut:.1}% (paper: up to 36-40% at scale); \
                 baseline scanned {} via SELECT, glider scanned 0",
                glider_bench::bytes_h(base.report.metrics.object_scanned)
            );
        }
    });
}

fn phase(outcome: &glider_analytics::genomics::GenomicsOutcome, name: &str) -> String {
    format!(
        "{:.3}s",
        outcome.report.phase(name).unwrap_or_default().as_secs_f64()
    )
}
