//! Regenerates **Fig. 5**: the reduce (aggregation) sweep.
//!
//! Paper: workers ∈ {1, 2, 5, 10}, each emitting 50M `(key,value)` pairs
//! (~1 GiB); left plot = total time, right plot = data transferred
//! between workers and storage. Plus the §7.1 claims: 50% fewer storage
//! accesses and ~99.8% lower storage utilization.
//!
//! Run: `cargo run -p glider-bench --release --bin fig5 [--scale f]`

use glider_analytics::reduce::{run_baseline, run_glider, ReduceConfig};
use glider_bench::{bytes_h, print_row, print_rule, scale_from_args, scaled};
use glider_core::MetricsSnapshot;

fn main() {
    let scale = scale_from_args();
    let rt = glider_bench::runtime();
    rt.block_on(async move {
        let pairs = scaled(500_000, scale);
        println!("Fig. 5 — reduce: {pairs} pairs/worker, 1024 keys (scale {scale})");
        let widths = [8, 10, 12, 14, 12, 12, 14];
        print_row(
            &[
                "workers".into(),
                "system".into(),
                "time".into(),
                "transferred".into(),
                "accesses".into(),
                "peak util".into(),
                "keys".into(),
            ],
            &widths,
        );
        print_rule(&widths);
        for workers in [1usize, 2, 5, 10] {
            let cfg = ReduceConfig {
                workers,
                pairs_per_worker: pairs,
                ..ReduceConfig::default()
            };
            let base = run_baseline(&cfg).await.expect("baseline run");
            let glider = run_glider(&cfg).await.expect("glider run");
            assert_eq!(base.dictionary, glider.dictionary, "results must match");
            for (name, outcome) in [("baseline", &base), ("glider", &glider)] {
                print_row(
                    &[
                        workers.to_string(),
                        name.into(),
                        format!("{:.3}s", outcome.report.elapsed.as_secs_f64()),
                        bytes_h(outcome.report.tier_crossing_bytes()),
                        outcome.report.storage_accesses().to_string(),
                        bytes_h(outcome.report.peak_utilization()),
                        outcome.dictionary.len().to_string(),
                    ],
                    &widths,
                );
            }
            let access_cut = MetricsSnapshot::reduction_pct(
                base.report.storage_accesses(),
                glider.report.storage_accesses(),
            );
            let util_cut = MetricsSnapshot::reduction_pct(
                base.report.peak_utilization(),
                glider.report.peak_utilization(),
            );
            let xfer_cut = MetricsSnapshot::reduction_pct(
                base.report.tier_crossing_bytes(),
                glider.report.tier_crossing_bytes(),
            );
            println!(
                "  w={workers}: transfer cut {xfer_cut:.1}% (paper ~50%), access cut \
                 {access_cut:.1}% (paper 50%), utilization cut {util_cut:.2}% (paper ~99.8%)"
            );
        }
    });
}
