//! Runs every table/figure harness in sequence (paper evaluation §7).
//!
//! Run: `cargo run -p glider-bench --release --bin all [--scale f]`
//!
//! Equivalent to running `table2`, `fig5`, `fig6`, `fig7` and `fig9`
//! one after another with the same scale.

use std::process::Command;

fn main() {
    let scale = glider_bench::scale_from_args();
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe dir");
    for bin in ["table2", "fig5", "fig6", "fig7", "fig9"] {
        println!("\n================ {bin} ================\n");
        let status = Command::new(dir.join(bin))
            .arg("--scale")
            .arg(scale.to_string())
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nall harnesses completed");
}
