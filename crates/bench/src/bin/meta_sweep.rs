//! Sweeps metadata-plane throughput (create / lookup / batched
//! `AddBlocks` ops/s) over 1–64 concurrent clients, measures metadata
//! RPCs per MiB streamed for the singular vs. batched protocol, and
//! writes `BENCH_metadata.json` at the repository root.
//!
//! ```text
//! cargo run -p glider-bench --release --bin meta_sweep
//! cargo run -p glider-bench --release --bin meta_sweep -- --smoke
//! ```
//!
//! `--smoke` is CI's bench-gate mode: a seconds-long pass that asserts
//! the batched protocol still at least halves metadata RPCs and compares
//! the measured RPC-reduction ratio against the committed
//! `BENCH_metadata.json` (tolerance `GLIDER_BENCH_TOLERANCE`, default
//! 15%; an empty/null baseline passes with a bootstrap warning). Smoke
//! runs never rewrite the JSON.

use glider_bench::meta::{
    measure_rpc_efficiency, render_metadata_json, sweep_concurrency, SWEEP_ALLOC_BATCH,
};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = glider_bench::scale_from_args();
    let (levels, ops, mib): (&[usize], usize, u64) = if smoke {
        (&[1, 4], 16, 1)
    } else {
        (&[1, 4, 16, 64], glider_bench::scaled(100, scale), 16)
    };

    let rt = glider_bench::runtime();
    let (samples, efficiency) = rt.block_on(async {
        let samples = sweep_concurrency(levels, ops).await.expect("meta sweep");
        let efficiency = measure_rpc_efficiency(mib).await.expect("rpc efficiency");
        (samples, efficiency)
    });

    println!("metadata sweep — {ops} ops/client/phase, AddBlocks batch {SWEEP_ALLOC_BATCH}");
    println!(
        "{:>8} {:>14} {:>14} {:>16}",
        "clients", "create op/s", "lookup op/s", "add-blocks op/s"
    );
    for s in &samples {
        println!(
            "{:>8} {:>14.0} {:>14.0} {:>16.0}",
            s.clients, s.create_ops_per_s, s.lookup_ops_per_s, s.add_blocks_ops_per_s
        );
    }
    println!(
        "metadata RPCs per MiB streamed: singular {:.2}, batched {:.2} ({:.1}x fewer)",
        efficiency.singular_rpcs_per_mib,
        efficiency.batched_rpcs_per_mib,
        efficiency.improvement()
    );

    if smoke {
        assert!(
            efficiency.improvement() >= 2.0,
            "batched protocol must at least halve metadata RPCs"
        );
        let baseline = glider_bench::gate::committed_baseline(
            env!("CARGO_MANIFEST_DIR"),
            "BENCH_metadata.json",
            "rpc_reduction",
        );
        let ok = glider_bench::gate::report(
            "rpc_reduction",
            baseline,
            efficiency.improvement(),
            glider_bench::gate::tolerance_from_env(),
        );
        if !ok {
            std::process::exit(1);
        }
        println!("smoke pass ok");
        return;
    }

    let doc = render_metadata_json(&samples, Some(efficiency));
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_metadata.json");
    std::fs::write(&path, doc).expect("write BENCH_metadata.json");
    println!("wrote {}", path.display());
}
