//! Sweeps record throughput through near-data action pipelines (batched
//! record framing into `counter` actions) against the data-shipping
//! baseline (file round-trip), over instance counts and record sizes on
//! the `mem://` intra-storage fabric, and writes `BENCH_actions.json` at
//! the repository root.
//!
//! To record a before/after comparison, run the pre-change build first,
//! note its headline MiB/s, then re-run the post-change build with
//! `GLIDER_ACTIONS_BASELINE_MIBPS=<that number>`:
//!
//! ```text
//! cargo run -p glider-bench --release --bin actions_sweep
//! GLIDER_ACTIONS_BASELINE_MIBPS=25.0 \
//!     cargo run -p glider-bench --release --bin actions_sweep
//! cargo run -p glider-bench --release --bin actions_sweep -- --smoke
//! ```
//!
//! `--smoke` is CI's bench-gate mode: a short 1-and-8-instance sweep
//! whose glider headline (MiB/s at the largest point) is compared against
//! the committed `BENCH_actions.json` (tolerance `GLIDER_BENCH_TOLERANCE`,
//! default 15%; an empty/null baseline passes with a bootstrap warning).
//! Smoke runs never rewrite the JSON. Both modes validate byte counts and
//! assert the ≥90% steady-state batch-buffer pool hit rate inside the
//! sweep itself.

use glider_bench::actions::{
    baseline_from_env, render_actions_json, sweep_actions, ActionsSample, SWEEP_INSTANCES,
    SWEEP_RECORD_SIZES,
};
use glider_util::ByteSize;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = glider_bench::scale_from_args();
    // Smoke keeps the 1→8 scaling endpoints and enough batches per
    // instance to arm the pool hit-rate assertion.
    let (instances, record_sizes, per_instance): (&[usize], &[usize], u64) = if smoke {
        (&[1, 8], &[1024], 4 * 1024 * 1024)
    } else {
        (
            SWEEP_INSTANCES,
            SWEEP_RECORD_SIZES,
            ((8.0 * scale) as u64).max(4) * 1024 * 1024,
        )
    };

    let rt = glider_bench::runtime();
    let samples = rt
        .block_on(sweep_actions(instances, record_sizes, per_instance, true))
        .expect("actions sweep");

    println!(
        "actions sweep — {} per instance, mem:// fabric",
        ByteSize::bytes(per_instance)
    );
    println!(
        "{:>9} {:>10} {:>8} {:>14} {:>10} {:>9}",
        "mode", "instances", "record", "records/s", "MiB/s", "pool hit"
    );
    for s in &samples {
        println!(
            "{:>9} {:>10} {:>8} {:>14.0} {:>10.2} {:>8.1}%",
            s.mode,
            s.instances,
            s.record_bytes,
            s.records_per_s,
            s.mib_per_s,
            s.pool_hit_rate * 100.0,
        );
    }

    if smoke {
        let current = gated_sample(&samples).expect("smoke sweep includes the headline point");
        let baseline = glider_bench::gate::committed_baseline(
            env!("CARGO_MANIFEST_DIR"),
            "BENCH_actions.json",
            "current_glider_mibps",
        );
        let ok = glider_bench::gate::report(
            "glider_mibps",
            baseline,
            current,
            glider_bench::gate::tolerance_from_env(),
        );
        if !ok {
            std::process::exit(1);
        }
        println!("smoke pass ok");
        return;
    }

    let doc = render_actions_json(&samples, baseline_from_env(), None);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_actions.json");
    std::fs::write(&path, doc).expect("write BENCH_actions.json");
    println!("wrote {}", path.display());
}

/// The gated headline number: glider MiB/s at the largest measured point.
fn gated_sample(samples: &[ActionsSample]) -> Option<f64> {
    let max_record = samples.iter().map(|s| s.record_bytes).max()?;
    let max_instances = samples.iter().map(|s| s.instances).max()?;
    samples
        .iter()
        .find(|s| {
            s.mode == "glider" && s.instances == max_instances && s.record_bytes == max_record
        })
        .map(|s| s.mib_per_s)
}
