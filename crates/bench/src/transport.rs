//! Raw data-plane throughput sweeps over the framed RPC transports.
//!
//! Unlike the cluster-level harnesses, this module measures the wire path
//! itself: a windowed stream of `WriteBlock`/`ReadBlock` RPCs against a
//! sink handler, over TCP loopback and the `mem://` fabric. It backs the
//! `transport` Criterion bench and the `transport_sweep` binary, both of
//! which emit `BENCH_transport.json` so PRs can track data-plane
//! throughput over time (the zero-copy/batched framing work is judged on
//! these numbers).

use bytes::Bytes;
use futures::future::BoxFuture;
use glider_metrics::{HistogramSnapshot, MetricsRegistry, OpKind, Tier};
use glider_net::rpc::{ConnCtx, RpcClient, RpcHandler};
use glider_net::BytesPool;
use glider_proto::message::{RequestBody, ResponseBody};
use glider_proto::types::BlockId;
use glider_proto::{ErrorCode, GliderError, GliderResult};
use glider_util::stopwatch::gbps;
use std::sync::Arc;
use std::time::Instant;

/// Payload sizes of the standard sweep: 4 KiB → 4 MiB.
pub const SWEEP_SIZES: &[u64] = &[
    4 * 1024,
    16 * 1024,
    64 * 1024,
    256 * 1024,
    1024 * 1024,
    4 * 1024 * 1024,
];

/// Concurrent in-flight RPCs per measurement (the paper's batched-async
/// operation window, §7.2).
pub const SWEEP_WINDOW: usize = 16;

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct TransportSample {
    /// `"tcp"` or `"mem"`.
    pub transport: &'static str,
    /// Bulk payload bytes per RPC.
    pub payload_bytes: u64,
    /// Client→server throughput (windowed `WriteBlock` stream).
    pub write_gbps: f64,
    /// Server→client throughput (windowed `ReadBlock` stream).
    pub read_gbps: f64,
    /// Server-side per-op dispatch latency of the write phase.
    pub write_latency: HistogramSnapshot,
    /// Server-side per-op dispatch latency of the read phase.
    pub read_latency: HistogramSnapshot,
    /// Fraction of write payload buffers served from the registered
    /// buffer pool (steady state should only miss during warmup).
    pub write_pool_hit_rate: f64,
}

/// Server side of the sweep: acknowledges writes and answers reads with
/// zero-copy slices of one preallocated blob (so the measurement sees the
/// transport, not server-side allocation).
struct SinkHandler {
    blob: Bytes,
}

impl RpcHandler for SinkHandler {
    fn handle(
        self: Arc<Self>,
        _ctx: ConnCtx,
        body: RequestBody,
    ) -> BoxFuture<'static, GliderResult<ResponseBody>> {
        let resp = match body {
            RequestBody::Hello { .. } => Ok(ResponseBody::Ok),
            RequestBody::WriteBlock { data, .. } => Ok(ResponseBody::Written {
                n: data.len() as u64,
            }),
            RequestBody::ReadBlock { len, .. } => {
                let n = (len as usize).min(self.blob.len());
                Ok(ResponseBody::Data {
                    seq: 0,
                    bytes: self.blob.slice(..n),
                    eof: true,
                })
            }
            other => Err(GliderError::new(
                ErrorCode::Unsupported,
                format!("transport sink does not serve {}", other.op_name()),
            )),
        };
        Box::pin(async move { resp })
    }
}

/// Sweeps windowed write and read throughput for every payload size in
/// `sizes`, moving roughly `total_per_size` bytes per direction per size.
///
/// `addr` selects the transport (`127.0.0.1:0` or `mem://…`). Calls are
/// issued on one flow-controlled logical stream and write payloads come
/// from a [`BytesPool`]; when a size runs at least `20 × window` writes
/// the sweep asserts a ≥95% steady-state pool hit rate (only the warmup
/// window may allocate).
///
/// # Errors
///
/// Propagates bind/connect/RPC failures.
pub async fn sweep_transport(
    addr: &str,
    sizes: &[u64],
    total_per_size: u64,
    window: usize,
) -> GliderResult<Vec<TransportSample>> {
    let transport = if addr.starts_with(glider_net::conn::MEM_SCHEME) {
        "mem"
    } else {
        "tcp"
    };
    let metrics = MetricsRegistry::new();
    let listener = glider_net::conn::bind(addr).await?;
    let max = sizes.iter().copied().max().unwrap_or(0) as usize;
    let server = glider_net::rpc::serve(
        listener,
        Arc::new(SinkHandler {
            blob: Bytes::from(vec![0x42u8; max]),
        }),
        Arc::clone(&metrics),
        Tier::Storage,
    );
    let client = RpcClient::connect_intra_storage(server.addr()).await?;
    // All calls ride one flow-controlled logical stream whose window
    // matches the sweep window, so the measurement also covers the
    // stream-multiplexing and credit path.
    let stream = Arc::new(client.open_stream(u32::try_from(window).unwrap_or(u32::MAX)));

    let mut out = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let iters = (total_per_size / size).max(window as u64) as usize;
        // Write payloads come from the registered buffer pool: each op
        // takes a buffer, fills it from the template, sends the frozen
        // handle, and recycles it once the response proves the frame
        // layer released its clone. After the first `window` misses
        // every get must be a hit — that is the "zero per-frame heap
        // allocations on steady-state WriteBlock" claim, asserted below.
        let pool = BytesPool::new(size as usize, window * 2);
        let template = Bytes::from(vec![0x42u8; size as usize]);

        // Per-size dispatch latency: clear the server's histograms so the
        // percentiles below describe exactly this payload size.
        metrics.reset();
        let start = Instant::now();
        run_window(window, iters, |_| {
            let s = Arc::clone(&stream);
            let pool = Arc::clone(&pool);
            let template = template.clone();
            async move {
                let mut buf = pool.get();
                buf.extend_from_slice(&template);
                let payload = buf.freeze();
                s.call(RequestBody::WriteBlock {
                    block_id: BlockId(1),
                    offset: 0,
                    data: payload.clone(),
                })
                .await?;
                pool.recycle(payload);
                Ok(())
            }
        })
        .await?;
        let write_gbps = gbps(size * iters as u64, start.elapsed());
        let write_latency = metrics.snapshot().op_latency(OpKind::BlockWrite).clone();
        let write_pool_hit_rate = pool.hit_rate();
        if iters >= 20 * window {
            assert!(
                write_pool_hit_rate >= 0.95,
                "{transport}/{size}B: steady-state buffer-pool hit rate \
                 {write_pool_hit_rate:.3} < 0.95 ({} hits, {} misses over {iters} writes)",
                pool.hits(),
                pool.misses(),
            );
        }

        // Reads return zero-copy slices of the server's blob; the client
        // cannot reclaim those (the server keeps its handle), so the pool
        // only serves the write direction.
        let start = Instant::now();
        run_window(window, iters, |_| {
            let s = Arc::clone(&stream);
            async move {
                s.call(RequestBody::ReadBlock {
                    block_id: BlockId(1),
                    offset: 0,
                    len: size,
                })
                .await
                .map(|_| ())
            }
        })
        .await?;
        let read_gbps = gbps(size * iters as u64, start.elapsed());
        let read_latency = metrics.snapshot().op_latency(OpKind::BlockRead).clone();

        out.push(TransportSample {
            transport,
            payload_bytes: size,
            write_gbps,
            read_gbps,
            write_latency,
            read_latency,
            write_pool_hit_rate,
        });
    }
    server.shutdown();
    Ok(out)
}

/// Runs `iters` invocations of `op` spread over `window` concurrent
/// worker tasks (each worker issues its share back-to-back, keeping the
/// window full).
async fn run_window<F, Fut>(window: usize, iters: usize, op: F) -> GliderResult<()>
where
    F: Fn(usize) -> Fut,
    Fut: std::future::Future<Output = GliderResult<()>> + Send + 'static,
{
    let mut tasks = Vec::with_capacity(window);
    for w in 0..window {
        let share = iters / window + usize::from(w < iters % window);
        let mut ops = Vec::with_capacity(share);
        for i in 0..share {
            ops.push(op(w * share + i));
        }
        tasks.push(tokio::spawn(async move {
            for fut in ops {
                fut.await?;
            }
            Ok::<(), GliderError>(())
        }));
    }
    for t in tasks {
        t.await.expect("sweep worker panicked")?;
    }
    Ok(())
}

/// Renders the sweep (and the 1 MiB TCP acceptance numbers) as the
/// `BENCH_transport.json` document.
///
/// `baseline_1mib_tcp_write_gbps` is the pre-change number; pass it via
/// the `GLIDER_TRANSPORT_BASELINE_GBPS` environment variable when
/// regenerating after a data-plane change (see the `transport_sweep`
/// binary). Without it the current number doubles as the baseline.
pub fn render_transport_json(samples: &[TransportSample], baseline: Option<f64>) -> String {
    let current = samples
        .iter()
        .find(|s| s.transport == "tcp" && s.payload_bytes == 1024 * 1024)
        .map(|s| s.write_gbps);
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"transport\",\n  \"schema_version\": 1,\n");
    out.push_str("  \"description\": \"windowed WriteBlock/ReadBlock throughput per payload size; Gbit/s\",\n");
    out.push_str(&format!("  \"window\": {SWEEP_WINDOW},\n"));
    out.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"transport\": \"{}\", \"payload_bytes\": {}, \"write_gbps\": {:.3}, \"read_gbps\": {:.3}, \
             \"write_p50_ns\": {}, \"write_p99_ns\": {}, \"read_p50_ns\": {}, \"read_p99_ns\": {}, \
             \"write_pool_hit_rate\": {:.4}}}{}\n",
            s.transport,
            s.payload_bytes,
            s.write_gbps,
            s.read_gbps,
            s.write_latency.p50(),
            s.write_latency.p99(),
            s.read_latency.p50(),
            s.read_latency.p99(),
            s.write_pool_hit_rate,
            if i + 1 == samples.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"acceptance\": {\n");
    let fmt = |v: Option<f64>| v.map_or("null".to_string(), |v| format!("{v:.3}"));
    let min_tcp_pool = samples
        .iter()
        .filter(|s| s.transport == "tcp")
        .map(|s| s.write_pool_hit_rate)
        .fold(None, |min: Option<f64>, r| {
            Some(min.map_or(r, |m| m.min(r)))
        });
    out.push_str(&format!(
        "    \"min_tcp_write_pool_hit_rate\": {},\n",
        fmt(min_tcp_pool)
    ));
    out.push_str(&format!(
        "    \"baseline_1mib_tcp_write_gbps\": {},\n",
        fmt(baseline.or(current))
    ));
    out.push_str(&format!(
        "    \"current_1mib_tcp_write_gbps\": {},\n",
        fmt(current)
    ));
    let speedup = match (baseline.or(current), current) {
        (Some(b), Some(c)) if b > 0.0 => Some(c / b),
        _ => None,
    };
    out.push_str(&format!("    \"speedup\": {}\n  }}\n}}\n", fmt(speedup)));
    out
}

/// Reads the baseline throughput from `GLIDER_TRANSPORT_BASELINE_GBPS`.
pub fn baseline_from_env() -> Option<f64> {
    std::env::var("GLIDER_TRANSPORT_BASELINE_GBPS")
        .ok()
        .and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn sweep_runs_on_both_transports() {
        for addr in ["127.0.0.1:0", "mem://transport-sweep-test"] {
            let samples = sweep_transport(addr, &[4096, 65536], 256 * 1024, 4)
                .await
                .unwrap();
            assert_eq!(samples.len(), 2);
            for s in &samples {
                assert!(s.write_gbps.is_finite() && s.write_gbps > 0.0);
                assert!(s.read_gbps.is_finite() && s.read_gbps > 0.0);
                // The server-side dispatch histograms saw every RPC of
                // their phase, and dispatching takes non-zero time.
                assert!(s.write_latency.count() > 0);
                assert!(s.read_latency.count() > 0);
                assert!(s.write_latency.p50() > 0);
                assert!(s.read_latency.p50() > 0);
            }
            // 64 writes of 4 KiB over a window of 4: after the warmup
            // misses the pool serves every payload buffer.
            assert!(
                samples[0].write_pool_hit_rate > 0.9,
                "pool hit rate {}",
                samples[0].write_pool_hit_rate
            );
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn steady_state_writes_hit_the_pool() {
        // 128 iterations ≥ 20 × window arms the in-sweep ≥95% assertion.
        let samples = sweep_transport("mem://transport-pool-test", &[4096], 4096 * 128, 4)
            .await
            .unwrap();
        assert!(samples[0].write_pool_hit_rate >= 0.95);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let hist = {
            let h = glider_metrics::LogHistogram::new();
            h.record(1_000);
            h.record(2_000);
            h.snapshot()
        };
        let samples = vec![
            TransportSample {
                transport: "tcp",
                payload_bytes: 1024 * 1024,
                write_gbps: 10.0,
                read_gbps: 12.0,
                write_latency: hist.clone(),
                read_latency: hist.clone(),
                write_pool_hit_rate: 0.9876,
            },
            TransportSample {
                transport: "mem",
                payload_bytes: 4096,
                write_gbps: 5.0,
                read_gbps: 6.0,
                write_latency: hist.clone(),
                read_latency: hist,
                write_pool_hit_rate: 0.5,
            },
        ];
        let doc = render_transport_json(&samples, Some(4.0));
        assert!(doc.contains("\"write_p50_ns\""));
        assert!(!doc.contains("\"write_p50_ns\": 0"), "{doc}");
        assert!(doc.contains("\"write_pool_hit_rate\": 0.9876"));
        // Only TCP samples feed the acceptance minimum (0.5 is the mem one).
        assert!(doc.contains("\"min_tcp_write_pool_hit_rate\": 0.988"));
        assert!(doc.contains("\"baseline_1mib_tcp_write_gbps\": 4.000"));
        assert!(doc.contains("\"current_1mib_tcp_write_gbps\": 10.000"));
        assert!(doc.contains("\"speedup\": 2.500"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        // Without a baseline the current number stands in for it.
        let doc = render_transport_json(&samples, None);
        assert!(doc.contains("\"baseline_1mib_tcp_write_gbps\": 10.000"));
        assert!(doc.contains("\"speedup\": 1.000"));
    }
}
