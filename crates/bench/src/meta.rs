//! Metadata-plane throughput sweeps.
//!
//! Measures the sharded metadata server under concurrent clients —
//! create, lookup, and batched `AddBlocks` operations per second — and
//! the client-side efficiency win of the batched protocol: metadata RPCs
//! issued per MiB streamed, with and without block prefetch and commit
//! coalescing. Backs the `meta_sweep` binary, which emits
//! `BENCH_metadata.json` at the repository root.

use bytes::Bytes;
use glider_core::{Cluster, ClusterConfig, GliderResult, StoreClient};
use glider_metrics::AccessKind;
use glider_net::rpc::RpcClient;
use glider_proto::message::{RequestBody, ResponseBody};
use glider_proto::GliderError;
use glider_util::ByteSize;
use std::time::Instant;

/// Blocks requested per `AddBlocks` RPC during the allocation phase.
pub const SWEEP_ALLOC_BATCH: u32 = 4;

/// One measured concurrency level.
#[derive(Debug, Clone)]
pub struct MetaSample {
    /// Concurrent clients issuing operations.
    pub clients: usize,
    /// `CreateNode` operations per second (aggregate).
    pub create_ops_per_s: f64,
    /// `LookupNode` operations per second (aggregate, cache disabled).
    pub lookup_ops_per_s: f64,
    /// `AddBlocks` RPCs per second (aggregate, batch of
    /// [`SWEEP_ALLOC_BATCH`]).
    pub add_blocks_ops_per_s: f64,
}

/// Metadata RPCs per MiB streamed, singular vs. batched protocol.
#[derive(Debug, Clone, Copy)]
pub struct RpcEfficiency {
    /// Prefetch off, one `AddBlock`/`CommitBlock` per block.
    pub singular_rpcs_per_mib: f64,
    /// Default prefetch + commit coalescing (`AddBlocks`/`CommitBlocks`).
    pub batched_rpcs_per_mib: f64,
}

impl RpcEfficiency {
    /// How many times fewer RPCs the batched protocol issues.
    pub fn improvement(&self) -> f64 {
        if self.batched_rpcs_per_mib > 0.0 {
            self.singular_rpcs_per_mib / self.batched_rpcs_per_mib
        } else {
            0.0
        }
    }
}

/// Runs `ops_per_client` operations of each kind at every concurrency
/// level, against a fresh single-metadata-server cluster per level.
///
/// # Errors
///
/// Propagates cluster and RPC failures.
pub async fn sweep_concurrency(
    levels: &[usize],
    ops_per_client: usize,
) -> GliderResult<Vec<MetaSample>> {
    let mut samples = Vec::with_capacity(levels.len());
    for &clients in levels {
        // Enough block budget for every AddBlocks call to succeed in full.
        let capacity = (clients * ops_per_client) as u64 * u64::from(SWEEP_ALLOC_BATCH) + 64;
        let cluster = Cluster::start(
            ClusterConfig::default()
                .with_data(1, capacity)
                .with_active(0, 0),
        )
        .await?;

        // Connect every client (and its raw metadata connection) up front
        // so dialing stays out of the measured window.
        let mut stores = Vec::with_capacity(clients);
        for _ in 0..clients {
            stores.push(
                StoreClient::connect(cluster.client_config().with_lookup_cache_ttl(None)).await?,
            );
        }

        // Phase 1: creates. Top-level file names hash across shards.
        let t0 = Instant::now();
        let mut tasks = Vec::with_capacity(clients);
        for (j, store) in stores.iter().enumerate() {
            let store = store.clone();
            tasks.push(tokio::spawn(async move {
                for i in 0..ops_per_client {
                    store.create_file(&format!("/f{j}x{i}")).await?;
                }
                Ok::<(), GliderError>(())
            }));
        }
        join_all(tasks).await?;
        let create_ops_per_s = rate(clients * ops_per_client, t0);

        // Phase 2: lookups (cache disabled above, so every op is an RPC).
        let t0 = Instant::now();
        let mut tasks = Vec::with_capacity(clients);
        for (j, store) in stores.iter().enumerate() {
            let store = store.clone();
            tasks.push(tokio::spawn(async move {
                for i in 0..ops_per_client {
                    store.lookup(&format!("/f{j}x{i}")).await?;
                }
                Ok::<(), GliderError>(())
            }));
        }
        join_all(tasks).await?;
        let lookup_ops_per_s = rate(clients * ops_per_client, t0);

        // Phase 3: batched allocation on one node per client, over raw
        // metadata connections.
        let mut conns = Vec::with_capacity(clients);
        for (j, store) in stores.iter().enumerate() {
            let node = store.lookup(&format!("/f{j}x0")).await?;
            conns.push((
                RpcClient::connect_intra_storage(cluster.metadata_addr()).await?,
                node.id,
            ));
        }
        let t0 = Instant::now();
        let mut tasks = Vec::with_capacity(clients);
        for (conn, node_id) in conns {
            tasks.push(tokio::spawn(async move {
                for _ in 0..ops_per_client {
                    match conn
                        .call(RequestBody::AddBlocks {
                            node_id,
                            count: SWEEP_ALLOC_BATCH,
                        })
                        .await?
                    {
                        ResponseBody::Blocks(_) => {}
                        other => {
                            return Err(GliderError::protocol(format!(
                                "expected blocks response, got {other:?}"
                            )))
                        }
                    }
                }
                Ok::<(), GliderError>(())
            }));
        }
        join_all(tasks).await?;
        let add_blocks_ops_per_s = rate(clients * ops_per_client, t0);

        cluster.shutdown();
        samples.push(MetaSample {
            clients,
            create_ops_per_s,
            lookup_ops_per_s,
            add_blocks_ops_per_s,
        });
    }
    Ok(samples)
}

/// Streams `mib` MiB twice — once with the singular per-block protocol,
/// once with default prefetch and commit coalescing — and reports the
/// metadata RPCs each issued per MiB.
///
/// # Errors
///
/// Propagates cluster and stream failures.
pub async fn measure_rpc_efficiency(mib: u64) -> GliderResult<RpcEfficiency> {
    // 64 KiB blocks: each MiB spans 16 blocks, so the metadata plane is
    // exercised hard relative to the data volume.
    let cluster = Cluster::start(
        ClusterConfig::default()
            .with_block_size(ByteSize::kib(64))
            .with_data(1, mib * 16 * 4 + 64)
            .with_active(0, 0),
    )
    .await?;
    let payload = Bytes::from(vec![0x5au8; (mib * 1024 * 1024) as usize]);

    let singular = StoreClient::connect(
        cluster
            .client_config()
            .with_prefetch_blocks(0)
            .with_commit_batch(1)
            .with_lookup_cache_ttl(None),
    )
    .await?;
    let before = cluster.metrics().snapshot().accesses(AccessKind::Metadata);
    let file = singular.create_file("/singular").await?;
    file.write_all(payload.clone()).await?;
    let singular_rpcs = cluster.metrics().snapshot().accesses(AccessKind::Metadata) - before;

    let batched = StoreClient::connect(cluster.client_config()).await?;
    let before = cluster.metrics().snapshot().accesses(AccessKind::Metadata);
    let file = batched.create_file("/batched").await?;
    file.write_all(payload).await?;
    let batched_rpcs = cluster.metrics().snapshot().accesses(AccessKind::Metadata) - before;

    cluster.shutdown();
    Ok(RpcEfficiency {
        singular_rpcs_per_mib: singular_rpcs as f64 / mib as f64,
        batched_rpcs_per_mib: batched_rpcs as f64 / mib as f64,
    })
}

async fn join_all(tasks: Vec<tokio::task::JoinHandle<GliderResult<()>>>) -> GliderResult<()> {
    for task in tasks {
        task.await
            .map_err(|e| GliderError::protocol(format!("bench task failed: {e}")))??;
    }
    Ok(())
}

fn rate(ops: usize, since: Instant) -> f64 {
    ops as f64 / since.elapsed().as_secs_f64().max(1e-9)
}

/// Renders `BENCH_metadata.json` (same shape conventions as the
/// transport bench: samples plus an acceptance block).
pub fn render_metadata_json(samples: &[MetaSample], efficiency: Option<RpcEfficiency>) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"metadata\",\n  \"schema_version\": 1,\n");
    out.push_str(
        "  \"description\": \"metadata ops/s per concurrency level; metadata RPCs per MiB streamed, singular vs batched protocol\",\n",
    );
    out.push_str(&format!("  \"alloc_batch\": {SWEEP_ALLOC_BATCH},\n"));
    out.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"clients\": {}, \"create_ops_per_s\": {:.1}, \"lookup_ops_per_s\": {:.1}, \
             \"add_blocks_ops_per_s\": {:.1}}}{}\n",
            s.clients,
            s.create_ops_per_s,
            s.lookup_ops_per_s,
            s.add_blocks_ops_per_s,
            if i + 1 == samples.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"acceptance\": {\n");
    let fmt = |v: Option<f64>| v.map_or("null".to_string(), |v| format!("{v:.3}"));
    out.push_str(&format!(
        "    \"singular_rpcs_per_mib\": {},\n",
        fmt(efficiency.map(|e| e.singular_rpcs_per_mib))
    ));
    out.push_str(&format!(
        "    \"batched_rpcs_per_mib\": {},\n",
        fmt(efficiency.map(|e| e.batched_rpcs_per_mib))
    ));
    out.push_str(&format!(
        "    \"rpc_reduction\": {}\n  }}\n}}\n",
        fmt(efficiency.map(|e| e.improvement()))
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn sweep_and_efficiency_smoke() {
        let samples = sweep_concurrency(&[1, 2], 8).await.unwrap();
        assert_eq!(samples.len(), 2);
        for s in &samples {
            assert!(s.create_ops_per_s > 0.0);
            assert!(s.lookup_ops_per_s > 0.0);
            assert!(s.add_blocks_ops_per_s > 0.0);
        }
        let eff = measure_rpc_efficiency(1).await.unwrap();
        assert!(
            eff.improvement() >= 2.0,
            "batched protocol must at least halve metadata RPCs: {eff:?}"
        );
    }

    #[test]
    fn json_is_balanced_and_null_safe() {
        let samples = vec![MetaSample {
            clients: 4,
            create_ops_per_s: 1000.0,
            lookup_ops_per_s: 2000.0,
            add_blocks_ops_per_s: 1500.0,
        }];
        let eff = RpcEfficiency {
            singular_rpcs_per_mib: 33.0,
            batched_rpcs_per_mib: 8.0,
        };
        let doc = render_metadata_json(&samples, Some(eff));
        assert!(doc.contains("\"clients\": 4"));
        assert!(doc.contains("\"singular_rpcs_per_mib\": 33.000"));
        assert!(doc.contains("\"rpc_reduction\": 4.125"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        let doc = render_metadata_json(&[], None);
        assert!(doc.contains("\"rpc_reduction\": null"));
    }
}
