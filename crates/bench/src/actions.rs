//! Action execution hot-path sweep: records/s and MiB/s through near-data
//! action pipelines versus the data-shipping pattern.
//!
//! The sweep measures record delivery end to end over the reworked action
//! data path — batched record framing (`StreamChunkBatch`) over the
//! multiplexed per-server stream, pooled batch buffers on the client, and
//! instance-parallel execution on the active server's action pool:
//!
//! - **Glider**: `n` writers each stream records into their own `counter`
//!   action via [`write_record`]; the bytes cross the compute/storage
//!   boundary once and the counting runs near data, on `n` concurrent
//!   action instances.
//! - **Baseline** (data shipping): `n` writers ship the same records to
//!   files, then read every byte back and count client-side — the bytes
//!   cross twice.
//!
//! Both sides validate their answer (bytes counted must equal bytes
//! sent), so the sweep cannot quietly measure a broken pipeline. It backs
//! the `actions_sweep` binary, which emits `BENCH_actions.json` for the
//! CI bench gate.
//!
//! [`write_record`]: glider_core::client::ActionWriter::write_record

use bytes::Bytes;
use glider_core::{ActionSpec, Cluster, ClusterConfig, GliderError, GliderResult};
use glider_metrics::MetricsRegistry;
use glider_util::ByteSize;
use std::sync::Arc;
use std::time::Instant;

/// Instance counts of the standard sweep (paper-style scaling axis).
pub const SWEEP_INSTANCES: &[usize] = &[1, 2, 4, 8];

/// Record sizes of the standard sweep: small records stress the framing,
/// large ones the raw byte path.
pub const SWEEP_RECORD_SIZES: &[usize] = &[64, 1024];

/// Stream chunk size used by the sweep clients. Small enough that every
/// point ships many batches, so the steady-state pool hit rate is
/// meaningful (and asserted).
pub const SWEEP_CHUNK: ByteSize = ByteSize::kib(16);

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct ActionsSample {
    /// `"glider"` or `"baseline"`.
    pub mode: &'static str,
    /// Concurrent pipelines / action instances.
    pub instances: usize,
    /// Bytes per record.
    pub record_bytes: usize,
    /// Records delivered to their consumer per second.
    pub records_per_s: f64,
    /// Payload megabytes delivered per second.
    pub mib_per_s: f64,
    /// Client-side batch-buffer pool hit rate (glider mode; the baseline
    /// does not use the record path and reports 0).
    pub pool_hit_rate: f64,
}

fn cluster_config(instances: usize, bytes_per_instance: u64, rdma_sim: bool) -> ClusterConfig {
    // The baseline stores every instance's records as a file; budget the
    // blocks for that plus headroom.
    let blocks = (bytes_per_instance * instances as u64 * 2)
        .div_ceil(ByteSize::mib(1).as_u64())
        .max(16)
        + 8 * instances as u64;
    ClusterConfig::default()
        .with_data(1, blocks)
        .with_active(1, (instances as u64).max(8))
        .with_rdma_sim(rdma_sim)
}

/// Runs one Glider point: `instances` writers stream records into as many
/// `counter` actions; returns the sample and asserts the batch-buffer
/// pool served ≥90% of gets once past warmup.
///
/// # Errors
///
/// Propagates cluster and stream failures.
///
/// # Panics
///
/// Panics if an action counted different bytes than were sent, or the
/// steady-state pool hit rate falls below 0.90.
pub async fn glider_point(
    instances: usize,
    record_bytes: usize,
    bytes_per_instance: u64,
    rdma_sim: bool,
) -> GliderResult<ActionsSample> {
    let cluster = Cluster::start(cluster_config(instances, bytes_per_instance, rdma_sim)).await?;
    let setup = cluster.client().await?;
    setup.create_dir("/sweep").await?;
    for i in 0..instances {
        setup
            .create_action(
                &format!("/sweep/count-{i}"),
                ActionSpec::new("counter", false),
            )
            .await?;
    }
    // The point's registry sees only these clients' buffer pools, so the
    // hit rate below is exactly the record-batch pool's.
    let metrics = MetricsRegistry::new();
    let records_per_instance = (bytes_per_instance / record_bytes as u64).max(1);

    let start = Instant::now();
    let mut tasks = Vec::new();
    for i in 0..instances {
        let config = cluster
            .client_config()
            .with_chunk_size(SWEEP_CHUNK)
            .with_metrics(Arc::clone(&metrics));
        let store = glider_core::StoreClient::connect(config).await?;
        tasks.push(tokio::spawn(async move {
            let action = store.lookup_action(&format!("/sweep/count-{i}")).await?;
            let record = vec![0x47u8; record_bytes];
            let mut out = action.output_stream().await?;
            for _ in 0..records_per_instance {
                out.write_record(&record).await?;
            }
            out.close().await
        }));
    }
    let mut sent = 0u64;
    for t in tasks {
        sent += t.await.expect("glider writer panicked")?;
    }
    let elapsed = start.elapsed();

    // Validate: every action counted exactly the bytes its writer sent.
    let mut counted = 0u64;
    for i in 0..instances {
        let action = setup.lookup_action(&format!("/sweep/count-{i}")).await?;
        let summary = action.read_all().await?;
        counted += String::from_utf8_lossy(&summary)
            .trim()
            .parse::<u64>()
            .map_err(|e| GliderError::protocol(format!("bad counter summary: {e}")))?;
    }
    assert_eq!(counted, sent, "actions must count every byte sent");

    let pool_hit_rate = metrics.snapshot().pool_hit_rate();
    let window = cluster.client_config().window;
    let batches_per_instance = bytes_per_instance / SWEEP_CHUNK.as_u64();
    if batches_per_instance >= 20 * window as u64 {
        assert!(
            pool_hit_rate >= 0.90,
            "steady-state batch-buffer pool hit rate {pool_hit_rate:.3} < 0.90 \
             ({batches_per_instance} batches/instance, window {window})"
        );
    }

    let total_records = records_per_instance * instances as u64;
    Ok(ActionsSample {
        mode: "glider",
        instances,
        record_bytes,
        records_per_s: total_records as f64 / elapsed.as_secs_f64(),
        mib_per_s: sent as f64 / elapsed.as_secs_f64() / (1024.0 * 1024.0),
        pool_hit_rate,
    })
}

/// Runs one data-shipping point: `instances` writers store their records
/// as files, read every byte back and count client-side.
///
/// # Errors
///
/// Propagates cluster and storage failures.
///
/// # Panics
///
/// Panics if a reader counted different bytes than its writer shipped.
pub async fn baseline_point(
    instances: usize,
    record_bytes: usize,
    bytes_per_instance: u64,
    rdma_sim: bool,
) -> GliderResult<ActionsSample> {
    let cluster = Cluster::start(cluster_config(instances, bytes_per_instance, rdma_sim)).await?;
    let setup = cluster.client().await?;
    setup.create_dir("/sweep").await?;
    let records_per_instance = (bytes_per_instance / record_bytes as u64).max(1);

    let start = Instant::now();
    let mut tasks = Vec::new();
    for i in 0..instances {
        let config = cluster.client_config().with_chunk_size(SWEEP_CHUNK);
        let store = glider_core::StoreClient::connect(config).await?;
        tasks.push(tokio::spawn(async move {
            // Ship the records to storage…
            let per_chunk = (SWEEP_CHUNK.as_usize() / record_bytes).max(1);
            let template = Bytes::from(vec![0x47u8; per_chunk * record_bytes]);
            let file = store.create_file(&format!("/sweep/in-{i}")).await?;
            let mut out = file.output_stream().await?;
            let total = records_per_instance * record_bytes as u64;
            let mut remaining = total;
            while remaining > 0 {
                let n = remaining.min(template.len() as u64) as usize;
                out.write(template.slice(..n)).await?;
                remaining -= n as u64;
            }
            out.close().await?;
            // …then read every byte back and count client-side.
            let file = store.lookup_file(&format!("/sweep/in-{i}")).await?;
            let mut reader = file.input_stream().await?;
            let mut counted = 0u64;
            while let Some(chunk) = reader.next_chunk().await? {
                counted += chunk.len() as u64;
            }
            assert_eq!(counted, total, "reader must see every byte shipped");
            Ok::<u64, GliderError>(counted)
        }));
    }
    let mut delivered = 0u64;
    for t in tasks {
        delivered += t.await.expect("baseline worker panicked")?;
    }
    let elapsed = start.elapsed();

    let total_records = records_per_instance * instances as u64;
    Ok(ActionsSample {
        mode: "baseline",
        instances,
        record_bytes,
        records_per_s: total_records as f64 / elapsed.as_secs_f64(),
        mib_per_s: delivered as f64 / elapsed.as_secs_f64() / (1024.0 * 1024.0),
        pool_hit_rate: 0.0,
    })
}

/// Sweeps both modes over every `(record size, instance count)` point.
///
/// # Errors
///
/// Propagates the first point failure.
pub async fn sweep_actions(
    instances: &[usize],
    record_sizes: &[usize],
    bytes_per_instance: u64,
    rdma_sim: bool,
) -> GliderResult<Vec<ActionsSample>> {
    let mut out = Vec::new();
    for &record_bytes in record_sizes {
        for &n in instances {
            out.push(glider_point(n, record_bytes, bytes_per_instance, rdma_sim).await?);
            out.push(baseline_point(n, record_bytes, bytes_per_instance, rdma_sim).await?);
        }
    }
    Ok(out)
}

fn find(samples: &[ActionsSample], mode: &str, instances: usize, record: usize) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.mode == mode && s.instances == instances && s.record_bytes == record)
        .map(|s| s.mib_per_s)
}

/// Renders the sweep as the `BENCH_actions.json` document.
///
/// `baseline` is the committed pre-change headline (pass it via
/// `GLIDER_ACTIONS_BASELINE_MIBPS` when regenerating after a data-path
/// change); without it the current number doubles as the baseline.
/// `note` records measurement caveats (e.g. why samples are empty).
pub fn render_actions_json(
    samples: &[ActionsSample],
    baseline: Option<f64>,
    note: Option<&str>,
) -> String {
    let max_record = samples.iter().map(|s| s.record_bytes).max().unwrap_or(0);
    let max_instances = samples.iter().map(|s| s.instances).max().unwrap_or(0);
    let current = find(samples, "glider", max_instances, max_record);

    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"actions\",\n  \"schema_version\": 1,\n");
    out.push_str(
        "  \"description\": \"record streaming through counter actions (glider) vs \
         file round-trip (baseline); MiB/s of payload delivered\",\n",
    );
    match note {
        Some(n) => out.push_str(&format!("  \"note\": \"{}\",\n", n.replace('"', "'"))),
        None => out.push_str("  \"note\": null,\n"),
    }
    out.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"instances\": {}, \"record_bytes\": {}, \
             \"records_per_s\": {:.0}, \"mib_per_s\": {:.3}, \"pool_hit_rate\": {:.4}}}{}\n",
            s.mode,
            s.instances,
            s.record_bytes,
            s.records_per_s,
            s.mib_per_s,
            s.pool_hit_rate,
            if i + 1 == samples.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"acceptance\": {\n");
    let fmt = |v: Option<f64>| v.map_or("null".to_string(), |v| format!("{v:.3}"));

    // At how many instance counts does the glider pipeline beat data
    // shipping (largest record size)?
    let counts: Vec<usize> = {
        let mut c: Vec<usize> = samples.iter().map(|s| s.instances).collect();
        c.sort_unstable();
        c.dedup();
        c
    };
    let wins = counts
        .iter()
        .filter(|&&n| {
            matches!(
                (
                    find(samples, "glider", n, max_record),
                    find(samples, "baseline", n, max_record),
                ),
                (Some(g), Some(b)) if g > b
            )
        })
        .count();
    out.push_str(&format!(
        "    \"glider_wins_instance_counts\": {},\n",
        if samples.is_empty() {
            "null".to_string()
        } else {
            wins.to_string()
        }
    ));
    let records_at = |n: usize| {
        samples
            .iter()
            .find(|s| s.mode == "glider" && s.instances == n && s.record_bytes == max_record)
            .map(|s| s.records_per_s)
    };
    let scaling = match (records_at(1), records_at(max_instances)) {
        (Some(one), Some(many)) if max_instances > 1 && one > 0.0 => Some(many / one),
        _ => None,
    };
    out.push_str(&format!(
        "    \"glider_scaling_1_to_{max_instances}\": {},\n",
        fmt(scaling)
    ));
    let min_pool = samples
        .iter()
        .filter(|s| s.mode == "glider")
        .map(|s| s.pool_hit_rate)
        .fold(None, |min: Option<f64>, r| {
            Some(min.map_or(r, |m| m.min(r)))
        });
    out.push_str(&format!(
        "    \"min_glider_pool_hit_rate\": {},\n",
        fmt(min_pool)
    ));
    out.push_str(&format!(
        "    \"baseline_glider_mibps\": {},\n",
        fmt(baseline.or(current))
    ));
    out.push_str(&format!(
        "    \"current_glider_mibps\": {},\n",
        fmt(current)
    ));
    let speedup = match (baseline.or(current), current) {
        (Some(b), Some(c)) if b > 0.0 => Some(c / b),
        _ => None,
    };
    out.push_str(&format!("    \"speedup\": {}\n  }}\n}}\n", fmt(speedup)));
    out
}

/// Reads the committed headline from `GLIDER_ACTIONS_BASELINE_MIBPS`.
pub fn baseline_from_env() -> Option<f64> {
    std::env::var("GLIDER_ACTIONS_BASELINE_MIBPS")
        .ok()
        .and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn both_modes_deliver_and_validate() {
        let samples = sweep_actions(&[1, 2], &[64], 128 * 1024, false)
            .await
            .unwrap();
        assert_eq!(samples.len(), 4);
        for s in &samples {
            assert!(s.records_per_s.is_finite() && s.records_per_s > 0.0);
            assert!(s.mib_per_s.is_finite() && s.mib_per_s > 0.0);
        }
        // The record path went through the pooled batch buffers.
        assert!(samples
            .iter()
            .any(|s| s.mode == "glider" && s.pool_hit_rate > 0.0));
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let sample = |mode, instances, mib: f64| ActionsSample {
            mode,
            instances,
            record_bytes: 64,
            records_per_s: mib * 16384.0,
            mib_per_s: mib,
            pool_hit_rate: if mode == "glider" { 0.97 } else { 0.0 },
        };
        let samples = vec![
            sample("glider", 1, 10.0),
            sample("baseline", 1, 8.0),
            sample("glider", 8, 25.0),
            sample("baseline", 8, 12.0),
        ];
        let doc = render_actions_json(&samples, None, None);
        assert!(doc.contains("\"glider_wins_instance_counts\": 2"));
        assert!(doc.contains("\"glider_scaling_1_to_8\": 2.500"));
        assert!(doc.contains("\"min_glider_pool_hit_rate\": 0.970"));
        assert!(doc.contains("\"current_glider_mibps\": 25.000"));
        assert!(doc.contains("\"speedup\": 1.000"));
        assert!(doc.contains("\"note\": null"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());

        let doc = render_actions_json(&samples, Some(20.0), Some("caveat"));
        assert!(doc.contains("\"baseline_glider_mibps\": 20.000"));
        assert!(doc.contains("\"speedup\": 1.250"));
        assert!(doc.contains("\"note\": \"caveat\""));

        // An empty document (no measurements yet) renders null acceptance
        // fields, which the gate treats as bootstrap.
        let doc = render_actions_json(&[], None, Some("no numbers"));
        assert!(doc.contains("\"glider_wins_instance_counts\": null"));
        assert!(doc.contains("\"current_glider_mibps\": null"));
    }
}
