//! Perf-regression gate shared by the sweep binaries' `--smoke` modes.
//!
//! A sweep's `--smoke` pass re-measures its headline metric and compares
//! it against the number committed in the repository's `BENCH_*.json`.
//! Both headline metrics (1 MiB TCP write throughput, metadata RPC
//! reduction) are higher-is-better, so the gate only fails on a *drop*
//! of more than the tolerance — improvements always pass, and CI updates
//! the baseline by committing a fresh full-sweep JSON.
//!
//! The committed documents are parsed with the same hand-rolled approach
//! the renderers use ([`extract_number`]): the bench crate deliberately
//! carries no JSON dependency.

/// Reads the relative tolerance from `GLIDER_BENCH_TOLERANCE` (a
/// fraction, e.g. `0.15`), defaulting to 15%.
pub fn tolerance_from_env() -> f64 {
    std::env::var("GLIDER_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v >= 0.0)
        .unwrap_or(0.15)
}

/// What the gate decided for one metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// No committed baseline yet (empty samples / `null` acceptance
    /// field): pass with a warning so the first real full-sweep run can
    /// bootstrap the JSON.
    Bootstrap,
    /// Current is within tolerance of the baseline (or better).
    Pass,
    /// Current dropped more than `tolerance` below the baseline.
    Regression,
}

/// Gates a higher-is-better metric against its committed baseline.
pub fn verdict(baseline: Option<f64>, current: f64, tolerance: f64) -> Verdict {
    match baseline {
        None => Verdict::Bootstrap,
        Some(b) if !(b.is_finite() && b > 0.0) => Verdict::Bootstrap,
        Some(b) if current >= b * (1.0 - tolerance) => Verdict::Pass,
        Some(_) => Verdict::Regression,
    }
}

/// Prints the gate outcome for `metric` and returns `false` on a
/// regression (the caller exits non-zero).
pub fn report(metric: &str, baseline: Option<f64>, current: f64, tolerance: f64) -> bool {
    match verdict(baseline, current, tolerance) {
        Verdict::Bootstrap => {
            println!(
                "bench-gate: {metric} = {current:.3} — gate disarmed: the committed \
                 BENCH_*.json has no finite, positive `{metric}` value. The gate arms \
                 as soon as a full (non-smoke) sweep run commits one; from then on a \
                 drop of more than GLIDER_BENCH_TOLERANCE (default 0.15) fails CI"
            );
            true
        }
        Verdict::Pass => {
            let b = baseline.unwrap_or(current);
            println!(
                "bench-gate: {metric} = {current:.3} vs baseline {b:.3} \
                 (tolerance {:.0}%) — ok",
                tolerance * 100.0
            );
            true
        }
        Verdict::Regression => {
            let b = baseline.unwrap_or(current);
            eprintln!(
                "bench-gate: {metric} regressed: {current:.3} vs baseline {b:.3} \
                 is below the {:.0}% tolerance",
                tolerance * 100.0
            );
            false
        }
    }
}

/// Extracts the first `"key": <number>` value from a `BENCH_*.json`
/// document. Returns `None` for a missing key, `null`, or an unparsable
/// value — all of which the gate treats as "no baseline".
pub fn extract_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Loads a committed `BENCH_*.json` from the repository root (one level
/// above the bench crate) and extracts `key`, treating a missing or
/// unreadable file as "no baseline".
pub fn committed_baseline(manifest_dir: &str, file: &str, key: &str) -> Option<f64> {
    let path = std::path::Path::new(manifest_dir).join("../..").join(file);
    let doc = std::fs::read_to_string(path).ok()?;
    extract_number(&doc, key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_covers_bootstrap_pass_and_regression() {
        assert_eq!(verdict(None, 5.0, 0.15), Verdict::Bootstrap);
        assert_eq!(verdict(Some(0.0), 5.0, 0.15), Verdict::Bootstrap);
        assert_eq!(verdict(Some(f64::NAN), 5.0, 0.15), Verdict::Bootstrap);
        assert_eq!(verdict(Some(10.0), 8.5, 0.15), Verdict::Pass);
        assert_eq!(
            verdict(Some(10.0), 12.0, 0.15),
            Verdict::Pass,
            "improvements pass"
        );
        assert_eq!(verdict(Some(10.0), 8.49, 0.15), Verdict::Regression);
        assert_eq!(verdict(Some(10.0), 9.99, 0.0), Verdict::Regression);
    }

    #[test]
    fn extract_number_reads_rendered_documents() {
        let doc = "{\n  \"acceptance\": {\n    \"current_1mib_tcp_write_gbps\": 9.412,\n    \
                   \"speedup\": null\n  }\n}\n";
        assert_eq!(
            extract_number(doc, "current_1mib_tcp_write_gbps"),
            Some(9.412)
        );
        assert_eq!(extract_number(doc, "speedup"), None, "null is no baseline");
        assert_eq!(extract_number(doc, "missing_key"), None);
        assert_eq!(extract_number("{\"x\": -1.5e3}", "x"), Some(-1500.0));
    }

    #[test]
    fn report_only_fails_on_regression() {
        assert!(report("m", None, 1.0, 0.15));
        assert!(report("m", Some(1.0), 0.9, 0.15));
        assert!(!report("m", Some(1.0), 0.5, 0.15));
    }
}
