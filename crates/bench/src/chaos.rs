//! Chaos harness over the `mem://` fault-injection transport.
//!
//! Each scenario runs a sink RPC server on its own `mem://` endpoint,
//! attaches a [`glider_net::FaultConfig`] to it, and drives idempotent
//! calls through the failure mode, reporting how the fault-tolerant RPC
//! plane (DESIGN.md §10) absorbed it: surfaced failures, transparent
//! retries, reconnections, and wall-clock cost. The `chaos` binary prints
//! the table; `--smoke` asserts the invariants CI relies on.

use bytes::Bytes;
use futures::future::BoxFuture;
use glider_metrics::{MetricsRegistry, Tier};
use glider_net::rpc::{ConnCtx, RpcClient, RpcHandler};
use glider_net::{inject_faults, RetryPolicy};
use glider_proto::message::{RequestBody, ResponseBody};
use glider_proto::types::{BlockId, PeerTier};
use glider_proto::{ErrorCode, GliderError, GliderResult};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One chaos scenario's outcome.
#[derive(Debug, Clone)]
pub struct ChaosSample {
    /// Scenario name (`error-on-nth`, `sever-heal`, …).
    pub scenario: &'static str,
    /// Calls issued by the driver.
    pub calls: u64,
    /// Errors that reached the caller despite retries.
    pub surfaced_failures: u64,
    /// Transparent retries performed by the client.
    pub retries: u64,
    /// Successful redials performed by the client.
    pub reconnects: u64,
    /// Wall-clock time of the scenario.
    pub elapsed: Duration,
}

/// Answers reads with a zero-copy slice so the scenarios measure fault
/// handling, not server work.
struct SinkHandler {
    blob: Bytes,
}

impl RpcHandler for SinkHandler {
    fn handle(
        self: Arc<Self>,
        _ctx: ConnCtx,
        body: RequestBody,
    ) -> BoxFuture<'static, GliderResult<ResponseBody>> {
        let resp = match body {
            RequestBody::Hello { .. } => Ok(ResponseBody::Ok),
            RequestBody::ReadBlock { len, .. } => {
                let n = (len as usize).min(self.blob.len());
                Ok(ResponseBody::Data {
                    seq: 0,
                    bytes: self.blob.slice(..n),
                    eof: true,
                })
            }
            other => Err(GliderError::new(
                ErrorCode::Unsupported,
                format!("chaos sink does not serve {}", other.op_name()),
            )),
        };
        Box::pin(async move { resp })
    }
}

/// A scenario fixture: sink server, faulted endpoint, instrumented client.
struct Rig {
    metrics: Arc<MetricsRegistry>,
    server: glider_net::ServerHandle,
    client: RpcClient,
    faults: Arc<glider_net::FaultConfig>,
}

async fn rig(endpoint: &str, policy: RetryPolicy) -> GliderResult<Rig> {
    let metrics = MetricsRegistry::new();
    let listener = glider_net::bind(endpoint).await?;
    let server = glider_net::serve(
        listener,
        Arc::new(SinkHandler {
            blob: Bytes::from(vec![0x42u8; 4096]),
        }),
        Arc::clone(&metrics),
        Tier::Storage,
    );
    // Register the faults before the client dials so the connection (and
    // every redial) picks the config up.
    let faults = inject_faults(endpoint);
    let client = RpcClient::connect_with_options(
        endpoint,
        PeerTier::Storage,
        None,
        Some(Arc::clone(&metrics)),
        policy,
    )
    .await?;
    Ok(Rig {
        metrics,
        server,
        client,
        faults,
    })
}

async fn read_once(client: &RpcClient) -> GliderResult<()> {
    client
        .call(RequestBody::ReadBlock {
            block_id: BlockId(1),
            offset: 0,
            len: 4096,
        })
        .await
        .map(|_| ())
}

fn sample(
    rig: &Rig,
    scenario: &'static str,
    calls: u64,
    failures: u64,
    start: Instant,
) -> ChaosSample {
    let snap = rig.metrics.snapshot();
    ChaosSample {
        scenario,
        calls,
        surfaced_failures: failures,
        retries: snap.rpc_retries,
        reconnects: snap.rpc_reconnects,
        elapsed: start.elapsed(),
    }
}

/// A dropped frame surfaces as an I/O error on the wire; idempotent calls
/// absorb it through the retry budget without the caller noticing.
async fn error_on_nth(calls: u64) -> GliderResult<ChaosSample> {
    let r = rig("mem://chaos-error-nth", RetryPolicy::default()).await?;
    // Frame 1 is the Hello handshake; fail one frame mid-run.
    r.faults.error_on_nth_send(2 + calls / 2);
    let start = Instant::now();
    let mut failures = 0;
    for _ in 0..calls {
        if read_once(&r.client).await.is_err() {
            failures += 1;
        }
    }
    let s = sample(&r, "error-on-nth", calls, failures, start);
    r.server.shutdown();
    Ok(s)
}

/// A severed endpoint kills the connection; calls ride the backoff loop
/// until a heal lands, then a redial (with a fresh handshake) restores
/// service. Surfaced failures are re-issued by the driver, as a real
/// caller would, so the scenario always converges.
async fn sever_heal(calls: u64) -> GliderResult<ChaosSample> {
    let policy = RetryPolicy {
        max_attempts: 6,
        base_delay: Duration::from_millis(20),
        ..RetryPolicy::default()
    };
    let r = rig("mem://chaos-sever-heal", policy).await?;
    let start = Instant::now();
    let mut failures = 0;
    for i in 0..calls {
        if i == calls / 2 {
            r.faults.sever();
            let faults = Arc::clone(&r.faults);
            tokio::spawn(async move {
                tokio::time::sleep(Duration::from_millis(25)).await;
                faults.heal();
            });
        }
        // Bounded re-issue loop on top of the transparent retries: the
        // heal is guaranteed to land, so this converges quickly. A call
        // counts as failed only when every re-issue lost.
        let mut ok = false;
        for _ in 0..10 {
            if read_once(&r.client).await.is_ok() {
                ok = true;
                break;
            }
        }
        if !ok {
            failures += 1;
        }
    }
    let s = sample(&r, "sever-heal", calls, failures, start);
    r.server.shutdown();
    Ok(s)
}

/// A blackholed endpoint looks alive-but-silent; only the per-class
/// deadline saves the caller, which must see `Timeout` (not a hang).
async fn blackhole_deadline() -> GliderResult<ChaosSample> {
    let policy = RetryPolicy {
        max_attempts: 2,
        data_deadline: Duration::from_millis(100),
        ..RetryPolicy::default()
    };
    let r = rig("mem://chaos-blackhole", policy).await?;
    let start = Instant::now();
    r.faults.blackhole(true);
    let err = read_once(&r.client)
        .await
        .expect_err("blackholed call cannot succeed");
    assert_eq!(
        err.code(),
        ErrorCode::Timeout,
        "blackhole must surface as a deadline timeout, got {err}"
    );
    r.faults.heal();
    // Service resumes on the same connection once frames flow again.
    read_once(&r.client).await?;
    let s = sample(&r, "blackhole-deadline", 2, 1, start);
    r.server.shutdown();
    Ok(s)
}

/// Per-frame send delay: every call pays at least the injected latency.
async fn delayed_sends(calls: u64, delay: Duration) -> GliderResult<ChaosSample> {
    let r = rig("mem://chaos-delay", RetryPolicy::default()).await?;
    r.faults.delay_sends(delay);
    let start = Instant::now();
    let mut failures = 0;
    for _ in 0..calls {
        if read_once(&r.client).await.is_err() {
            failures += 1;
        }
    }
    let s = sample(&r, "delayed-sends", calls, failures, start);
    assert!(
        s.elapsed >= delay * calls as u32,
        "injected delay must be visible in wall-clock time"
    );
    r.server.shutdown();
    Ok(s)
}

/// Runs every scenario and returns the outcome table.
///
/// # Errors
///
/// Propagates bind/connect failures; fault handling itself never errors
/// out of a scenario.
pub async fn run_all(calls: u64) -> GliderResult<Vec<ChaosSample>> {
    Ok(vec![
        error_on_nth(calls).await?,
        sever_heal(calls).await?,
        blackhole_deadline().await?,
        delayed_sends(calls.min(32), Duration::from_millis(2)).await?,
    ])
}

/// Asserts the invariants the CI smoke run relies on.
///
/// # Panics
///
/// Panics when a scenario leaked a failure it should have absorbed or
/// failed to exercise its fault path.
pub fn assert_smoke(samples: &[ChaosSample]) {
    let get = |name: &str| {
        samples
            .iter()
            .find(|s| s.scenario == name)
            .unwrap_or_else(|| panic!("missing scenario {name}"))
    };
    let e = get("error-on-nth");
    assert_eq!(
        e.surfaced_failures, 0,
        "retries must absorb a faulted frame"
    );
    assert!(e.retries >= 1, "the faulted frame must have been retried");
    let s = get("sever-heal");
    assert_eq!(s.surfaced_failures, 0, "driver re-issue must converge");
    assert!(s.reconnects >= 1, "a sever must force a redial");
    let b = get("blackhole-deadline");
    assert_eq!(b.surfaced_failures, 1, "exactly the blackholed call fails");
    let d = get("delayed-sends");
    assert_eq!(d.surfaced_failures, 0, "delays alone must not fail calls");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn chaos_scenarios_hold_their_invariants() {
        let samples = run_all(16).await.unwrap();
        assert_eq!(samples.len(), 4);
        assert_smoke(&samples);
    }
}
