//! Benchmark harness support for the Glider reproduction.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin` that regenerates it (see EXPERIMENTS.md):
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `table2` | Table 2 — ingest pipeline (Data-shipping / Glider / Glider RDMA) |
//! | `fig5`   | Fig. 5 — reduce sweep over worker counts |
//! | `fig6`   | Fig. 6 — action vs file bandwidth, buffer-size and action-count sweeps |
//! | `fig7`   | Fig. 7 — distributed sort, P1/P2 per worker count |
//! | `fig9`   | Fig. 9 — genomics variant calling across `a×q,r` points |
//! | `all`    | runs everything in sequence |
//!
//! Each binary accepts `--scale <f64>` (default 1.0, also the
//! `GLIDER_SCALE` environment variable) to grow or shrink the data sizes
//! while preserving the experiment's shape; the defaults complete on a
//! laptop in minutes.
//!
//! The Criterion benches (`benches/`) cover the micro side: stream
//! bandwidth, the interleaving ablation, transport (TCP vs RDMA-sim),
//! operation-window and block-size sweeps. They are gated behind the
//! non-default `criterion-benches` feature so the sweep binaries build
//! without the criterion dependency tree; the dependency-free sweeps
//! (`transport_sweep`, `meta_sweep`, `actions_sweep`) cover CI's bench
//! gate instead.

pub mod actions;
pub mod chaos;
pub mod gate;
pub mod meta;
pub mod transport;

use bytes::Bytes;
use glider_core::{ActionSpec, Cluster, ClusterConfig, GliderResult, MetricsRegistry, StoreClient};
use glider_util::stopwatch::gbps;
use glider_util::ByteSize;
use std::sync::Arc;
use std::time::Duration;

/// Parses `--scale` from argv, falling back to `GLIDER_SCALE`, then 1.0.
pub fn scale_from_args() -> f64 {
    let args: Vec<String> = std::env::args().collect();
    for window in args.windows(2) {
        if window[0] == "--scale" {
            if let Ok(v) = window[1].parse::<f64>() {
                return v.max(0.01);
            }
        }
    }
    std::env::var("GLIDER_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|v: f64| v.max(0.01))
        .unwrap_or(1.0)
}

/// Scales a count by the harness scale factor (at least 1).
pub fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale) as usize).max(1)
}

/// Builds the multi-threaded runtime the harnesses run on.
///
/// # Panics
///
/// Panics if the runtime cannot be built.
pub fn runtime() -> tokio::runtime::Runtime {
    tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("tokio runtime")
}

/// Prints a row of fixed-width columns.
pub fn print_row(cols: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (col, width) in cols.iter().zip(widths) {
        line.push_str(&format!("{col:<width$}  "));
    }
    println!("{}", line.trim_end());
}

/// Prints a separator under a header row.
pub fn print_rule(widths: &[usize]) {
    let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
    println!("{}", "-".repeat(total));
}

// ---------------------------------------------------------------------------
// Fig. 6 micro-benchmark machinery (shared with the Criterion benches)
// ---------------------------------------------------------------------------

/// A cluster prepared for bandwidth micro-benchmarks with a given stream
/// chunk ("buffer") size.
pub struct BwHarness {
    /// The cluster under test.
    pub cluster: Cluster,
    chunk: ByteSize,
}

impl BwHarness {
    /// Starts a cluster sized for `total` bytes of traffic with the given
    /// buffer size.
    ///
    /// # Errors
    ///
    /// Propagates cluster start failures.
    pub async fn start(total: ByteSize, chunk: ByteSize, actions: u64) -> GliderResult<Self> {
        let blocks = (total.as_u64() * 2).div_ceil(ByteSize::mib(1).as_u64()) + 16;
        let cluster = Cluster::start(
            ClusterConfig::default()
                .with_data(1, blocks)
                .with_active(1, actions.max(8)),
        )
        .await?;
        Ok(BwHarness { cluster, chunk })
    }

    /// A client using the harness buffer size.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub async fn client(&self) -> GliderResult<StoreClient> {
        let config = self.cluster.client_config().with_chunk_size(self.chunk);
        StoreClient::connect(config).await
    }

    /// Writes `total` bytes to a fresh file; returns achieved Gbit/s.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub async fn file_write(&self, path: &str, total: ByteSize) -> GliderResult<f64> {
        let store = self.client().await?;
        let file = store.create_file(path).await?;
        let chunk = vec![0u8; self.chunk.as_usize()];
        let start = std::time::Instant::now();
        let mut out = file.output_stream().await?;
        let mut remaining = total.as_u64();
        while remaining > 0 {
            let n = remaining.min(chunk.len() as u64) as usize;
            out.write(Bytes::copy_from_slice(&chunk[..n])).await?;
            remaining -= n as u64;
        }
        out.close().await?;
        Ok(gbps(total.as_u64(), start.elapsed()))
    }

    /// Reads an existing file back fully; returns achieved Gbit/s.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub async fn file_read(&self, path: &str) -> GliderResult<f64> {
        let store = self.client().await?;
        let file = store.lookup_file(path).await?;
        let start = std::time::Instant::now();
        let mut reader = file.input_stream().await?;
        let mut total = 0u64;
        while let Some(chunk) = reader.next_chunk().await? {
            total += chunk.len() as u64;
        }
        Ok(gbps(total, start.elapsed()))
    }

    /// Writes `total` bytes into a `null` action (empty `on_write`);
    /// returns achieved Gbit/s.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub async fn action_write(&self, path: &str, total: ByteSize) -> GliderResult<f64> {
        let store = self.client().await?;
        let action = store
            .create_action(path, ActionSpec::new("null", false))
            .await?;
        let chunk = vec![0u8; self.chunk.as_usize()];
        let start = std::time::Instant::now();
        let mut out = action.output_stream().await?;
        let mut remaining = total.as_u64();
        while remaining > 0 {
            let n = remaining.min(chunk.len() as u64) as usize;
            out.write(Bytes::copy_from_slice(&chunk[..n])).await?;
            remaining -= n as u64;
        }
        out.close().await?;
        Ok(gbps(total.as_u64(), start.elapsed()))
    }

    /// Reads `total` bytes from a `null` action (empty `on_read` emitting
    /// zeros); returns achieved Gbit/s.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub async fn action_read(&self, path: &str, total: ByteSize) -> GliderResult<f64> {
        let store = self.client().await?;
        let action = store
            .create_action(
                path,
                ActionSpec::new("null", false).with_params(format!("size={}", total.as_u64())),
            )
            .await?;
        let start = std::time::Instant::now();
        let mut reader = action.input_stream().await?;
        let mut got = 0u64;
        while let Some(chunk) = reader.next_chunk().await? {
            got += chunk.len() as u64;
        }
        reader.close().await?;
        debug_assert_eq!(got, total.as_u64());
        Ok(gbps(got, start.elapsed()))
    }

    /// Writes `total` bytes into an *existing* action (for repeated
    /// benchmark iterations against one reused `null` action).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub async fn action_write_existing(&self, path: &str, total: ByteSize) -> GliderResult<f64> {
        let store = self.client().await?;
        let action = store.lookup_action(path).await?;
        let chunk = vec![0u8; self.chunk.as_usize()];
        let start = std::time::Instant::now();
        let mut out = action.output_stream().await?;
        let mut remaining = total.as_u64();
        while remaining > 0 {
            let n = remaining.min(chunk.len() as u64) as usize;
            out.write(Bytes::copy_from_slice(&chunk[..n])).await?;
            remaining -= n as u64;
        }
        out.close().await?;
        Ok(gbps(total.as_u64(), start.elapsed()))
    }

    /// Drains one read stream from an *existing* `null` action.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub async fn action_read_existing(&self, path: &str) -> GliderResult<f64> {
        let store = self.client().await?;
        let action = store.lookup_action(path).await?;
        let start = std::time::Instant::now();
        let mut reader = action.input_stream().await?;
        let mut got = 0u64;
        while let Some(chunk) = reader.next_chunk().await? {
            got += chunk.len() as u64;
        }
        reader.close().await?;
        Ok(gbps(got, start.elapsed()))
    }

    /// Aggregate bandwidth of `n` parallel actions, each moving `per`
    /// bytes with a dedicated client (the Fig. 6 bottom experiment).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub async fn parallel_action_write(&self, n: usize, per: ByteSize) -> GliderResult<f64> {
        let mut actions = Vec::new();
        for i in 0..n {
            let store = self.client().await?;
            let action = store
                .create_action(&format!("/scale-{i}"), ActionSpec::new("null", false))
                .await?;
            actions.push(action);
        }
        let chunk_len = self.chunk.as_usize();
        let start = std::time::Instant::now();
        let mut tasks = Vec::new();
        for action in actions {
            tasks.push(tokio::spawn(async move {
                let chunk = vec![0u8; chunk_len];
                let mut out = action.output_stream().await?;
                let mut remaining = per.as_u64();
                while remaining > 0 {
                    let n = remaining.min(chunk.len() as u64) as usize;
                    out.write(Bytes::copy_from_slice(&chunk[..n])).await?;
                    remaining -= n as u64;
                }
                out.close().await?;
                Ok::<(), glider_core::GliderError>(())
            }));
        }
        for t in tasks {
            t.await.expect("action writer panicked")?;
        }
        Ok(gbps(per.as_u64() * n as u64, start.elapsed()))
    }

    /// Aggregate bandwidth of `n` parallel file writers (the Fig. 6
    /// bottom comparison line).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub async fn parallel_file_write(&self, n: usize, per: ByteSize) -> GliderResult<f64> {
        let mut files = Vec::new();
        for i in 0..n {
            let store = self.client().await?;
            files.push(store.create_file(&format!("/scale-file-{i}")).await?);
        }
        let chunk_len = self.chunk.as_usize();
        let start = std::time::Instant::now();
        let mut tasks = Vec::new();
        for file in files {
            tasks.push(tokio::spawn(async move {
                let chunk = vec![0u8; chunk_len];
                let mut out = file.output_stream().await?;
                let mut remaining = per.as_u64();
                while remaining > 0 {
                    let n = remaining.min(chunk.len() as u64) as usize;
                    out.write(Bytes::copy_from_slice(&chunk[..n])).await?;
                    remaining -= n as u64;
                }
                out.close().await?;
                Ok::<(), glider_core::GliderError>(())
            }));
        }
        for t in tasks {
            t.await.expect("file writer panicked")?;
        }
        Ok(gbps(per.as_u64() * n as u64, start.elapsed()))
    }
}

/// Formats a duration as seconds with milliseconds.
pub fn secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Formats bytes in binary units.
pub fn bytes_h(b: u64) -> String {
    ByteSize::bytes(b).to_string()
}

/// A metrics registry shared by harness setups that need one up front.
pub fn fresh_metrics() -> Arc<MetricsRegistry> {
    MetricsRegistry::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_clamps() {
        assert_eq!(scaled(10, 0.0001), 1);
        assert_eq!(scaled(10, 2.0), 20);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn bandwidth_harness_round_trips() {
        let h = BwHarness::start(ByteSize::mib(2), ByteSize::kib(64), 4)
            .await
            .unwrap();
        let w = h.file_write("/f", ByteSize::mib(2)).await.unwrap();
        let r = h.file_read("/f").await.unwrap();
        let aw = h.action_write("/a", ByteSize::mib(2)).await.unwrap();
        let ar = h.action_read("/ar", ByteSize::mib(2)).await.unwrap();
        for v in [w, r, aw, ar] {
            assert!(v.is_finite() && v > 0.0);
        }
        let pw = h.parallel_action_write(2, ByteSize::mib(1)).await.unwrap();
        let pf = h.parallel_file_write(2, ByteSize::mib(1)).await.unwrap();
        assert!(pw > 0.0 && pf > 0.0);
    }
}
