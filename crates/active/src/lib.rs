//! The active storage server (paper §4.2/§5).
//!
//! Active servers are storage servers whose blocks are *action slots*:
//! they register into the dedicated `active` storage class, and instead of
//! storing bytes they host an action manager that creates, executes and
//! deletes action objects. Network handling is decoupled from action
//! execution exactly as in the paper: the RPC layer enqueues data tasks on
//! per-stream queues, and per-instance executor tasks (the paper's "action
//! threads") consume them.
//!
//! Every action object receives a store client connected to the same
//! namespace (paper §6.2), so near-data operators can read and write other
//! ephemeral nodes from *inside* the storage cluster — those transfers
//! are metered as intra-storage traffic, which is the whole point of
//! shipping code to data.
//!
//! Listening on a `mem://` address puts the server on the in-process
//! RDMA-simulation fabric (see `glider-net`), used by the Table 2
//! "Glider (RDMA)" configuration for intra-storage links.

use futures::future::BoxFuture;
use glider_actions::{ActionExecutor, ActionManager, ActionRegistry};
use glider_client::{ClientConfig, StoreClient};
use glider_metrics::{MetricsRegistry, Tier};
use glider_net::rpc::{ConnCtx, RpcClient, RpcHandler, ServerHandle};
use glider_proto::message::{RequestBody, ResponseBody};
use glider_proto::types::{ServerId, ServerKind, StorageClass};
use glider_proto::{ErrorCode, GliderError, GliderResult};
use glider_util::ByteSize;
use std::sync::Arc;
use std::time::Duration;

/// Default liveness heartbeat interval: a third of the metadata server's
/// default lease (mirrors `glider_storage::DEFAULT_HEARTBEAT_INTERVAL`;
/// the storage crate is not a dependency of this one).
pub const DEFAULT_HEARTBEAT_INTERVAL: Duration = Duration::from_secs(1);

/// Configuration for an active storage server.
#[derive(Clone)]
pub struct ActiveServerConfig {
    /// Address to listen on (`host:port`, or `mem://name` for the
    /// RDMA-simulation fabric).
    pub listen_addr: String,
    /// Metadata server to register with.
    pub metadata_addr: String,
    /// Number of action slots contributed (the storage space's size).
    pub slots: u64,
    /// Deployed action definitions available on this server.
    pub registry: Arc<ActionRegistry>,
    /// Block size of the cluster (for the actions' internal store client).
    pub block_size: ByteSize,
    /// Interval between liveness heartbeats to the metadata server. Must
    /// stay below the metadata lease.
    pub heartbeat_interval: Duration,
}

impl ActiveServerConfig {
    /// An active server on an ephemeral TCP port with the built-in action
    /// library deployed.
    pub fn new(metadata_addr: impl Into<String>, slots: u64) -> Self {
        ActiveServerConfig {
            listen_addr: "127.0.0.1:0".to_string(),
            metadata_addr: metadata_addr.into(),
            slots,
            registry: Arc::new(ActionRegistry::with_builtins()),
            block_size: ByteSize::mib(1),
            heartbeat_interval: DEFAULT_HEARTBEAT_INTERVAL,
        }
    }

    /// Sets the heartbeat interval (chaos tests shrink it along with the
    /// metadata lease).
    #[must_use]
    pub fn with_heartbeat_interval(mut self, interval: Duration) -> Self {
        self.heartbeat_interval = interval;
        self
    }

    /// Listens on the in-process RDMA-simulation fabric instead of TCP.
    #[must_use]
    pub fn on_rdma_sim(mut self, name: impl Into<String>) -> Self {
        self.listen_addr = format!("mem://{}", name.into());
        self
    }

    /// Uses a custom action registry (e.g. with workload-specific actions
    /// deployed on top of the builtins).
    #[must_use]
    pub fn with_registry(mut self, registry: Arc<ActionRegistry>) -> Self {
        self.registry = registry;
        self
    }

    /// Sets the cluster block size for the actions' store client.
    #[must_use]
    pub fn with_block_size(mut self, block_size: ByteSize) -> Self {
        self.block_size = block_size;
        self
    }
}

impl std::fmt::Debug for ActiveServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveServerConfig")
            .field("listen_addr", &self.listen_addr)
            .field("metadata_addr", &self.metadata_addr)
            .field("slots", &self.slots)
            .field("actions", &self.registry.names())
            .finish()
    }
}

/// A running active storage server. Dropping the handle stops it.
#[derive(Debug)]
pub struct ActiveServer {
    handle: ServerHandle,
    server_id: ServerId,
    manager: Arc<ActionManager>,
    heartbeat: tokio::task::JoinHandle<()>,
}

impl ActiveServer {
    /// Binds, registers with the metadata server, and starts serving
    /// action operations.
    ///
    /// # Errors
    ///
    /// Returns an error if binding or registration fails.
    pub async fn start(
        config: ActiveServerConfig,
        metrics: Arc<MetricsRegistry>,
    ) -> GliderResult<Self> {
        let listener = glider_net::conn::bind(&config.listen_addr).await?;
        let addr = listener.local_addr().to_string();

        let meta = RpcClient::connect_intra_storage(&config.metadata_addr).await?;
        let resp = meta
            .call(RequestBody::RegisterServer {
                kind: ServerKind::Active,
                storage_class: StorageClass::active(),
                addr: addr.clone(),
                capacity_blocks: config.slots,
            })
            .await?;
        let server_id = match resp {
            ResponseBody::Registered { server_id, .. } => server_id,
            other => {
                return Err(GliderError::protocol(format!(
                    "unexpected register response: {other:?}"
                )))
            }
        };

        // The store client handed to every action (paper §6.2). It belongs
        // to the storage tier: its traffic is intra-storage.
        let store = StoreClient::connect(
            ClientConfig::new(&config.metadata_addr)
                .intra_storage()
                .with_block_size(config.block_size)
                .with_metrics(Arc::clone(&metrics)),
        )
        .await?;

        // Instance tasks run on a dedicated core-sized worker pool (the
        // paper's network/action thread split); the serving runtime keeps
        // only connection loops and RPC dispatch.
        let manager = Arc::new(
            ActionManager::new(
                Arc::clone(&config.registry),
                config.slots as usize,
                Some(Arc::new(store)),
                Some(Arc::clone(&metrics)),
            )
            .with_executor(ActionExecutor::new()),
        );
        let handler = Arc::new(ActiveHandler {
            manager: Arc::clone(&manager),
        });
        let handle = glider_net::rpc::serve(listener, handler, metrics, Tier::Storage);
        // Same lease-refresh loop as data storage servers (DESIGN.md §10):
        // failures are retried by the RPC layer, and an entry the registry
        // retired can only be healed by restarting the server.
        let interval = config.heartbeat_interval;
        let heartbeat = tokio::spawn(async move {
            loop {
                tokio::time::sleep(interval).await;
                let _ = meta.call_ok(RequestBody::Heartbeat { server_id }).await;
            }
        });
        Ok(ActiveServer {
            handle,
            server_id,
            manager,
            heartbeat,
        })
    }

    /// The dialable data-plane address.
    pub fn addr(&self) -> &str {
        self.handle.addr()
    }

    /// The id the metadata server assigned.
    pub fn server_id(&self) -> ServerId {
        self.server_id
    }

    /// The action manager (diagnostics).
    pub fn manager(&self) -> &Arc<ActionManager> {
        &self.manager
    }

    /// Stops the server.
    pub fn shutdown(&self) {
        self.heartbeat.abort();
        self.handle.shutdown();
    }
}

impl Drop for ActiveServer {
    fn drop(&mut self) {
        self.heartbeat.abort();
    }
}

struct ActiveHandler {
    manager: Arc<ActionManager>,
}

impl RpcHandler for ActiveHandler {
    fn handle(
        self: Arc<Self>,
        ctx: ConnCtx,
        body: RequestBody,
    ) -> BoxFuture<'static, GliderResult<ResponseBody>> {
        Box::pin(async move {
            let span = glider_trace::Span::child_of(ctx.span_context(), "active.handle");
            let span_ctx = span.context();
            match body {
                RequestBody::Hello { .. } => Ok(ResponseBody::Ok),
                RequestBody::ActionCreate { node_id, spec, .. } => {
                    self.manager.create_action(node_id, spec).await?;
                    Ok(ResponseBody::Ok)
                }
                RequestBody::ActionDelete { node_id } => {
                    self.manager.abort_streams_of(node_id);
                    self.manager.delete_action_traced(span_ctx, node_id).await?;
                    Ok(ResponseBody::Ok)
                }
                RequestBody::StreamOpen { node_id, dir } => {
                    let stream_id = self
                        .manager
                        .open_stream_traced(span_ctx, node_id, dir)
                        .await?;
                    Ok(ResponseBody::StreamOpened { stream_id })
                }
                RequestBody::StreamChunk {
                    stream_id,
                    seq,
                    data,
                } => {
                    self.manager.push_chunk(stream_id, seq, data).await?;
                    Ok(ResponseBody::Ok)
                }
                RequestBody::StreamChunkBatch {
                    stream_id,
                    seq,
                    count,
                    data,
                } => {
                    self.manager
                        .push_chunk_batch(stream_id, seq, count, data)
                        .await?;
                    Ok(ResponseBody::Ok)
                }
                RequestBody::StreamFetch { stream_id, max_len } => {
                    let (seq, bytes, eof) = self.manager.fetch(stream_id, max_len).await?;
                    Ok(ResponseBody::Data { seq, bytes, eof })
                }
                RequestBody::StreamClose { stream_id } => {
                    self.manager.close_stream(stream_id).await?;
                    Ok(ResponseBody::Ok)
                }
                other => Err(GliderError::new(
                    ErrorCode::Unsupported,
                    format!("active servers do not support {}", other.op_name()),
                )),
            }
        })
    }

    /// Streaming fast path: chunk pushes land in the instance's queue and
    /// fetches serve already-produced chunks synchronously on the
    /// connection task — no spawn, no await, and the payload `Bytes` is
    /// the receive buffer's slice end to end (zero copies server-side).
    /// A full queue or an empty read stream declines, so backpressure and
    /// waiting stay on the dispatched async path.
    fn try_handle_sync(
        self: Arc<Self>,
        _ctx: ConnCtx,
        body: RequestBody,
    ) -> Result<GliderResult<ResponseBody>, RequestBody> {
        match body {
            RequestBody::StreamChunk {
                stream_id,
                seq,
                data,
            } => match self.manager.try_push_chunk(stream_id, seq, data.clone()) {
                Some(result) => Ok(result.map(|()| ResponseBody::Ok)),
                None => Err(RequestBody::StreamChunk {
                    stream_id,
                    seq,
                    data,
                }),
            },
            RequestBody::StreamChunkBatch {
                stream_id,
                seq,
                count,
                data,
            } => match self
                .manager
                .try_push_chunk_batch(stream_id, seq, count, data.clone())
            {
                Some(result) => Ok(result.map(|()| ResponseBody::Ok)),
                None => Err(RequestBody::StreamChunkBatch {
                    stream_id,
                    seq,
                    count,
                    data,
                }),
            },
            RequestBody::StreamFetch { stream_id, max_len } => {
                match self.manager.try_fetch(stream_id) {
                    Some(result) => {
                        Ok(result.map(|(seq, bytes, eof)| ResponseBody::Data { seq, bytes, eof }))
                    }
                    None => Err(RequestBody::StreamFetch { stream_id, max_len }),
                }
            }
            other => Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use glider_metadata::MetadataServer;
    use glider_proto::types::ActionSpec;
    use glider_storage::{StorageServer, StorageServerConfig};

    struct TestCluster {
        _meta: MetadataServer,
        _data: StorageServer,
        _active: ActiveServer,
        store: StoreClient,
        metrics: Arc<MetricsRegistry>,
    }

    async fn cluster() -> TestCluster {
        let metrics = MetricsRegistry::new();
        let meta = MetadataServer::start("127.0.0.1:0", Arc::clone(&metrics))
            .await
            .unwrap();
        let data = StorageServer::start(
            StorageServerConfig::dram(meta.addr(), 64, 64 * 1024),
            Arc::clone(&metrics),
        )
        .await
        .unwrap();
        let active = ActiveServer::start(
            ActiveServerConfig::new(meta.addr(), 4).with_block_size(ByteSize::kib(64)),
            Arc::clone(&metrics),
        )
        .await
        .unwrap();
        let store = StoreClient::connect(
            ClientConfig::new(meta.addr())
                .with_block_size(ByteSize::kib(64))
                .with_chunk_size(ByteSize::kib(16))
                .with_metrics(Arc::clone(&metrics)),
        )
        .await
        .unwrap();
        TestCluster {
            _meta: meta,
            _data: data,
            _active: active,
            store,
            metrics,
        }
    }

    #[tokio::test]
    async fn counter_action_end_to_end() {
        let c = cluster().await;
        let action = c
            .store
            .create_action("/count", ActionSpec::new("counter", false))
            .await
            .unwrap();
        let n = action
            .write_all(Bytes::from(vec![7u8; 100_000]))
            .await
            .unwrap();
        assert_eq!(n, 100_000);
        let result = action.read_all().await.unwrap();
        assert_eq!(result, b"100000");
        // Transfer metering: 100 KB crossed compute->storage.
        let snap = c.metrics.snapshot();
        assert_eq!(snap.transferred(Tier::Compute, Tier::Storage), 100_000);
        assert_eq!(snap.accesses(glider_metrics::AccessKind::ActionWrite), 1);
        assert_eq!(snap.accesses(glider_metrics::AccessKind::ActionRead), 1);
    }

    #[tokio::test]
    async fn merge_action_with_concurrent_interleaved_writers() {
        let c = cluster().await;
        let action = c
            .store
            .create_action("/merge", ActionSpec::new("merge", true))
            .await
            .unwrap();
        let mut tasks = Vec::new();
        for w in 0..4i64 {
            let action = action.clone();
            tasks.push(tokio::spawn(async move {
                let mut out = action.output_stream().await.unwrap();
                for k in 0..100i64 {
                    out.write_all(format!("{k},{w}\n").as_bytes())
                        .await
                        .unwrap();
                }
                out.close().await.unwrap();
            }));
        }
        for t in tasks {
            t.await.unwrap();
        }
        let result = String::from_utf8(action.read_all().await.unwrap()).unwrap();
        let lines: Vec<&str> = result.lines().collect();
        assert_eq!(lines.len(), 100);
        // Every key accumulated 0+1+2+3 = 6.
        assert_eq!(lines[0], "0,6");
        assert_eq!(lines[99], "99,6");
    }

    #[tokio::test]
    async fn filter_action_reads_backing_file_near_data() {
        let c = cluster().await;
        let file = c.store.create_file("/input.txt").await.unwrap();
        file.write_all(Bytes::from_static(
            b"keep this line MATCH\ndrop this one\nanother MATCH here\n",
        ))
        .await
        .unwrap();
        c.metrics.reset(); // isolate the filtered read
        let action = c
            .store
            .create_action(
                "/filtered",
                ActionSpec::new("filter", false).with_params("src=/input.txt;pattern=MATCH"),
            )
            .await
            .unwrap();
        let out = String::from_utf8(action.read_all().await.unwrap()).unwrap();
        assert_eq!(out, "keep this line MATCH\nanother MATCH here\n");
        // The full file moved only inside the storage tier; the client
        // ingested just the matching lines.
        let snap = c.metrics.snapshot();
        assert!(
            snap.intra_storage_bytes() >= 54,
            "{}",
            snap.intra_storage_bytes()
        );
        assert_eq!(
            snap.transferred(Tier::Storage, Tier::Compute),
            out.len() as u64
        );
    }

    #[tokio::test]
    async fn action_errors_surface_to_client() {
        let c = cluster().await;
        // Unknown type fails create and rolls back the namespace entry.
        let err = c
            .store
            .create_action("/bad", ActionSpec::new("no-such-type", false))
            .await
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::UnknownActionType);
        assert_eq!(
            c.store.lookup("/bad").await.unwrap_err().code(),
            ErrorCode::NotFound
        );
        // Filter on a missing backing file fails the read stream.
        let action = c
            .store
            .create_action(
                "/f2",
                ActionSpec::new("filter", false).with_params("src=/nope;pattern=x"),
            )
            .await
            .unwrap();
        let err = action.read_all().await.unwrap_err();
        assert_eq!(err.code(), ErrorCode::NotFound);
    }

    #[tokio::test]
    async fn delete_node_finalizes_action_object() {
        let c = cluster().await;
        c.store
            .create_action("/tmp-action", ActionSpec::new("counter", false))
            .await
            .unwrap();
        assert_eq!(c._active.manager().instance_count(), 1);
        c.store.delete("/tmp-action").await.unwrap();
        assert_eq!(c._active.manager().instance_count(), 0);
        // Slot is reusable.
        c.store
            .create_action("/tmp-action-2", ActionSpec::new("counter", false))
            .await
            .unwrap();
    }

    #[tokio::test]
    async fn rdma_sim_fabric_works_end_to_end() {
        let metrics = MetricsRegistry::new();
        let meta = MetadataServer::start("127.0.0.1:0", Arc::clone(&metrics))
            .await
            .unwrap();
        let active = ActiveServer::start(
            ActiveServerConfig::new(meta.addr(), 2).on_rdma_sim("active-test-rdma"),
            Arc::clone(&metrics),
        )
        .await
        .unwrap();
        assert!(active.addr().starts_with("mem://"));
        let store =
            StoreClient::connect(ClientConfig::new(meta.addr()).with_metrics(Arc::clone(&metrics)))
                .await
                .unwrap();
        let action = store
            .create_action("/c", ActionSpec::new("counter", false))
            .await
            .unwrap();
        action.write_all(Bytes::from_static(b"abc")).await.unwrap();
        assert_eq!(action.read_all().await.unwrap(), b"3");
    }
}
