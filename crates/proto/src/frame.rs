//! Length-prefixed framing of requests and responses.
//!
//! A frame on the wire is `[u32 total_len][u8 kind][header][payload]`
//! where `kind` is 0 for requests and 1 for responses, and `total_len`
//! counts the bytes after the length prefix. The header encodes every
//! message field except bulk payload bytes; for payload-carrying messages
//! (`WriteBlock`, `StreamChunk`, `Data`) the header holds only the
//! payload's `u32` length and the payload itself rides *out-of-band* as
//! the final `payload` bytes of the frame. [`encode_frame_parts`] exposes
//! that split so transports can transmit header and payload as separate
//! I/O slices (vectored writes) without copying the payload into a
//! staging buffer, and [`decode_frame`] hands the payload back as a
//! zero-copy slice of the receive buffer.

use crate::codec::{CodecError, CodecResult, Wire};
use crate::message::{Request, Response};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum frame payload accepted, protecting against corrupt length
/// prefixes. Large transfers are chunked well below this.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Initial capacity for per-frame header buffers: large enough for every
/// fixed-shape header plus typical paths/messages without reallocating.
pub const FRAME_HEADER_CAPACITY: usize = 256;

const KIND_REQUEST: u8 = 0;
const KIND_RESPONSE: u8 = 1;

/// A request or response, as it travels on a connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A client-to-server operation.
    Request(Request),
    /// A server-to-client result.
    Response(Response),
}

impl Frame {
    /// The approximate bulk payload carried by this frame (for metering).
    pub fn payload_len(&self) -> u64 {
        match self {
            Frame::Request(r) => r.body.payload_len(),
            Frame::Response(r) => r.body.payload_len(),
        }
    }
}

impl From<Request> for Frame {
    fn from(req: Request) -> Self {
        Frame::Request(req)
    }
}

impl From<Response> for Frame {
    fn from(resp: Response) -> Self {
        Frame::Response(resp)
    }
}

/// Appends the frame's length prefix, kind byte and header to `buf` and
/// returns the out-of-band bulk payload, if any.
///
/// The returned payload is a cheap reference-counted clone of the
/// frame's `Bytes`; the caller must transmit it directly after the header
/// bytes (the length prefix already accounts for it). This is the
/// zero-copy encode path: bulk bytes are never written into `buf`.
pub fn encode_frame_header(frame: &Frame, buf: &mut BytesMut) -> Option<Bytes> {
    let start = buf.len();
    buf.put_u32_le(0); // patched below once the header length is known
    let payload = match frame {
        Frame::Request(r) => {
            buf.put_u8(KIND_REQUEST);
            r.encode_header(buf);
            r.body.payload().cloned()
        }
        Frame::Response(r) => {
            buf.put_u8(KIND_RESPONSE);
            r.encode_header(buf);
            r.body.payload().cloned()
        }
    };
    let payload_len = payload.as_ref().map_or(0, Bytes::len);
    let total = (buf.len() - start - 4 + payload_len) as u32;
    buf[start..start + 4].copy_from_slice(&total.to_le_bytes());
    payload
}

/// Encodes the frame into a fresh header buffer plus its out-of-band
/// payload (see [`encode_frame_header`]).
pub fn encode_frame_parts(frame: &Frame) -> (BytesMut, Option<Bytes>) {
    let mut header = BytesMut::with_capacity(FRAME_HEADER_CAPACITY);
    let payload = encode_frame_header(frame, &mut header);
    (header, payload)
}

/// Appends the fully assembled frame (header *and* payload) to `buf`.
///
/// Transports should prefer [`encode_frame_parts`] to avoid copying the
/// payload; this helper exists for tests and single-buffer consumers.
pub fn encode_frame(frame: &Frame, buf: &mut BytesMut) {
    if let Some(payload) = encode_frame_header(frame, buf) {
        buf.put_slice(&payload);
    }
}

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when `buf` does not yet hold a complete frame (the
/// caller should read more bytes), consuming nothing in that case.
///
/// Decoding is zero-copy for bulk payloads: the frame body is split off
/// `buf` and frozen, so a decoded `Bytes` payload is a reference-counted
/// slice of the receive buffer's allocation, never a fresh copy.
///
/// # Errors
///
/// Returns [`CodecError`] on malformed frames (bad kind byte, oversized
/// length, undecodable payload).
pub fn decode_frame(buf: &mut BytesMut) -> CodecResult<Option<Frame>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let total = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if total == 0 {
        return Err(CodecError("zero-length frame".to_string()));
    }
    if total > MAX_FRAME_LEN {
        return Err(CodecError(format!(
            "frame length {total} exceeds maximum {MAX_FRAME_LEN}"
        )));
    }
    if buf.len() < 4 + total {
        return Ok(None);
    }
    buf.advance(4);
    let kind = buf.get_u8();
    let mut body: Bytes = buf.split_to(total - 1).freeze();
    let frame = match kind {
        KIND_REQUEST => Frame::Request(Request::decode(&mut body)?),
        KIND_RESPONSE => Frame::Response(Response::decode(&mut body)?),
        other => return Err(CodecError(format!("invalid frame kind {other}"))),
    };
    if body.has_remaining() {
        return Err(CodecError(format!(
            "{} trailing bytes in frame",
            body.remaining()
        )));
    }
    Ok(Some(frame))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{RequestBody, ResponseBody};
    use crate::types::PeerTier;

    fn sample_request() -> Frame {
        Frame::Request(Request {
            id: 5,
            trace_id: 0,
            body: RequestBody::Hello {
                tier: PeerTier::Storage,
            },
        })
    }

    fn sample_response() -> Frame {
        Frame::Response(Response {
            id: 5,
            body: ResponseBody::Written { n: 123 },
        })
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = BytesMut::new();
        encode_frame(&sample_request(), &mut buf);
        encode_frame(&sample_response(), &mut buf);
        let a = decode_frame(&mut buf).unwrap().unwrap();
        let b = decode_frame(&mut buf).unwrap().unwrap();
        assert_eq!(a, sample_request());
        assert_eq!(b, sample_response());
        assert!(buf.is_empty());
        assert_eq!(decode_frame(&mut buf).unwrap(), None);
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut full = BytesMut::new();
        encode_frame(&sample_request(), &mut full);
        for cut in 0..full.len() {
            let mut partial = BytesMut::from(&full[..cut]);
            let got = decode_frame(&mut partial).unwrap();
            assert!(got.is_none(), "cut at {cut}");
            assert_eq!(partial.len(), cut, "nothing consumed at {cut}");
        }
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le((MAX_FRAME_LEN + 1) as u32);
        buf.put_u8(KIND_REQUEST);
        assert!(decode_frame(&mut buf).is_err());
    }

    #[test]
    fn zero_length_frames_are_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0);
        assert!(decode_frame(&mut buf).is_err());
    }

    #[test]
    fn invalid_kind_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(2);
        buf.put_u8(9);
        buf.put_u8(0);
        assert!(decode_frame(&mut buf).is_err());
    }

    #[test]
    fn split_parts_round_trip_and_share_the_payload() {
        let data = Bytes::from(vec![0xAB; 4096]);
        let frame = Frame::Request(Request {
            id: 42,
            trace_id: 7,
            body: RequestBody::WriteBlock {
                block_id: crate::types::BlockId(7),
                offset: 16,
                data: data.clone(),
            },
        });
        let (header, payload) = encode_frame_parts(&frame);
        // The payload is the caller's Bytes by reference, not a copy.
        let payload = payload.expect("write carries a payload");
        assert_eq!(payload.as_ptr(), data.as_ptr());
        assert_eq!(payload.len(), data.len());
        // Reassembling header + payload yields a decodable frame.
        let mut wire = BytesMut::new();
        wire.put_slice(&header);
        wire.put_slice(&payload);
        let decoded = decode_frame(&mut wire).unwrap().unwrap();
        assert_eq!(decoded, frame);
        assert!(wire.is_empty());
        // And it is byte-identical to the single-buffer encoding.
        let mut inline = BytesMut::new();
        encode_frame(&frame, &mut inline);
        let mut joined = BytesMut::new();
        joined.put_slice(&header);
        joined.put_slice(&payload);
        assert_eq!(inline, joined);
    }

    #[test]
    fn headerless_frames_have_no_payload_part() {
        let (header, payload) = encode_frame_parts(&sample_request());
        assert!(payload.is_none());
        let mut wire = BytesMut::from(&header[..]);
        assert_eq!(decode_frame(&mut wire).unwrap().unwrap(), sample_request());
    }

    #[test]
    fn decoded_payload_is_a_slice_of_the_receive_buffer() {
        let data = Bytes::from(vec![0x5A; 64 * 1024]);
        let frame = Frame::Response(Response {
            id: 9,
            body: ResponseBody::Data {
                seq: 0,
                bytes: data,
                eof: true,
            },
        });
        let mut wire = BytesMut::new();
        encode_frame(&frame, &mut wire);
        let range = wire.as_ptr() as usize..wire.as_ptr() as usize + wire.len();
        let decoded = decode_frame(&mut wire).unwrap().unwrap();
        let bytes = match decoded {
            Frame::Response(Response {
                body: ResponseBody::Data { bytes, .. },
                ..
            }) => bytes,
            other => panic!("unexpected {other:?}"),
        };
        let ptr = bytes.as_ptr() as usize;
        assert!(
            range.contains(&ptr) && range.contains(&(ptr + bytes.len() - 1)),
            "payload [{ptr:#x}..) escaped receive buffer {range:#x?}"
        );
    }

    #[test]
    fn payload_len_propagates() {
        let f = Frame::Request(Request {
            id: 1,
            trace_id: 0,
            body: RequestBody::StreamChunk {
                stream_id: crate::types::StreamId(1),
                seq: 0,
                data: Bytes::from_static(b"abcd"),
            },
        });
        assert_eq!(f.payload_len(), 4);
        assert_eq!(sample_request().payload_len(), 0);
    }
}
