//! Length-prefixed framing of requests and responses.
//!
//! A frame on the wire is `[u32 total_len][u8 kind][header][payload]`
//! where `total_len` counts the bytes after the length prefix. The
//! header encodes every message field except bulk payload bytes; for
//! payload-carrying messages (`WriteBlock`, `StreamChunk`, `Data`) the
//! header holds only the payload's `u32` length and the payload itself
//! rides *out-of-band* as the final `payload` bytes of the frame.
//! [`encode_frame_parts`] exposes that split so transports can transmit
//! header and payload as separate I/O slices (vectored writes) without
//! copying the payload into a staging buffer, and [`decode_frame`] hands
//! the payload back as a zero-copy slice of the receive buffer.
//!
//! # Frame kinds (wire format v2)
//!
//! | kind | meaning                | layout after the kind byte          |
//! |------|------------------------|-------------------------------------|
//! | 0    | request, stream 0      | `[header][payload]`                 |
//! | 1    | response, stream 0     | `[header][payload]`                 |
//! | 2    | request on a stream    | `[u32 stream_id][header][payload]`  |
//! | 3    | response on a stream   | `[u32 stream_id][header][payload]`  |
//! | 4    | flow-control credit    | `[u32 stream_id][u32 credits]`      |
//!
//! Kinds 2–4 were added for connection multiplexing: one connection
//! carries many logical streams, each identified by a `u32` tag and
//! flow-controlled by [`Frame::Credit`] grants. Frames on the legacy
//! stream 0 keep the original kind-0/1 encoding byte-for-byte, so a v1
//! peer's frames remain decodable and the golden fixtures from the v1
//! format still pin the encoder. Tag-aware transports use
//! [`encode_frame_header_tagged`] / [`decode_frame_tagged`]; the
//! untagged entry points below are stream-0 shorthands.

use crate::codec::{CodecError, CodecResult, Wire};
use crate::message::{Request, Response};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum frame payload accepted, protecting against corrupt length
/// prefixes. Large transfers are chunked well below this.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Initial capacity for per-frame header buffers: large enough for every
/// fixed-shape header plus typical paths/messages without reallocating.
pub const FRAME_HEADER_CAPACITY: usize = 256;

const KIND_REQUEST: u8 = 0;
const KIND_RESPONSE: u8 = 1;
const KIND_REQUEST_TAGGED: u8 = 2;
const KIND_RESPONSE_TAGGED: u8 = 3;
const KIND_CREDIT: u8 = 4;

/// The stream id of un-multiplexed traffic. Frames on this stream encode
/// with the legacy kind-0/1 wire format and are never flow-controlled.
pub const LEGACY_STREAM: u32 = 0;

/// A request, response or flow-control grant, as it travels on a
/// connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A client-to-server operation.
    Request(Request),
    /// A server-to-client result.
    Response(Response),
    /// A server-to-client flow-control grant: the named stream may issue
    /// `credits` more requests. Never carried on stream 0.
    Credit {
        /// The stream being granted capacity.
        stream_id: u32,
        /// Number of additional requests the stream may issue.
        credits: u32,
    },
}

impl Frame {
    /// The approximate bulk payload carried by this frame (for metering).
    pub fn payload_len(&self) -> u64 {
        match self {
            Frame::Request(r) => r.body.payload_len(),
            Frame::Response(r) => r.body.payload_len(),
            Frame::Credit { .. } => 0,
        }
    }
}

impl From<Request> for Frame {
    fn from(req: Request) -> Self {
        Frame::Request(req)
    }
}

impl From<Response> for Frame {
    fn from(resp: Response) -> Self {
        Frame::Response(resp)
    }
}

/// Appends the frame's length prefix, kind byte and header to `buf` and
/// returns the out-of-band bulk payload, if any.
///
/// The returned payload is a cheap reference-counted clone of the
/// frame's `Bytes`; the caller must transmit it directly after the header
/// bytes (the length prefix already accounts for it). This is the
/// zero-copy encode path: bulk bytes are never written into `buf`.
pub fn encode_frame_header(frame: &Frame, buf: &mut BytesMut) -> Option<Bytes> {
    encode_frame_header_tagged(frame, LEGACY_STREAM, buf)
}

/// Tag-aware variant of [`encode_frame_header`]: encodes `frame` as
/// belonging to logical stream `stream`.
///
/// Stream [`LEGACY_STREAM`] (0) produces the legacy kind-0/1 encoding;
/// any other stream produces the kind-2/3 encoding with the stream id
/// after the kind byte. [`Frame::Credit`] carries its own stream id and
/// ignores `stream`.
pub fn encode_frame_header_tagged(frame: &Frame, stream: u32, buf: &mut BytesMut) -> Option<Bytes> {
    let start = buf.len();
    buf.put_u32_le(0); // patched below once the header length is known
    let payload = match frame {
        Frame::Request(r) => {
            if stream == LEGACY_STREAM {
                buf.put_u8(KIND_REQUEST);
            } else {
                buf.put_u8(KIND_REQUEST_TAGGED);
                buf.put_u32_le(stream);
            }
            r.encode_header(buf);
            r.body.payload().cloned()
        }
        Frame::Response(r) => {
            if stream == LEGACY_STREAM {
                buf.put_u8(KIND_RESPONSE);
            } else {
                buf.put_u8(KIND_RESPONSE_TAGGED);
                buf.put_u32_le(stream);
            }
            r.encode_header(buf);
            r.body.payload().cloned()
        }
        Frame::Credit { stream_id, credits } => {
            buf.put_u8(KIND_CREDIT);
            buf.put_u32_le(*stream_id);
            buf.put_u32_le(*credits);
            None
        }
    };
    let payload_len = payload.as_ref().map_or(0, Bytes::len);
    let total = (buf.len() - start - 4 + payload_len) as u32;
    buf[start..start + 4].copy_from_slice(&total.to_le_bytes());
    payload
}

/// Encodes the frame into a fresh header buffer plus its out-of-band
/// payload (see [`encode_frame_header`]).
pub fn encode_frame_parts(frame: &Frame) -> (BytesMut, Option<Bytes>) {
    let mut header = BytesMut::with_capacity(FRAME_HEADER_CAPACITY);
    let payload = encode_frame_header(frame, &mut header);
    (header, payload)
}

/// Tag-aware variant of [`encode_frame_parts`] (see
/// [`encode_frame_header_tagged`]).
pub fn encode_frame_parts_tagged(frame: &Frame, stream: u32) -> (BytesMut, Option<Bytes>) {
    let mut header = BytesMut::with_capacity(FRAME_HEADER_CAPACITY);
    let payload = encode_frame_header_tagged(frame, stream, &mut header);
    (header, payload)
}

/// Appends the fully assembled frame (header *and* payload) to `buf`.
///
/// Transports should prefer [`encode_frame_parts`] to avoid copying the
/// payload; this helper exists for tests and single-buffer consumers.
pub fn encode_frame(frame: &Frame, buf: &mut BytesMut) {
    if let Some(payload) = encode_frame_header(frame, buf) {
        buf.put_slice(&payload);
    }
}

/// Tag-aware variant of [`encode_frame`] (tests and single-buffer
/// consumers only; transports should use [`encode_frame_parts_tagged`]).
pub fn encode_frame_tagged(frame: &Frame, stream: u32, buf: &mut BytesMut) {
    if let Some(payload) = encode_frame_header_tagged(frame, stream, buf) {
        buf.put_slice(&payload);
    }
}

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when `buf` does not yet hold a complete frame (the
/// caller should read more bytes), consuming nothing in that case.
///
/// Decoding is zero-copy for bulk payloads: the frame body is split off
/// `buf` and frozen, so a decoded `Bytes` payload is a reference-counted
/// slice of the receive buffer's allocation, never a fresh copy.
///
/// # Errors
///
/// Returns [`CodecError`] on malformed frames (bad kind byte, oversized
/// length, undecodable payload).
pub fn decode_frame(buf: &mut BytesMut) -> CodecResult<Option<Frame>> {
    Ok(decode_frame_tagged(buf)?.map(|(_, frame)| frame))
}

/// Tag-aware variant of [`decode_frame`]: returns the logical stream the
/// frame belongs to alongside the frame itself.
///
/// Legacy kind-0/1 frames decode as stream [`LEGACY_STREAM`];
/// [`Frame::Credit`] frames report the granted stream's id as the tag.
///
/// # Errors
///
/// Returns [`CodecError`] on malformed frames (bad kind byte, oversized
/// length, truncated stream tag, undecodable payload).
pub fn decode_frame_tagged(buf: &mut BytesMut) -> CodecResult<Option<(u32, Frame)>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let total = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if total == 0 {
        return Err(CodecError("zero-length frame".to_string()));
    }
    if total > MAX_FRAME_LEN {
        return Err(CodecError(format!(
            "frame length {total} exceeds maximum {MAX_FRAME_LEN}"
        )));
    }
    if buf.len() < 4 + total {
        return Ok(None);
    }
    buf.advance(4);
    let kind = buf.get_u8();
    let mut body: Bytes = buf.split_to(total - 1).freeze();
    fn read_u32(body: &mut Bytes, what: &str) -> CodecResult<u32> {
        if body.remaining() < 4 {
            return Err(CodecError(format!("frame truncated before {what}")));
        }
        Ok(body.get_u32_le())
    }
    let (stream, frame) = match kind {
        KIND_REQUEST => (LEGACY_STREAM, Frame::Request(Request::decode(&mut body)?)),
        KIND_RESPONSE => (LEGACY_STREAM, Frame::Response(Response::decode(&mut body)?)),
        KIND_REQUEST_TAGGED => {
            let stream = read_u32(&mut body, "stream id")?;
            (stream, Frame::Request(Request::decode(&mut body)?))
        }
        KIND_RESPONSE_TAGGED => {
            let stream = read_u32(&mut body, "stream id")?;
            (stream, Frame::Response(Response::decode(&mut body)?))
        }
        KIND_CREDIT => {
            let stream_id = read_u32(&mut body, "credit stream id")?;
            let credits = read_u32(&mut body, "credit count")?;
            (stream_id, Frame::Credit { stream_id, credits })
        }
        other => return Err(CodecError(format!("invalid frame kind {other}"))),
    };
    if body.has_remaining() {
        return Err(CodecError(format!(
            "{} trailing bytes in frame",
            body.remaining()
        )));
    }
    Ok(Some((stream, frame)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{RequestBody, ResponseBody};
    use crate::types::PeerTier;

    fn sample_request() -> Frame {
        Frame::Request(Request {
            id: 5,
            trace_id: 0,
            body: RequestBody::Hello {
                tier: PeerTier::Storage,
            },
        })
    }

    fn sample_response() -> Frame {
        Frame::Response(Response {
            id: 5,
            body: ResponseBody::Written { n: 123 },
        })
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = BytesMut::new();
        encode_frame(&sample_request(), &mut buf);
        encode_frame(&sample_response(), &mut buf);
        let a = decode_frame(&mut buf).unwrap().unwrap();
        let b = decode_frame(&mut buf).unwrap().unwrap();
        assert_eq!(a, sample_request());
        assert_eq!(b, sample_response());
        assert!(buf.is_empty());
        assert_eq!(decode_frame(&mut buf).unwrap(), None);
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut full = BytesMut::new();
        encode_frame(&sample_request(), &mut full);
        for cut in 0..full.len() {
            let mut partial = BytesMut::from(&full[..cut]);
            let got = decode_frame(&mut partial).unwrap();
            assert!(got.is_none(), "cut at {cut}");
            assert_eq!(partial.len(), cut, "nothing consumed at {cut}");
        }
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le((MAX_FRAME_LEN + 1) as u32);
        buf.put_u8(KIND_REQUEST);
        assert!(decode_frame(&mut buf).is_err());
    }

    #[test]
    fn zero_length_frames_are_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0);
        assert!(decode_frame(&mut buf).is_err());
    }

    #[test]
    fn invalid_kind_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(2);
        buf.put_u8(9);
        buf.put_u8(0);
        assert!(decode_frame(&mut buf).is_err());
    }

    #[test]
    fn split_parts_round_trip_and_share_the_payload() {
        let data = Bytes::from(vec![0xAB; 4096]);
        let frame = Frame::Request(Request {
            id: 42,
            trace_id: 7,
            body: RequestBody::WriteBlock {
                block_id: crate::types::BlockId(7),
                offset: 16,
                data: data.clone(),
            },
        });
        let (header, payload) = encode_frame_parts(&frame);
        // The payload is the caller's Bytes by reference, not a copy.
        let payload = payload.expect("write carries a payload");
        assert_eq!(payload.as_ptr(), data.as_ptr());
        assert_eq!(payload.len(), data.len());
        // Reassembling header + payload yields a decodable frame.
        let mut wire = BytesMut::new();
        wire.put_slice(&header);
        wire.put_slice(&payload);
        let decoded = decode_frame(&mut wire).unwrap().unwrap();
        assert_eq!(decoded, frame);
        assert!(wire.is_empty());
        // And it is byte-identical to the single-buffer encoding.
        let mut inline = BytesMut::new();
        encode_frame(&frame, &mut inline);
        let mut joined = BytesMut::new();
        joined.put_slice(&header);
        joined.put_slice(&payload);
        assert_eq!(inline, joined);
    }

    #[test]
    fn headerless_frames_have_no_payload_part() {
        let (header, payload) = encode_frame_parts(&sample_request());
        assert!(payload.is_none());
        let mut wire = BytesMut::from(&header[..]);
        assert_eq!(decode_frame(&mut wire).unwrap().unwrap(), sample_request());
    }

    #[test]
    fn decoded_payload_is_a_slice_of_the_receive_buffer() {
        let data = Bytes::from(vec![0x5A; 64 * 1024]);
        let frame = Frame::Response(Response {
            id: 9,
            body: ResponseBody::Data {
                seq: 0,
                bytes: data,
                eof: true,
            },
        });
        let mut wire = BytesMut::new();
        encode_frame(&frame, &mut wire);
        let range = wire.as_ptr() as usize..wire.as_ptr() as usize + wire.len();
        let decoded = decode_frame(&mut wire).unwrap().unwrap();
        let bytes = match decoded {
            Frame::Response(Response {
                body: ResponseBody::Data { bytes, .. },
                ..
            }) => bytes,
            other => panic!("unexpected {other:?}"),
        };
        let ptr = bytes.as_ptr() as usize;
        assert!(
            range.contains(&ptr) && range.contains(&(ptr + bytes.len() - 1)),
            "payload [{ptr:#x}..) escaped receive buffer {range:#x?}"
        );
    }

    #[test]
    fn tagged_frames_round_trip_with_their_stream() {
        let mut buf = BytesMut::new();
        encode_frame_tagged(&sample_request(), 7, &mut buf);
        encode_frame_tagged(&sample_response(), 9, &mut buf);
        let (s1, f1) = decode_frame_tagged(&mut buf).unwrap().unwrap();
        let (s2, f2) = decode_frame_tagged(&mut buf).unwrap().unwrap();
        assert_eq!((s1, f1), (7, sample_request()));
        assert_eq!((s2, f2), (9, sample_response()));
        assert!(buf.is_empty());
    }

    #[test]
    fn stream_zero_tagged_encoding_matches_legacy_bytes() {
        // The v1 golden fixtures pin kind-0/1 encodings; stream 0 must
        // keep producing them byte-for-byte.
        let mut legacy = BytesMut::new();
        encode_frame(&sample_request(), &mut legacy);
        let mut tagged = BytesMut::new();
        encode_frame_tagged(&sample_request(), LEGACY_STREAM, &mut tagged);
        assert_eq!(legacy, tagged);
        // And a legacy frame decodes as stream 0 under the tagged decoder.
        let (stream, frame) = decode_frame_tagged(&mut legacy).unwrap().unwrap();
        assert_eq!(stream, LEGACY_STREAM);
        assert_eq!(frame, sample_request());
    }

    #[test]
    fn credit_frames_round_trip() {
        let credit = Frame::Credit {
            stream_id: 3,
            credits: 16,
        };
        let mut buf = BytesMut::new();
        encode_frame(&credit, &mut buf);
        // Fixed layout: len=9, kind=4, stream, credits (all u32 LE).
        assert_eq!(&buf[..], &[9, 0, 0, 0, 4, 3, 0, 0, 0, 16, 0, 0, 0][..]);
        let (stream, frame) = decode_frame_tagged(&mut buf).unwrap().unwrap();
        assert_eq!(stream, 3);
        assert_eq!(frame, credit);
        assert_eq!(credit.payload_len(), 0);
    }

    #[test]
    fn untagged_decode_drops_the_stream_tag() {
        let mut buf = BytesMut::new();
        encode_frame_tagged(&sample_request(), 42, &mut buf);
        assert_eq!(decode_frame(&mut buf).unwrap().unwrap(), sample_request());
    }

    #[test]
    fn truncated_tagged_frames_are_rejected() {
        // kind 2 with only 2 bytes of stream id.
        let mut buf = BytesMut::new();
        buf.put_u32_le(3);
        buf.put_u8(2);
        buf.put_u8(0);
        buf.put_u8(0);
        assert!(decode_frame(&mut buf).is_err());
        // kind 4 with a stream id but no credit count.
        let mut buf = BytesMut::new();
        buf.put_u32_le(5);
        buf.put_u8(4);
        buf.put_u32_le(1);
        assert!(decode_frame(&mut buf).is_err());
    }

    #[test]
    fn payload_len_propagates() {
        let f = Frame::Request(Request {
            id: 1,
            trace_id: 0,
            body: RequestBody::StreamChunk {
                stream_id: crate::types::StreamId(1),
                seq: 0,
                data: Bytes::from_static(b"abcd"),
            },
        });
        assert_eq!(f.payload_len(), 4);
        assert_eq!(sample_request().payload_len(), 0);
    }
}
