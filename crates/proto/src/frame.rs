//! Length-prefixed framing of requests and responses.
//!
//! A frame on the wire is `[u32 total_len][u8 kind][payload]` where `kind`
//! is 0 for requests and 1 for responses, and `total_len` counts the bytes
//! after the length prefix.

use crate::codec::{to_bytes, CodecError, CodecResult, Wire};
use crate::message::{Request, Response};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum frame payload accepted, protecting against corrupt length
/// prefixes. Large transfers are chunked well below this.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

const KIND_REQUEST: u8 = 0;
const KIND_RESPONSE: u8 = 1;

/// A request or response, as it travels on a connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A client-to-server operation.
    Request(Request),
    /// A server-to-client result.
    Response(Response),
}

impl Frame {
    /// The approximate bulk payload carried by this frame (for metering).
    pub fn payload_len(&self) -> u64 {
        match self {
            Frame::Request(r) => r.body.payload_len(),
            Frame::Response(r) => r.body.payload_len(),
        }
    }
}

/// Appends the encoded frame to `buf`.
pub fn encode_frame(frame: &Frame, buf: &mut BytesMut) {
    let (kind, body) = match frame {
        Frame::Request(r) => (KIND_REQUEST, to_bytes(r)),
        Frame::Response(r) => (KIND_RESPONSE, to_bytes(r)),
    };
    buf.put_u32_le((body.len() + 1) as u32);
    buf.put_u8(kind);
    buf.put_slice(&body);
}

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when `buf` does not yet hold a complete frame (the
/// caller should read more bytes), consuming nothing in that case.
///
/// # Errors
///
/// Returns [`CodecError`] on malformed frames (bad kind byte, oversized
/// length, undecodable payload).
pub fn decode_frame(buf: &mut BytesMut) -> CodecResult<Option<Frame>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let total = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if total == 0 {
        return Err(CodecError("zero-length frame".to_string()));
    }
    if total > MAX_FRAME_LEN {
        return Err(CodecError(format!(
            "frame length {total} exceeds maximum {MAX_FRAME_LEN}"
        )));
    }
    if buf.len() < 4 + total {
        return Ok(None);
    }
    buf.advance(4);
    let kind = buf.get_u8();
    let mut body: Bytes = buf.split_to(total - 1).freeze();
    let frame = match kind {
        KIND_REQUEST => Frame::Request(Request::decode(&mut body)?),
        KIND_RESPONSE => Frame::Response(Response::decode(&mut body)?),
        other => return Err(CodecError(format!("invalid frame kind {other}"))),
    };
    if body.has_remaining() {
        return Err(CodecError(format!(
            "{} trailing bytes in frame",
            body.remaining()
        )));
    }
    Ok(Some(frame))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{RequestBody, ResponseBody};
    use crate::types::PeerTier;

    fn sample_request() -> Frame {
        Frame::Request(Request {
            id: 5,
            body: RequestBody::Hello {
                tier: PeerTier::Storage,
            },
        })
    }

    fn sample_response() -> Frame {
        Frame::Response(Response {
            id: 5,
            body: ResponseBody::Written { n: 123 },
        })
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = BytesMut::new();
        encode_frame(&sample_request(), &mut buf);
        encode_frame(&sample_response(), &mut buf);
        let a = decode_frame(&mut buf).unwrap().unwrap();
        let b = decode_frame(&mut buf).unwrap().unwrap();
        assert_eq!(a, sample_request());
        assert_eq!(b, sample_response());
        assert!(buf.is_empty());
        assert_eq!(decode_frame(&mut buf).unwrap(), None);
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut full = BytesMut::new();
        encode_frame(&sample_request(), &mut full);
        for cut in 0..full.len() {
            let mut partial = BytesMut::from(&full[..cut]);
            let got = decode_frame(&mut partial).unwrap();
            assert!(got.is_none(), "cut at {cut}");
            assert_eq!(partial.len(), cut, "nothing consumed at {cut}");
        }
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le((MAX_FRAME_LEN + 1) as u32);
        buf.put_u8(KIND_REQUEST);
        assert!(decode_frame(&mut buf).is_err());
    }

    #[test]
    fn zero_length_frames_are_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0);
        assert!(decode_frame(&mut buf).is_err());
    }

    #[test]
    fn invalid_kind_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(2);
        buf.put_u8(9);
        buf.put_u8(0);
        assert!(decode_frame(&mut buf).is_err());
    }

    #[test]
    fn payload_len_propagates() {
        let f = Frame::Request(Request {
            id: 1,
            body: RequestBody::StreamChunk {
                stream_id: crate::types::StreamId(1),
                seq: 0,
                data: Bytes::from_static(b"abcd"),
            },
        });
        assert_eq!(f.payload_len(), 4);
        assert_eq!(sample_request().payload_len(), 0);
    }
}
