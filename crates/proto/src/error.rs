//! The workspace-wide error type.

use std::fmt;

/// Machine-readable error classification carried across the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The named node/object/block does not exist.
    NotFound,
    /// A node already exists at the target path.
    AlreadyExists,
    /// The caller supplied an invalid argument (bad path, bad range, ...).
    InvalidArgument,
    /// The operation targets a node of an incompatible kind
    /// (e.g. a block read on an action node).
    WrongNodeKind,
    /// The storage class has no capacity left (no free blocks/slots).
    OutOfCapacity,
    /// The referenced action type is not registered on the active server.
    UnknownActionType,
    /// A user action method failed or panicked.
    ActionFailed,
    /// The stream or connection was closed before the operation finished.
    Closed,
    /// An underlying I/O failure.
    Io,
    /// A malformed or unexpected protocol message.
    Protocol,
    /// The operation is not supported by this node/server.
    Unsupported,
    /// A FaaS function exceeded its configured limits (time or memory).
    ResourceLimit,
    /// The server is temporarily unreachable or not accepting work
    /// (dead lease, redial in progress); retrying elsewhere may succeed.
    Unavailable,
    /// The operation's deadline elapsed before a response arrived.
    Timeout,
}

impl ErrorCode {
    /// Stable numeric code used on the wire.
    pub fn as_u16(self) -> u16 {
        match self {
            ErrorCode::NotFound => 1,
            ErrorCode::AlreadyExists => 2,
            ErrorCode::InvalidArgument => 3,
            ErrorCode::WrongNodeKind => 4,
            ErrorCode::OutOfCapacity => 5,
            ErrorCode::UnknownActionType => 6,
            ErrorCode::ActionFailed => 7,
            ErrorCode::Closed => 8,
            ErrorCode::Io => 9,
            ErrorCode::Protocol => 10,
            ErrorCode::Unsupported => 11,
            ErrorCode::ResourceLimit => 12,
            ErrorCode::Unavailable => 13,
            ErrorCode::Timeout => 14,
        }
    }

    /// Parses the numeric wire code.
    pub fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            1 => ErrorCode::NotFound,
            2 => ErrorCode::AlreadyExists,
            3 => ErrorCode::InvalidArgument,
            4 => ErrorCode::WrongNodeKind,
            5 => ErrorCode::OutOfCapacity,
            6 => ErrorCode::UnknownActionType,
            7 => ErrorCode::ActionFailed,
            8 => ErrorCode::Closed,
            9 => ErrorCode::Io,
            10 => ErrorCode::Protocol,
            11 => ErrorCode::Unsupported,
            12 => ErrorCode::ResourceLimit,
            13 => ErrorCode::Unavailable,
            14 => ErrorCode::Timeout,
            _ => return None,
        })
    }

    /// Whether an error with this code is *transient*: the request may
    /// succeed if retried (possibly against another server). This is the
    /// `Retryable`/`Fatal` split of the failure model (DESIGN.md §10) —
    /// transport-level failures are retryable, semantic failures are not.
    /// Note retryable ≠ safe-to-auto-retry: only idempotent operations are
    /// retried automatically; for the rest the caller decides.
    ///
    /// The match is deliberately exhaustive (no `_` arm): adding an
    /// `ErrorCode` variant without deciding its retry class is a compile
    /// error here and a `cargo xtask lint` failure.
    pub fn is_retryable(self) -> bool {
        match self {
            // Transport-level: the operation may never have reached (or
            // never answered from) the server — another attempt can win.
            ErrorCode::Closed => true,
            ErrorCode::Io => true,
            ErrorCode::Unavailable => true,
            ErrorCode::Timeout => true,
            // Semantic: the server understood the request and said no;
            // retrying the same request yields the same answer.
            ErrorCode::NotFound => false,
            ErrorCode::AlreadyExists => false,
            ErrorCode::InvalidArgument => false,
            ErrorCode::WrongNodeKind => false,
            ErrorCode::OutOfCapacity => false,
            ErrorCode::UnknownActionType => false,
            ErrorCode::ActionFailed => false,
            ErrorCode::Protocol => false,
            ErrorCode::Unsupported => false,
            ErrorCode::ResourceLimit => false,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::NotFound => "not found",
            ErrorCode::AlreadyExists => "already exists",
            ErrorCode::InvalidArgument => "invalid argument",
            ErrorCode::WrongNodeKind => "wrong node kind",
            ErrorCode::OutOfCapacity => "out of capacity",
            ErrorCode::UnknownActionType => "unknown action type",
            ErrorCode::ActionFailed => "action failed",
            ErrorCode::Closed => "closed",
            ErrorCode::Io => "i/o error",
            ErrorCode::Protocol => "protocol error",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::ResourceLimit => "resource limit exceeded",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::Timeout => "timed out",
        };
        f.write_str(s)
    }
}

/// The error type returned by every fallible public API in the workspace.
///
/// `GliderError` pairs an [`ErrorCode`] (preserved across the wire) with a
/// human-readable message.
///
/// # Examples
///
/// ```
/// use glider_proto::{ErrorCode, GliderError};
///
/// let err = GliderError::not_found("/jobs/42/part-0");
/// assert_eq!(err.code(), ErrorCode::NotFound);
/// assert!(err.to_string().contains("/jobs/42/part-0"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GliderError {
    code: ErrorCode,
    message: String,
}

impl GliderError {
    /// Creates an error with an explicit code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        GliderError {
            code,
            message: message.into(),
        }
    }

    /// Convenience constructor for [`ErrorCode::NotFound`].
    pub fn not_found(what: impl fmt::Display) -> Self {
        GliderError::new(ErrorCode::NotFound, format!("{what} not found"))
    }

    /// Convenience constructor for [`ErrorCode::AlreadyExists`].
    pub fn already_exists(what: impl fmt::Display) -> Self {
        GliderError::new(ErrorCode::AlreadyExists, format!("{what} already exists"))
    }

    /// Convenience constructor for [`ErrorCode::InvalidArgument`].
    pub fn invalid(message: impl Into<String>) -> Self {
        GliderError::new(ErrorCode::InvalidArgument, message)
    }

    /// Convenience constructor for [`ErrorCode::Protocol`].
    pub fn protocol(message: impl Into<String>) -> Self {
        GliderError::new(ErrorCode::Protocol, message)
    }

    /// Convenience constructor for [`ErrorCode::Closed`].
    pub fn closed(what: impl fmt::Display) -> Self {
        GliderError::new(ErrorCode::Closed, format!("{what} closed"))
    }

    /// Convenience constructor for [`ErrorCode::Unavailable`].
    pub fn unavailable(what: impl fmt::Display) -> Self {
        GliderError::new(ErrorCode::Unavailable, format!("{what} unavailable"))
    }

    /// Convenience constructor for [`ErrorCode::Timeout`].
    pub fn timeout(what: impl fmt::Display) -> Self {
        GliderError::new(ErrorCode::Timeout, format!("{what} timed out"))
    }

    /// Whether this error is transient (see [`ErrorCode::is_retryable`]).
    pub fn is_retryable(&self) -> bool {
        self.code.is_retryable()
    }

    /// The machine-readable classification.
    pub fn code(&self) -> ErrorCode {
        self.code
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for GliderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for GliderError {}

impl From<std::io::Error> for GliderError {
    fn from(e: std::io::Error) -> Self {
        GliderError::new(ErrorCode::Io, e.to_string())
    }
}

/// Result alias used across the workspace.
pub type GliderResult<T> = Result<T, GliderError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_on_wire() {
        for code in [
            ErrorCode::NotFound,
            ErrorCode::AlreadyExists,
            ErrorCode::InvalidArgument,
            ErrorCode::WrongNodeKind,
            ErrorCode::OutOfCapacity,
            ErrorCode::UnknownActionType,
            ErrorCode::ActionFailed,
            ErrorCode::Closed,
            ErrorCode::Io,
            ErrorCode::Protocol,
            ErrorCode::Unsupported,
            ErrorCode::ResourceLimit,
            ErrorCode::Unavailable,
            ErrorCode::Timeout,
        ] {
            assert_eq!(ErrorCode::from_u16(code.as_u16()), Some(code));
        }
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(9999), None);
    }

    #[test]
    fn retryable_split_is_transport_vs_semantic() {
        for code in [
            ErrorCode::Closed,
            ErrorCode::Io,
            ErrorCode::Unavailable,
            ErrorCode::Timeout,
        ] {
            assert!(code.is_retryable(), "{code} should be retryable");
        }
        for code in [
            ErrorCode::NotFound,
            ErrorCode::AlreadyExists,
            ErrorCode::InvalidArgument,
            ErrorCode::OutOfCapacity,
            ErrorCode::ActionFailed,
            ErrorCode::Protocol,
            ErrorCode::Unsupported,
        ] {
            assert!(!code.is_retryable(), "{code} should be fatal");
        }
        assert!(GliderError::timeout("call").is_retryable());
        assert!(!GliderError::not_found("/a").is_retryable());
    }

    #[test]
    fn display_is_lowercase_without_punctuation() {
        let e = GliderError::invalid("bad path");
        let s = e.to_string();
        assert!(s.starts_with("invalid argument"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe");
        let e: GliderError = io.into();
        assert_eq!(e.code(), ErrorCode::Io);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GliderError>();
    }
}
