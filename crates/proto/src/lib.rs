//! Wire protocol for the Glider reproduction.
//!
//! Glider (like Apache Crail / NodeKernel, which it extends) splits its RPC
//! surface into a *metadata plane* (namespace structure, block allocation,
//! server registry) and a *data plane* (block reads/writes against data
//! servers, action streams against active servers). This crate defines:
//!
//! - a compact hand-rolled binary codec ([`codec`]),
//! - the shared id/enum vocabulary ([`types`]),
//! - the request/response messages of both planes ([`message`]),
//! - length-prefixed framing with out-of-band bulk payloads ([`frame`]),
//!   and
//! - the workspace-wide error type ([`error::GliderError`]).
//!
//! The codec is deliberately dependency-free (no serde): the protocol is an
//! artifact of the system being reproduced and is kept explicit.
//!
//! Bulk `Bytes` payloads (`WriteBlock`, `StreamChunk`, `Data`) are framed
//! *out-of-band*: headers carry only the payload length and transports
//! send the payload as its own I/O slice ([`frame::encode_frame_parts`]),
//! so the hot data path never copies payload bytes into an encode buffer
//! and decodes them as zero-copy slices of the receive buffer.
//!
//! # Examples
//!
//! ```
//! use glider_proto::message::{Request, RequestBody};
//! use glider_proto::frame::{encode_frame, decode_frame, Frame};
//! use bytes::BytesMut;
//!
//! let req = Request {
//!     id: 7,
//!     trace_id: 0,
//!     body: RequestBody::LookupNode { path: "/tmp/x".into() },
//! };
//! let mut buf = BytesMut::new();
//! encode_frame(&Frame::Request(req.clone()), &mut buf);
//! let decoded = decode_frame(&mut buf).unwrap().unwrap();
//! assert_eq!(decoded, Frame::Request(req));
//! ```

pub mod batch;
pub mod codec;
pub mod dump;
pub mod error;
pub mod frame;
pub mod message;
pub mod stats;
pub mod types;

pub use error::{ErrorCode, GliderError, GliderResult};
