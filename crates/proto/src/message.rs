//! Request/response messages for the metadata and data planes.
//!
//! Every RPC is a [`Request`] carrying a caller-chosen id, answered by a
//! [`Response`] echoing the same id. Message bodies encode with a `u16`
//! opcode followed by their fields.

use crate::codec::{CodecError, CodecResult, Wire};
use crate::dump::{SeriesPayload, SpanDump};
use crate::error::{ErrorCode, GliderError};
use crate::stats::StatsPayload;
use crate::types::{
    ActionSpec, BlockExtent, BlockId, BlockLocation, NodeId, NodeInfo, NodeKind, PeerTier,
    ReplicaExtent, ServerId, ServerKind, StorageClass, StreamDir, StreamId,
};
use bytes::{Bytes, BytesMut};

/// A request frame: caller-chosen id plus the operation body.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Correlates the response; unique per connection.
    pub id: u64,
    /// End-to-end trace id: minted once at the root of a client
    /// operation and copied into every RPC it causes, so all hops of one
    /// logical request can be correlated across processes. 0 means
    /// untraced.
    pub trace_id: u64,
    /// The operation.
    pub body: RequestBody,
}

/// Operations of both RPC planes.
///
/// Metadata-plane operations (`CreateNode` .. `RegisterServer`) are served
/// by the metadata server; data-plane operations (`WriteBlock` ..
/// `StreamClose`) by data and active storage servers.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Connection handshake declaring the caller's tier (for transfer
    /// metering). Must be the first request on a connection.
    Hello {
        /// The caller's architectural tier.
        tier: PeerTier,
    },

    // ---- metadata plane ----
    /// Creates a node at `path`. Parents must exist and be containers.
    CreateNode {
        /// Absolute namespace path (e.g. `/job1/shuffle/part-3`).
        path: String,
        /// Node kind to create.
        kind: NodeKind,
        /// Preferred storage class for data blocks (`sc` parameter of the
        /// paper's API); defaults per kind when `None`. Ignored for actions,
        /// which always allocate in the active class.
        storage_class: Option<StorageClass>,
        /// Action parameters; required iff `kind == Action`.
        action: Option<ActionSpec>,
    },
    /// Looks up the node at `path`.
    LookupNode {
        /// Absolute namespace path.
        path: String,
    },
    /// Removes the node at `path` (recursively for containers) and returns
    /// everything the client must release on storage servers.
    DeleteNode {
        /// Absolute namespace path.
        path: String,
    },
    /// Lists the child names of a container node.
    ListChildren {
        /// Absolute namespace path of a `Directory` or `Table`.
        path: String,
    },
    /// Allocates and appends one block to a data node's chain.
    AddBlock {
        /// Target node.
        node_id: NodeId,
    },
    /// Records that `len` bytes of `block_id` now hold data of `node_id`.
    CommitBlock {
        /// Target node.
        node_id: NodeId,
        /// Block within the node's chain.
        block_id: BlockId,
        /// Used bytes within the block.
        len: u64,
    },
    /// Allocates and appends up to `count` blocks to a data node's chain
    /// in one round trip (the batched form of [`RequestBody::AddBlock`]).
    /// The server answers with [`ResponseBody::Blocks`] carrying between
    /// one and `count` extents; it errors only when *no* block can be
    /// allocated, and a mid-batch failure rolls back atomically.
    AddBlocks {
        /// Target node.
        node_id: NodeId,
        /// Desired number of blocks (must be ≥ 1).
        count: u32,
    },
    /// Records several committed block lengths of one node in a single
    /// round trip (the batched form of [`RequestBody::CommitBlock`]).
    CommitBlocks {
        /// Target node.
        node_id: NodeId,
        /// `(block, used bytes)` pairs, applied in order.
        commits: Vec<(BlockId, u64)>,
    },
    /// Swaps one block of a data node's chain for a freshly allocated one
    /// *at the same chain position*, releasing the old block. Writers use
    /// this when a write to `block_id` fails because its server died: the
    /// replacement comes from a live server of the same class, and chain
    /// order (and therefore read order) is preserved.
    ReplaceBlock {
        /// The node owning the chain.
        node_id: NodeId,
        /// The block to replace (must be in the node's chain).
        block_id: BlockId,
    },
    /// Registers a storage server and its capacity with the metadata plane.
    RegisterServer {
        /// Data or active server.
        kind: ServerKind,
        /// The class the server joins (exactly one, per the paper).
        storage_class: StorageClass,
        /// Data-plane address clients should dial.
        addr: String,
        /// Number of blocks (data) or action slots (active) contributed.
        capacity_blocks: u64,
    },
    /// Requests the server's observability snapshot (latency histograms,
    /// gauges, counters). Answered uniformly by every Glider server.
    Stats,
    /// A storage/active server's periodic liveness beacon to the metadata
    /// plane. Refreshes the sender's TTL lease; servers that stay silent
    /// past the lease are marked `Suspect`, then `Dead`, and excluded from
    /// allocation until they re-register.
    Heartbeat {
        /// The id assigned at registration.
        server_id: ServerId,
    },
    /// Dumps the server's flight recorder (completed spans + structured
    /// fault events), filtered. Answered uniformly by every Glider
    /// server with [`ResponseBody::Spans`]; clients fan this out to
    /// reassemble a cross-process trace (DESIGN.md §13).
    DumpSpans {
        /// Return only this trace's records; 0 returns every trace.
        trace_id: u64,
        /// Return only records with recorder seq greater than this; 0
        /// returns everything retained. Feed the previous dump's highest
        /// seq back in for incremental tailing.
        since_seq: u64,
    },
    /// Requests the server's sampled per-operation time series and
    /// current latency exemplars (answer: [`ResponseBody::Series`]).
    MetricsSeries,

    // ---- data plane ----
    /// Writes `data` into a block at `offset`.
    WriteBlock {
        /// Target block.
        block_id: BlockId,
        /// Byte offset within the block.
        offset: u64,
        /// Payload.
        data: Bytes,
    },
    /// Reads `len` bytes from a block at `offset`.
    ReadBlock {
        /// Target block.
        block_id: BlockId,
        /// Byte offset within the block.
        offset: u64,
        /// Bytes to read.
        len: u64,
    },
    /// Releases blocks freed by a node deletion.
    FreeBlocks {
        /// Blocks to release.
        block_ids: Vec<BlockId>,
    },
    /// Instantiates an action object into a slot (runs `on_create`).
    ActionCreate {
        /// The action node.
        node_id: NodeId,
        /// The slot (block) assigned by the metadata server.
        block_id: BlockId,
        /// Action type and configuration.
        spec: ActionSpec,
    },
    /// Removes an action object (runs `on_delete`, frees the slot).
    ActionDelete {
        /// The action node.
        node_id: NodeId,
    },
    /// Opens an I/O stream against an action node, triggering `on_read` or
    /// `on_write`.
    StreamOpen {
        /// The action node.
        node_id: NodeId,
        /// Direction from the client's point of view.
        dir: StreamDir,
    },
    /// Pushes one chunk on a write stream.
    StreamChunk {
        /// Stream handle from `StreamOpen`.
        stream_id: StreamId,
        /// Sequence number (0-based) for ordering checks.
        seq: u64,
        /// Payload.
        data: Bytes,
    },
    /// Pushes a batch of length-prefixed records on a write stream in one
    /// frame. `data` holds `count` records packed back to back, each as a
    /// `u32` little-endian length followed by that many bytes (see
    /// `glider_proto::batch`). The batch occupies sequence numbers
    /// `seq .. seq + count` so it interleaves correctly with singular
    /// [`RequestBody::StreamChunk`] pushes on the same stream.
    StreamChunkBatch {
        /// Stream handle from `StreamOpen`.
        stream_id: StreamId,
        /// Sequence number of the first record in the batch.
        seq: u64,
        /// Number of records packed in `data`.
        count: u32,
        /// The packed records (bulk payload, travels out-of-band).
        data: Bytes,
    },
    /// Pulls up to `max_len` bytes from a read stream. Blocks server-side
    /// until data is available or the producing method finishes.
    StreamFetch {
        /// Stream handle from `StreamOpen`.
        stream_id: StreamId,
        /// Maximum bytes to return.
        max_len: u64,
    },
    /// Ends the stream. For write streams this signals end-of-input and the
    /// response is sent after the action method completes (write barrier).
    StreamClose {
        /// Stream handle from `StreamOpen`.
        stream_id: StreamId,
    },
    /// Writes `data` into the first block of `chain` at `offset`, then
    /// chain-forwards the same payload to the rest of the chain before
    /// acking (primary/backup replication, DESIGN.md §15). The client
    /// sends this instead of [`RequestBody::WriteBlock`] when the extent
    /// has backups; the ack therefore means *every* replica holds the
    /// bytes.
    ForwardChunk {
        /// Byte offset within each replica block.
        offset: u64,
        /// Replica chain: `chain[0]` is this server's block, the rest
        /// are downstream replicas in forwarding order.
        chain: Vec<BlockLocation>,
        /// Payload (bulk, travels out-of-band).
        data: Bytes,
    },
    /// Copies the current contents of a locally-held block to a replica
    /// on another server (re-replication after a server death; issued by
    /// the metadata sweeper or `fsck --repair` to the surviving primary).
    ReplicateBlock {
        /// The source block on the receiving server.
        src_block: BlockId,
        /// Destination replica to create.
        dst: BlockLocation,
        /// Bytes to copy (the committed length of the extent).
        len: u64,
    },
    /// Reports a node's replica layout: every extent of the node's chain
    /// with its backup locations (answer: [`ResponseBody::ReplicatedBlocks`]).
    /// Read-only; used by `glider-cli fsck`.
    NodeReplicas {
        /// The node to inspect.
        node_id: NodeId,
    },
    /// Restores the configured replication factor for a node: allocates
    /// replacement backups for under-replicated extents and schedules the
    /// copies. Answers with the post-repair layout.
    RepairNode {
        /// The node to repair.
        node_id: NodeId,
    },
}

impl RequestBody {
    fn opcode(&self) -> u16 {
        match self {
            RequestBody::Hello { .. } => 0,
            RequestBody::CreateNode { .. } => 1,
            RequestBody::LookupNode { .. } => 2,
            RequestBody::DeleteNode { .. } => 3,
            RequestBody::ListChildren { .. } => 4,
            RequestBody::AddBlock { .. } => 5,
            RequestBody::CommitBlock { .. } => 6,
            RequestBody::RegisterServer { .. } => 7,
            RequestBody::Stats => 8,
            RequestBody::AddBlocks { .. } => 9,
            RequestBody::CommitBlocks { .. } => 10,
            RequestBody::Heartbeat { .. } => 11,
            RequestBody::ReplaceBlock { .. } => 12,
            RequestBody::DumpSpans { .. } => 13,
            RequestBody::MetricsSeries => 14,
            RequestBody::WriteBlock { .. } => 20,
            RequestBody::ReadBlock { .. } => 21,
            RequestBody::FreeBlocks { .. } => 22,
            RequestBody::ActionCreate { .. } => 23,
            RequestBody::ActionDelete { .. } => 24,
            RequestBody::StreamOpen { .. } => 25,
            RequestBody::StreamChunk { .. } => 26,
            RequestBody::StreamFetch { .. } => 27,
            RequestBody::StreamClose { .. } => 28,
            RequestBody::StreamChunkBatch { .. } => 29,
            RequestBody::ForwardChunk { .. } => 30,
            RequestBody::ReplicateBlock { .. } => 31,
            RequestBody::NodeReplicas { .. } => 32,
            RequestBody::RepairNode { .. } => 33,
        }
    }

    /// A short operation name for diagnostics.
    pub fn op_name(&self) -> &'static str {
        match self {
            RequestBody::Hello { .. } => "hello",
            RequestBody::CreateNode { .. } => "create-node",
            RequestBody::LookupNode { .. } => "lookup-node",
            RequestBody::DeleteNode { .. } => "delete-node",
            RequestBody::ListChildren { .. } => "list-children",
            RequestBody::AddBlock { .. } => "add-block",
            RequestBody::CommitBlock { .. } => "commit-block",
            RequestBody::RegisterServer { .. } => "register-server",
            RequestBody::Stats => "stats",
            RequestBody::AddBlocks { .. } => "add-blocks",
            RequestBody::CommitBlocks { .. } => "commit-blocks",
            RequestBody::Heartbeat { .. } => "heartbeat",
            RequestBody::ReplaceBlock { .. } => "replace-block",
            RequestBody::DumpSpans { .. } => "dump-spans",
            RequestBody::MetricsSeries => "metrics-series",
            RequestBody::WriteBlock { .. } => "write-block",
            RequestBody::ReadBlock { .. } => "read-block",
            RequestBody::FreeBlocks { .. } => "free-blocks",
            RequestBody::ActionCreate { .. } => "action-create",
            RequestBody::ActionDelete { .. } => "action-delete",
            RequestBody::StreamOpen { .. } => "stream-open",
            RequestBody::StreamChunk { .. } => "stream-chunk",
            RequestBody::StreamFetch { .. } => "stream-fetch",
            RequestBody::StreamClose { .. } => "stream-close",
            RequestBody::StreamChunkBatch { .. } => "stream-chunk-batch",
            RequestBody::ForwardChunk { .. } => "forward-chunk",
            RequestBody::ReplicateBlock { .. } => "replicate-block",
            RequestBody::NodeReplicas { .. } => "node-replicas",
            RequestBody::RepairNode { .. } => "repair-node",
        }
    }

    /// The approximate payload size carried by this request (bytes that
    /// count as data transfer, as opposed to fixed header overhead).
    pub fn payload_len(&self) -> u64 {
        match self {
            RequestBody::WriteBlock { data, .. } => data.len() as u64,
            RequestBody::StreamChunk { data, .. } => data.len() as u64,
            RequestBody::StreamChunkBatch { data, .. } => data.len() as u64,
            RequestBody::ForwardChunk { data, .. } => data.len() as u64,
            _ => 0,
        }
    }

    /// The bulk payload this request carries out-of-band, if any.
    ///
    /// Payload bytes are always the *last* bytes of a frame: the header
    /// encodes only their length, so transports can transmit the payload
    /// by reference (vectored I/O) without staging it in an encode buffer.
    pub fn payload(&self) -> Option<&Bytes> {
        match self {
            RequestBody::WriteBlock { data, .. } => Some(data),
            RequestBody::StreamChunk { data, .. } => Some(data),
            RequestBody::StreamChunkBatch { data, .. } => Some(data),
            RequestBody::ForwardChunk { data, .. } => Some(data),
            _ => None,
        }
    }

    /// Whether retrying this operation after an ambiguous transport
    /// failure is always safe (the request either never executed or
    /// executing it twice is indistinguishable from once). Idempotent
    /// operations are retried automatically by the RPC layer;
    /// non-idempotent ones surface their retryable error to the caller,
    /// who knows whether a duplicate is acceptable (DESIGN.md §10).
    pub fn is_idempotent(&self) -> bool {
        match self {
            // Pure reads, liveness, and re-registration (registry keyed by
            // address) are safe to replay.
            RequestBody::Hello { .. }
            | RequestBody::LookupNode { .. }
            | RequestBody::ListChildren { .. }
            | RequestBody::Stats
            | RequestBody::DumpSpans { .. }
            | RequestBody::MetricsSeries
            | RequestBody::Heartbeat { .. }
            | RequestBody::ReadBlock { .. }
            | RequestBody::NodeReplicas { .. }
            | RequestBody::StreamFetch { .. } => true,
            // Mutations: a lost response leaves the caller unsure whether
            // the side effect (allocation, commit, chunk append, slot
            // creation, ...) happened.
            RequestBody::CreateNode { .. }
            | RequestBody::DeleteNode { .. }
            | RequestBody::AddBlock { .. }
            | RequestBody::AddBlocks { .. }
            | RequestBody::ReplaceBlock { .. }
            | RequestBody::CommitBlock { .. }
            | RequestBody::CommitBlocks { .. }
            | RequestBody::RegisterServer { .. }
            | RequestBody::WriteBlock { .. }
            | RequestBody::FreeBlocks { .. }
            | RequestBody::ActionCreate { .. }
            | RequestBody::ActionDelete { .. }
            | RequestBody::StreamOpen { .. }
            | RequestBody::StreamChunk { .. }
            | RequestBody::StreamChunkBatch { .. }
            | RequestBody::ForwardChunk { .. }
            | RequestBody::ReplicateBlock { .. }
            | RequestBody::RepairNode { .. }
            | RequestBody::StreamClose { .. } => false,
        }
    }
}

impl Request {
    /// Encodes everything except the bulk payload bytes; where the payload
    /// would sit, only its `u32` length is written. The payload itself
    /// (see [`RequestBody::payload`]) travels out-of-band and is appended
    /// verbatim as the final bytes of the frame.
    pub fn encode_header(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.trace_id.encode(buf);
        self.body.opcode().encode(buf);
        match &self.body {
            RequestBody::Hello { tier } => tier.encode(buf),
            RequestBody::CreateNode {
                path,
                kind,
                storage_class,
                action,
            } => {
                path.encode(buf);
                kind.encode(buf);
                storage_class.encode(buf);
                action.encode(buf);
            }
            RequestBody::LookupNode { path }
            | RequestBody::DeleteNode { path }
            | RequestBody::ListChildren { path } => path.encode(buf),
            RequestBody::AddBlock { node_id } => node_id.encode(buf),
            RequestBody::AddBlocks { node_id, count } => {
                node_id.encode(buf);
                count.encode(buf);
            }
            RequestBody::CommitBlocks { node_id, commits } => {
                node_id.encode(buf);
                commits.encode(buf);
            }
            RequestBody::CommitBlock {
                node_id,
                block_id,
                len,
            } => {
                node_id.encode(buf);
                block_id.encode(buf);
                len.encode(buf);
            }
            RequestBody::RegisterServer {
                kind,
                storage_class,
                addr,
                capacity_blocks,
            } => {
                kind.encode(buf);
                storage_class.encode(buf);
                addr.encode(buf);
                capacity_blocks.encode(buf);
            }
            RequestBody::Stats => {}
            RequestBody::Heartbeat { server_id } => server_id.encode(buf),
            RequestBody::ReplaceBlock { node_id, block_id } => {
                node_id.encode(buf);
                block_id.encode(buf);
            }
            RequestBody::DumpSpans {
                trace_id,
                since_seq,
            } => {
                trace_id.encode(buf);
                since_seq.encode(buf);
            }
            RequestBody::MetricsSeries => {}
            RequestBody::WriteBlock {
                block_id,
                offset,
                data,
            } => {
                block_id.encode(buf);
                offset.encode(buf);
                (data.len() as u32).encode(buf);
            }
            RequestBody::ReadBlock {
                block_id,
                offset,
                len,
            } => {
                block_id.encode(buf);
                offset.encode(buf);
                len.encode(buf);
            }
            RequestBody::FreeBlocks { block_ids } => block_ids.encode(buf),
            RequestBody::ActionCreate {
                node_id,
                block_id,
                spec,
            } => {
                node_id.encode(buf);
                block_id.encode(buf);
                spec.encode(buf);
            }
            RequestBody::ActionDelete { node_id } => node_id.encode(buf),
            RequestBody::StreamOpen { node_id, dir } => {
                node_id.encode(buf);
                dir.encode(buf);
            }
            RequestBody::StreamChunk {
                stream_id,
                seq,
                data,
            } => {
                stream_id.encode(buf);
                seq.encode(buf);
                (data.len() as u32).encode(buf);
            }
            RequestBody::StreamChunkBatch {
                stream_id,
                seq,
                count,
                data,
            } => {
                stream_id.encode(buf);
                seq.encode(buf);
                count.encode(buf);
                (data.len() as u32).encode(buf);
            }
            RequestBody::StreamFetch { stream_id, max_len } => {
                stream_id.encode(buf);
                max_len.encode(buf);
            }
            RequestBody::StreamClose { stream_id } => stream_id.encode(buf),
            RequestBody::ForwardChunk {
                offset,
                chain,
                data,
            } => {
                offset.encode(buf);
                chain.encode(buf);
                (data.len() as u32).encode(buf);
            }
            RequestBody::ReplicateBlock {
                src_block,
                dst,
                len,
            } => {
                src_block.encode(buf);
                dst.encode(buf);
                len.encode(buf);
            }
            RequestBody::NodeReplicas { node_id } => node_id.encode(buf),
            RequestBody::RepairNode { node_id } => node_id.encode(buf),
        }
    }
}

impl Wire for Request {
    fn encode(&self, buf: &mut BytesMut) {
        self.encode_header(buf);
        if let Some(data) = self.body.payload() {
            buf.extend_from_slice(data);
        }
    }

    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        let id = u64::decode(buf)?;
        let trace_id = u64::decode(buf)?;
        let opcode = u16::decode(buf)?;
        let body = match opcode {
            0 => RequestBody::Hello {
                tier: PeerTier::decode(buf)?,
            },
            1 => RequestBody::CreateNode {
                path: String::decode(buf)?,
                kind: NodeKind::decode(buf)?,
                storage_class: Option::decode(buf)?,
                action: Option::decode(buf)?,
            },
            2 => RequestBody::LookupNode {
                path: String::decode(buf)?,
            },
            3 => RequestBody::DeleteNode {
                path: String::decode(buf)?,
            },
            4 => RequestBody::ListChildren {
                path: String::decode(buf)?,
            },
            5 => RequestBody::AddBlock {
                node_id: NodeId::decode(buf)?,
            },
            6 => RequestBody::CommitBlock {
                node_id: NodeId::decode(buf)?,
                block_id: BlockId::decode(buf)?,
                len: u64::decode(buf)?,
            },
            7 => RequestBody::RegisterServer {
                kind: ServerKind::decode(buf)?,
                storage_class: StorageClass::decode(buf)?,
                addr: String::decode(buf)?,
                capacity_blocks: u64::decode(buf)?,
            },
            8 => RequestBody::Stats,
            9 => RequestBody::AddBlocks {
                node_id: NodeId::decode(buf)?,
                count: u32::decode(buf)?,
            },
            10 => RequestBody::CommitBlocks {
                node_id: NodeId::decode(buf)?,
                commits: Vec::decode(buf)?,
            },
            11 => RequestBody::Heartbeat {
                server_id: ServerId::decode(buf)?,
            },
            12 => RequestBody::ReplaceBlock {
                node_id: NodeId::decode(buf)?,
                block_id: BlockId::decode(buf)?,
            },
            13 => RequestBody::DumpSpans {
                trace_id: u64::decode(buf)?,
                since_seq: u64::decode(buf)?,
            },
            14 => RequestBody::MetricsSeries,
            20 => RequestBody::WriteBlock {
                block_id: BlockId::decode(buf)?,
                offset: u64::decode(buf)?,
                data: Bytes::decode(buf)?,
            },
            21 => RequestBody::ReadBlock {
                block_id: BlockId::decode(buf)?,
                offset: u64::decode(buf)?,
                len: u64::decode(buf)?,
            },
            22 => RequestBody::FreeBlocks {
                block_ids: Vec::decode(buf)?,
            },
            23 => RequestBody::ActionCreate {
                node_id: NodeId::decode(buf)?,
                block_id: BlockId::decode(buf)?,
                spec: ActionSpec::decode(buf)?,
            },
            24 => RequestBody::ActionDelete {
                node_id: NodeId::decode(buf)?,
            },
            25 => RequestBody::StreamOpen {
                node_id: NodeId::decode(buf)?,
                dir: StreamDir::decode(buf)?,
            },
            26 => RequestBody::StreamChunk {
                stream_id: StreamId::decode(buf)?,
                seq: u64::decode(buf)?,
                data: Bytes::decode(buf)?,
            },
            27 => RequestBody::StreamFetch {
                stream_id: StreamId::decode(buf)?,
                max_len: u64::decode(buf)?,
            },
            28 => RequestBody::StreamClose {
                stream_id: StreamId::decode(buf)?,
            },
            29 => RequestBody::StreamChunkBatch {
                stream_id: StreamId::decode(buf)?,
                seq: u64::decode(buf)?,
                count: u32::decode(buf)?,
                data: Bytes::decode(buf)?,
            },
            30 => RequestBody::ForwardChunk {
                offset: u64::decode(buf)?,
                chain: Vec::decode(buf)?,
                data: Bytes::decode(buf)?,
            },
            31 => RequestBody::ReplicateBlock {
                src_block: BlockId::decode(buf)?,
                dst: BlockLocation::decode(buf)?,
                len: u64::decode(buf)?,
            },
            32 => RequestBody::NodeReplicas {
                node_id: NodeId::decode(buf)?,
            },
            33 => RequestBody::RepairNode {
                node_id: NodeId::decode(buf)?,
            },
            other => return Err(CodecError(format!("unknown request opcode {other}"))),
        };
        Ok(Request { id, trace_id, body })
    }
}

/// A response frame echoing the request id.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The id of the request this answers.
    pub id: u64,
    /// The result.
    pub body: ResponseBody,
}

/// Results of RPC operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// The operation succeeded with no payload.
    Ok,
    /// Node information (create/lookup).
    Node(NodeInfo),
    /// Node information of a deleted subtree root, plus all block extents
    /// of the subtree the client must release.
    Deleted {
        /// The removed node.
        info: NodeInfo,
        /// Every extent owned by the removed subtree (including actions'
        /// slots, which require `ActionDelete` instead of `FreeBlocks`).
        extents: Vec<BlockExtent>,
        /// Action nodes removed (node id + slot) so the client can
        /// finalize them on their active servers.
        actions: Vec<NodeInfo>,
    },
    /// Child names of a container.
    Children(Vec<String>),
    /// A freshly allocated block extent.
    Block(BlockExtent),
    /// The registered server's id.
    Registered {
        /// Assigned server id.
        server_id: ServerId,
        /// Block ids assigned to this server's capacity.
        first_block_id: BlockId,
    },
    /// A stream was opened.
    StreamOpened {
        /// Handle for subsequent chunk/fetch/close calls.
        stream_id: StreamId,
    },
    /// Data returned by a read or fetch.
    Data {
        /// Server-assigned sequence number of this payload within its
        /// stream (0 for plain block reads). Clients reassemble windowed
        /// stream fetches by this number.
        seq: u64,
        /// Payload (possibly empty).
        bytes: Bytes,
        /// True when the producing side has finished and no more data will
        /// arrive after this payload.
        eof: bool,
    },
    /// Bytes accepted by a write.
    Written {
        /// Number of bytes written.
        n: u64,
    },
    /// The operation failed.
    Error {
        /// Machine-readable code.
        code: u16,
        /// Human-readable message.
        message: String,
    },
    /// The server's observability snapshot (answer to
    /// [`RequestBody::Stats`]).
    Stats(StatsPayload),
    /// Freshly allocated block extents, in chain order (answer to
    /// [`RequestBody::AddBlocks`]).
    Blocks(Vec<BlockExtent>),
    /// The server's flight-recorder dump (answer to
    /// [`RequestBody::DumpSpans`]).
    Spans(SpanDump),
    /// The server's sampled time series and exemplars (answer to
    /// [`RequestBody::MetricsSeries`]).
    Series(SeriesPayload),
    /// Freshly allocated extents with their backup replicas, in chain
    /// order. Answers `AddBlock`/`AddBlocks`/`ReplaceBlock` when the
    /// cluster runs with replication factor > 1, and the replica
    /// introspection/repair requests ([`RequestBody::NodeReplicas`],
    /// [`RequestBody::RepairNode`]).
    ReplicatedBlocks(Vec<ReplicaExtent>),
}

impl ResponseBody {
    fn opcode(&self) -> u16 {
        match self {
            ResponseBody::Ok => 0,
            ResponseBody::Node(_) => 1,
            ResponseBody::Deleted { .. } => 2,
            ResponseBody::Children(_) => 3,
            ResponseBody::Block(_) => 4,
            ResponseBody::Registered { .. } => 5,
            ResponseBody::StreamOpened { .. } => 6,
            ResponseBody::Data { .. } => 7,
            ResponseBody::Written { .. } => 8,
            ResponseBody::Error { .. } => 9,
            ResponseBody::Stats(_) => 10,
            ResponseBody::Blocks(_) => 11,
            ResponseBody::Spans(_) => 12,
            ResponseBody::Series(_) => 13,
            ResponseBody::ReplicatedBlocks(_) => 14,
        }
    }

    /// Builds an error response body from a [`GliderError`].
    pub fn from_error(err: &GliderError) -> Self {
        ResponseBody::Error {
            code: err.code().as_u16(),
            message: err.message().to_string(),
        }
    }

    /// Converts an error body back into a [`GliderError`]; other bodies
    /// return `Ok(self)`.
    pub fn into_result(self) -> Result<ResponseBody, GliderError> {
        match self {
            ResponseBody::Error { code, message } => Err(GliderError::new(
                ErrorCode::from_u16(code).unwrap_or(ErrorCode::Protocol),
                message,
            )),
            other => Ok(other),
        }
    }

    /// The approximate payload size carried by this response.
    pub fn payload_len(&self) -> u64 {
        match self {
            ResponseBody::Data { bytes, .. } => bytes.len() as u64,
            _ => 0,
        }
    }

    /// The bulk payload this response carries out-of-band, if any.
    ///
    /// See [`RequestBody::payload`] for the out-of-band rule.
    pub fn payload(&self) -> Option<&Bytes> {
        match self {
            ResponseBody::Data { bytes, .. } => Some(bytes),
            _ => None,
        }
    }
}

impl Response {
    /// Encodes everything except the bulk payload bytes; where the payload
    /// would sit, only its `u32` length is written (the payload field of
    /// `Data` is therefore ordered *after* `eof` on the wire). The payload
    /// itself travels out-of-band as the final bytes of the frame.
    pub fn encode_header(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.body.opcode().encode(buf);
        match &self.body {
            ResponseBody::Ok => {}
            ResponseBody::Node(info) => info.encode(buf),
            ResponseBody::Deleted {
                info,
                extents,
                actions,
            } => {
                info.encode(buf);
                extents.encode(buf);
                actions.encode(buf);
            }
            ResponseBody::Children(names) => names.encode(buf),
            ResponseBody::Block(extent) => extent.encode(buf),
            ResponseBody::Registered {
                server_id,
                first_block_id,
            } => {
                server_id.encode(buf);
                first_block_id.encode(buf);
            }
            ResponseBody::StreamOpened { stream_id } => stream_id.encode(buf),
            ResponseBody::Data { seq, bytes, eof } => {
                seq.encode(buf);
                eof.encode(buf);
                (bytes.len() as u32).encode(buf);
            }
            ResponseBody::Written { n } => n.encode(buf),
            ResponseBody::Error { code, message } => {
                code.encode(buf);
                message.encode(buf);
            }
            ResponseBody::Stats(payload) => payload.encode(buf),
            ResponseBody::Blocks(extents) => extents.encode(buf),
            ResponseBody::Spans(dump) => dump.encode(buf),
            ResponseBody::Series(payload) => payload.encode(buf),
            ResponseBody::ReplicatedBlocks(extents) => extents.encode(buf),
        }
    }
}

impl Wire for Response {
    fn encode(&self, buf: &mut BytesMut) {
        self.encode_header(buf);
        if let Some(bytes) = self.body.payload() {
            buf.extend_from_slice(bytes);
        }
    }

    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        let id = u64::decode(buf)?;
        let opcode = u16::decode(buf)?;
        let body = match opcode {
            0 => ResponseBody::Ok,
            1 => ResponseBody::Node(NodeInfo::decode(buf)?),
            2 => ResponseBody::Deleted {
                info: NodeInfo::decode(buf)?,
                extents: Vec::decode(buf)?,
                actions: Vec::decode(buf)?,
            },
            3 => ResponseBody::Children(Vec::decode(buf)?),
            4 => ResponseBody::Block(BlockExtent::decode(buf)?),
            5 => ResponseBody::Registered {
                server_id: ServerId::decode(buf)?,
                first_block_id: BlockId::decode(buf)?,
            },
            6 => ResponseBody::StreamOpened {
                stream_id: StreamId::decode(buf)?,
            },
            7 => {
                let seq = u64::decode(buf)?;
                let eof = bool::decode(buf)?;
                let bytes = Bytes::decode(buf)?;
                ResponseBody::Data { seq, bytes, eof }
            }
            8 => ResponseBody::Written {
                n: u64::decode(buf)?,
            },
            9 => ResponseBody::Error {
                code: u16::decode(buf)?,
                message: String::decode(buf)?,
            },
            10 => ResponseBody::Stats(StatsPayload::decode(buf)?),
            11 => ResponseBody::Blocks(Vec::decode(buf)?),
            12 => ResponseBody::Spans(SpanDump::decode(buf)?),
            13 => ResponseBody::Series(SeriesPayload::decode(buf)?),
            14 => ResponseBody::ReplicatedBlocks(Vec::decode(buf)?),
            other => return Err(CodecError(format!("unknown response opcode {other}"))),
        };
        Ok(Response { id, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{from_bytes, to_bytes};
    use crate::types::BlockLocation;

    fn round_trip_req(body: RequestBody) {
        let req = Request {
            id: 99,
            trace_id: 0xDEAD_BEEF,
            body,
        };
        assert_eq!(from_bytes::<Request>(to_bytes(&req)).unwrap(), req);
    }

    fn round_trip_resp(body: ResponseBody) {
        let resp = Response { id: 7, body };
        assert_eq!(from_bytes::<Response>(to_bytes(&resp)).unwrap(), resp);
    }

    fn extent() -> BlockExtent {
        BlockExtent {
            loc: BlockLocation {
                block_id: BlockId(3),
                server_id: ServerId(1),
                addr: "127.0.0.1:9000".to_string(),
            },
            len: 4096,
        }
    }

    #[test]
    fn all_requests_round_trip() {
        round_trip_req(RequestBody::Hello {
            tier: PeerTier::Compute,
        });
        round_trip_req(RequestBody::CreateNode {
            path: "/a/b".to_string(),
            kind: NodeKind::Action,
            storage_class: Some(StorageClass::active()),
            action: Some(ActionSpec {
                type_name: "merge".to_string(),
                interleaved: true,
                params: String::new(),
            }),
        });
        round_trip_req(RequestBody::LookupNode {
            path: "/a".to_string(),
        });
        round_trip_req(RequestBody::DeleteNode {
            path: "/a".to_string(),
        });
        round_trip_req(RequestBody::ListChildren {
            path: "/".to_string(),
        });
        round_trip_req(RequestBody::AddBlock { node_id: NodeId(1) });
        round_trip_req(RequestBody::AddBlocks {
            node_id: NodeId(1),
            count: 4,
        });
        round_trip_req(RequestBody::CommitBlock {
            node_id: NodeId(1),
            block_id: BlockId(2),
            len: 100,
        });
        round_trip_req(RequestBody::CommitBlocks {
            node_id: NodeId(1),
            commits: vec![(BlockId(2), 100), (BlockId(3), 50)],
        });
        round_trip_req(RequestBody::CommitBlocks {
            node_id: NodeId(1),
            commits: vec![],
        });
        round_trip_req(RequestBody::RegisterServer {
            kind: ServerKind::Active,
            storage_class: StorageClass::active(),
            addr: "mem://a".to_string(),
            capacity_blocks: 8,
        });
        round_trip_req(RequestBody::WriteBlock {
            block_id: BlockId(1),
            offset: 10,
            data: Bytes::from_static(b"hello"),
        });
        round_trip_req(RequestBody::ReadBlock {
            block_id: BlockId(1),
            offset: 0,
            len: 64,
        });
        round_trip_req(RequestBody::FreeBlocks {
            block_ids: vec![BlockId(1), BlockId(2)],
        });
        round_trip_req(RequestBody::ActionCreate {
            node_id: NodeId(4),
            block_id: BlockId(5),
            spec: ActionSpec {
                type_name: "filter".to_string(),
                interleaved: false,
                params: String::new(),
            },
        });
        round_trip_req(RequestBody::ActionDelete { node_id: NodeId(4) });
        round_trip_req(RequestBody::StreamOpen {
            node_id: NodeId(4),
            dir: StreamDir::Read,
        });
        round_trip_req(RequestBody::StreamChunk {
            stream_id: StreamId(8),
            seq: 3,
            data: Bytes::from_static(b"chunk"),
        });
        round_trip_req(RequestBody::StreamChunkBatch {
            stream_id: StreamId(8),
            seq: 4,
            count: 2,
            data: Bytes::from_static(b"\x02\x00\x00\x00hi\x01\x00\x00\x00!"),
        });
        round_trip_req(RequestBody::StreamFetch {
            stream_id: StreamId(8),
            max_len: 65536,
        });
        round_trip_req(RequestBody::StreamClose {
            stream_id: StreamId(8),
        });
        round_trip_req(RequestBody::Stats);
        round_trip_req(RequestBody::Heartbeat {
            server_id: ServerId(5),
        });
        round_trip_req(RequestBody::ReplaceBlock {
            node_id: NodeId(1),
            block_id: BlockId(2),
        });
        round_trip_req(RequestBody::DumpSpans {
            trace_id: 0xFEED,
            since_seq: 42,
        });
        round_trip_req(RequestBody::DumpSpans {
            trace_id: 0,
            since_seq: 0,
        });
        round_trip_req(RequestBody::MetricsSeries);
        round_trip_req(RequestBody::ForwardChunk {
            offset: 4096,
            chain: vec![
                BlockLocation {
                    block_id: BlockId(7),
                    server_id: ServerId(1),
                    addr: "mem://data-0".to_string(),
                },
                BlockLocation {
                    block_id: BlockId(8),
                    server_id: ServerId(2),
                    addr: "mem://data-1".to_string(),
                },
            ],
            data: Bytes::from_static(b"replicated"),
        });
        round_trip_req(RequestBody::ReplicateBlock {
            src_block: BlockId(7),
            dst: BlockLocation {
                block_id: BlockId(9),
                server_id: ServerId(3),
                addr: "mem://data-2".to_string(),
            },
            len: 1024,
        });
        round_trip_req(RequestBody::NodeReplicas { node_id: NodeId(5) });
        round_trip_req(RequestBody::RepairNode { node_id: NodeId(5) });
    }

    #[test]
    fn idempotency_split_matches_retry_matrix() {
        assert!(RequestBody::LookupNode { path: "/a".into() }.is_idempotent());
        assert!(RequestBody::Stats.is_idempotent());
        assert!(RequestBody::Heartbeat {
            server_id: ServerId(1)
        }
        .is_idempotent());
        assert!(RequestBody::ReadBlock {
            block_id: BlockId(1),
            offset: 0,
            len: 8
        }
        .is_idempotent());
        assert!(!RequestBody::WriteBlock {
            block_id: BlockId(1),
            offset: 0,
            data: Bytes::from_static(b"x"),
        }
        .is_idempotent());
        assert!(!RequestBody::CommitBlock {
            node_id: NodeId(1),
            block_id: BlockId(1),
            len: 1
        }
        .is_idempotent());
        assert!(!RequestBody::DeleteNode { path: "/a".into() }.is_idempotent());
        // Replica introspection is a pure read; forwarding, copying, and
        // repairing all mutate replica state.
        assert!(RequestBody::NodeReplicas { node_id: NodeId(1) }.is_idempotent());
        assert!(!RequestBody::ForwardChunk {
            offset: 0,
            chain: vec![],
            data: Bytes::from_static(b"x"),
        }
        .is_idempotent());
        assert!(!RequestBody::RepairNode { node_id: NodeId(1) }.is_idempotent());
    }

    #[test]
    fn all_responses_round_trip() {
        round_trip_resp(ResponseBody::Ok);
        round_trip_resp(ResponseBody::Node(NodeInfo {
            id: NodeId(1),
            kind: NodeKind::File,
            size: 10,
            blocks: vec![extent()],
            action: None,
        }));
        round_trip_resp(ResponseBody::Deleted {
            info: NodeInfo {
                id: NodeId(1),
                kind: NodeKind::Directory,
                size: 0,
                blocks: vec![],
                action: None,
            },
            extents: vec![extent()],
            actions: vec![],
        });
        round_trip_resp(ResponseBody::Children(vec!["a".into(), "b".into()]));
        round_trip_resp(ResponseBody::Block(extent()));
        round_trip_resp(ResponseBody::Blocks(vec![extent(), extent()]));
        round_trip_resp(ResponseBody::Blocks(vec![]));
        round_trip_resp(ResponseBody::ReplicatedBlocks(vec![ReplicaExtent {
            extent: extent(),
            backups: vec![BlockLocation {
                block_id: BlockId(11),
                server_id: ServerId(4),
                addr: "mem://data-3".to_string(),
            }],
        }]));
        round_trip_resp(ResponseBody::ReplicatedBlocks(vec![]));
        round_trip_resp(ResponseBody::Registered {
            server_id: ServerId(3),
            first_block_id: BlockId(1000),
        });
        round_trip_resp(ResponseBody::StreamOpened {
            stream_id: StreamId(12),
        });
        round_trip_resp(ResponseBody::Data {
            seq: 3,
            bytes: Bytes::from_static(b"payload"),
            eof: true,
        });
        round_trip_resp(ResponseBody::Written { n: 7 });
        round_trip_resp(ResponseBody::Error {
            code: ErrorCode::NotFound.as_u16(),
            message: "nope".to_string(),
        });
        round_trip_resp(ResponseBody::Stats(crate::stats::StatsPayload {
            ops: vec![crate::stats::OpLatency {
                name: "block-write".to_string(),
                buckets: vec![0, 1, 2],
            }],
            gauges: vec![],
            counters: vec![crate::stats::NamedValue {
                name: "metadata-rpcs".to_string(),
                value: 9,
            }],
        }));
    }

    #[test]
    fn introspection_bodies_round_trip() {
        use crate::dump::{ExemplarEntry, SpanDump, WireSpan};
        round_trip_resp(ResponseBody::Spans(SpanDump {
            source: "mem://meta".to_string(),
            spans: vec![WireSpan {
                seq: 1,
                name: "client.call".to_string(),
                trace_id: 0xFEED,
                span_id: 2,
                parent_span: 0,
                remote: false,
                duration_ns: 123_456,
                err: true,
                pinned: true,
            }],
            events: vec![],
            dropped_spans: 0,
            dropped_events: 0,
        }));
        round_trip_resp(ResponseBody::Spans(SpanDump::default()));
        round_trip_resp(ResponseBody::Series(crate::dump::SeriesPayload {
            source: "mem://data0".to_string(),
            series: vec![],
            exemplars: vec![ExemplarEntry {
                op: "block-read".to_string(),
                bucket: 14,
                trace_id: 0xFEED,
            }],
        }));
        // Both introspection requests are safe to replay.
        assert!(RequestBody::DumpSpans {
            trace_id: 0,
            since_seq: 0
        }
        .is_idempotent());
        assert!(RequestBody::MetricsSeries.is_idempotent());
    }

    #[test]
    fn error_bodies_convert_to_errors() {
        let err = GliderError::not_found("/x");
        let body = ResponseBody::from_error(&err);
        let back = body.into_result().unwrap_err();
        assert_eq!(back.code(), ErrorCode::NotFound);
        assert!(ResponseBody::Ok.into_result().is_ok());
    }

    #[test]
    fn unknown_opcodes_are_rejected() {
        let mut buf = BytesMut::new();
        1u64.encode(&mut buf); // id
        2u64.encode(&mut buf); // trace_id
        999u16.encode(&mut buf);
        assert!(from_bytes::<Request>(buf.freeze()).is_err());
        let mut buf = BytesMut::new();
        1u64.encode(&mut buf);
        999u16.encode(&mut buf);
        assert!(from_bytes::<Response>(buf.freeze()).is_err());
    }

    #[test]
    fn payload_len_counts_only_bulk_data() {
        let w = RequestBody::WriteBlock {
            block_id: BlockId(1),
            offset: 0,
            data: Bytes::from_static(b"12345"),
        };
        assert_eq!(w.payload_len(), 5);
        assert_eq!(
            RequestBody::LookupNode {
                path: "/a".to_string()
            }
            .payload_len(),
            0
        );
        let d = ResponseBody::Data {
            seq: 0,
            bytes: Bytes::from_static(b"123"),
            eof: false,
        };
        assert_eq!(d.payload_len(), 3);
        assert_eq!(ResponseBody::Ok.payload_len(), 0);
    }

    #[test]
    fn header_plus_payload_equals_inline_encoding() {
        use crate::codec::Wire;
        use bytes::BufMut;

        let req = Request {
            id: 3,
            trace_id: 77,
            body: RequestBody::WriteBlock {
                block_id: BlockId(1),
                offset: 8,
                data: Bytes::from_static(b"out-of-band"),
            },
        };
        let mut header = BytesMut::new();
        req.encode_header(&mut header);
        header.put_slice(req.body.payload().unwrap());
        let mut full = BytesMut::new();
        req.encode(&mut full);
        assert_eq!(header, full);

        let resp = Response {
            id: 3,
            body: ResponseBody::Data {
                seq: 1,
                bytes: Bytes::from_static(b"resp-payload"),
                eof: true,
            },
        };
        let mut header = BytesMut::new();
        resp.encode_header(&mut header);
        header.put_slice(resp.body.payload().unwrap());
        let mut full = BytesMut::new();
        resp.encode(&mut full);
        assert_eq!(header, full);

        // Non-payload bodies have no out-of-band part.
        assert_eq!(
            RequestBody::ReadBlock {
                block_id: BlockId(1),
                offset: 0,
                len: 4,
            }
            .payload(),
            None
        );
        assert_eq!(ResponseBody::Ok.payload(), None);
    }

    #[test]
    fn op_names_are_stable() {
        assert_eq!(
            RequestBody::StreamOpen {
                node_id: NodeId(1),
                dir: StreamDir::Read
            }
            .op_name(),
            "stream-open"
        );
        assert_eq!(
            RequestBody::AddBlocks {
                node_id: NodeId(1),
                count: 2
            }
            .op_name(),
            "add-blocks"
        );
        assert_eq!(
            RequestBody::CommitBlocks {
                node_id: NodeId(1),
                commits: vec![]
            }
            .op_name(),
            "commit-blocks"
        );
        assert_eq!(
            RequestBody::ForwardChunk {
                offset: 0,
                chain: vec![],
                data: Bytes::new()
            }
            .op_name(),
            "forward-chunk"
        );
        assert_eq!(
            RequestBody::RepairNode { node_id: NodeId(1) }.op_name(),
            "repair-node"
        );
    }

    #[test]
    fn forward_chunk_payload_is_out_of_band() {
        use bytes::BufMut;
        let req = Request {
            id: 3,
            trace_id: 77,
            body: RequestBody::ForwardChunk {
                offset: 8,
                chain: vec![BlockLocation {
                    block_id: BlockId(1),
                    server_id: ServerId(2),
                    addr: "a".to_string(),
                }],
                data: Bytes::from_static(b"chained"),
            },
        };
        assert_eq!(req.body.payload_len(), 7);
        let mut header = BytesMut::new();
        req.encode_header(&mut header);
        header.put_slice(req.body.payload().unwrap());
        let mut full = BytesMut::new();
        req.encode(&mut full);
        assert_eq!(header, full);
    }
}
