//! Wire representation of the trace query plane (DESIGN.md §13): the
//! `DumpSpans` and `MetricsSeries` RPCs.
//!
//! Every Glider server keeps a flight recorder of completed spans and
//! structured fault events (`glider-trace`). [`SpanDump`] is one
//! process's retained slice of a trace; the client fans `DumpSpans` out
//! to every known server and merges the dumps by `(trace_id, span_id)`
//! to reassemble the cross-process tree. [`SeriesPayload`] carries a
//! server's per-operation time series plus the exemplar trace ids that
//! link latency buckets back to dumpable traces.

use crate::codec::{CodecResult, Wire};
use bytes::{Bytes, BytesMut};

/// One completed span as retained by a server's flight recorder.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireSpan {
    /// The recorder's monotonic sequence number (per source process).
    pub seq: u64,
    /// Span name (e.g. `rpc.dispatch`).
    pub name: String,
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique within the trace).
    pub span_id: u64,
    /// Parent span id; 0 for roots and remote continuations.
    pub parent_span: u64,
    /// True when the parent lives in another process (wire hop).
    pub remote: bool,
    /// Span duration in nanoseconds.
    pub duration_ns: u64,
    /// True when the span closed with its error flag set.
    pub err: bool,
    /// True when tail-based retention pinned this span (slow or error).
    pub pinned: bool,
}

impl Wire for WireSpan {
    fn encode(&self, buf: &mut BytesMut) {
        self.seq.encode(buf);
        self.name.encode(buf);
        self.trace_id.encode(buf);
        self.span_id.encode(buf);
        self.parent_span.encode(buf);
        self.remote.encode(buf);
        self.duration_ns.encode(buf);
        self.err.encode(buf);
        self.pinned.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(WireSpan {
            seq: u64::decode(buf)?,
            name: String::decode(buf)?,
            trace_id: u64::decode(buf)?,
            span_id: u64::decode(buf)?,
            parent_span: u64::decode(buf)?,
            remote: bool::decode(buf)?,
            duration_ns: u64::decode(buf)?,
            err: bool::decode(buf)?,
            pinned: bool::decode(buf)?,
        })
    }
}

/// One structured fault event (retry, reconnect, liveness transition,
/// pool exhaustion) from a server's event log.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireEvent {
    /// The recorder's monotonic sequence number (shared with spans).
    pub seq: u64,
    /// Event kind (e.g. `rpc.retry`, `server.liveness`).
    pub kind: String,
    /// The operation or transition described.
    pub op: String,
    /// The server address involved, when known.
    pub addr: String,
    /// Attempt number for retry/reconnect kinds.
    pub attempt: u64,
    /// The trace the event belongs to (0 when untraced).
    pub trace_id: u64,
}

impl Wire for WireEvent {
    fn encode(&self, buf: &mut BytesMut) {
        self.seq.encode(buf);
        self.kind.encode(buf);
        self.op.encode(buf);
        self.addr.encode(buf);
        self.attempt.encode(buf);
        self.trace_id.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(WireEvent {
            seq: u64::decode(buf)?,
            kind: String::decode(buf)?,
            op: String::decode(buf)?,
            addr: String::decode(buf)?,
            attempt: u64::decode(buf)?,
            trace_id: u64::decode(buf)?,
        })
    }
}

/// One process's answer to `DumpSpans`: its retained spans and events
/// (filtered by the request), plus how much history its rings have shed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanDump {
    /// Where the dump came from (the server's data-plane address;
    /// `client` for the local process).
    pub source: String,
    /// Retained spans, ascending `seq`.
    pub spans: Vec<WireSpan>,
    /// Retained structured events, ascending `seq`.
    pub events: Vec<WireEvent>,
    /// Spans evicted from the source's rings since process start.
    pub dropped_spans: u64,
    /// Events evicted from the source's event log since process start.
    pub dropped_events: u64,
}

impl SpanDump {
    /// Merges `other` into `self` for cross-process trace assembly:
    /// spans dedup by `(trace_id, span_id)` (first occurrence wins —
    /// span ids are minted once, so duplicates only arise from asking
    /// the same server twice), events append, drop counts add, sources
    /// join with `,`.
    pub fn merge(&mut self, other: &SpanDump) {
        if self.source.is_empty() {
            self.source = other.source.clone();
        } else if !other.source.is_empty() {
            self.source.push(',');
            self.source.push_str(&other.source);
        }
        for span in &other.spans {
            if !self
                .spans
                .iter()
                .any(|s| s.trace_id == span.trace_id && s.span_id == span.span_id)
            {
                self.spans.push(span.clone());
            }
        }
        self.events.extend(other.events.iter().cloned());
        self.dropped_spans += other.dropped_spans;
        self.dropped_events += other.dropped_events;
    }
}

impl Wire for SpanDump {
    fn encode(&self, buf: &mut BytesMut) {
        self.source.encode(buf);
        self.spans.encode(buf);
        self.events.encode(buf);
        self.dropped_spans.encode(buf);
        self.dropped_events.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(SpanDump {
            source: String::decode(buf)?,
            spans: Vec::decode(buf)?,
            events: Vec::decode(buf)?,
            dropped_spans: u64::decode(buf)?,
            dropped_events: u64::decode(buf)?,
        })
    }
}

/// One sampled point of an operation's time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireSeriesPoint {
    /// Sampler tick number (per source process).
    pub seq: u64,
    /// Operations completed since the previous tick.
    pub count: u64,
    /// Cumulative p50 latency at sampling time, ns.
    pub p50_ns: u64,
    /// Cumulative p99 latency at sampling time, ns.
    pub p99_ns: u64,
}

impl Wire for WireSeriesPoint {
    fn encode(&self, buf: &mut BytesMut) {
        self.seq.encode(buf);
        self.count.encode(buf);
        self.p50_ns.encode(buf);
        self.p99_ns.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(WireSeriesPoint {
            seq: u64::decode(buf)?,
            count: u64::decode(buf)?,
            p50_ns: u64::decode(buf)?,
            p99_ns: u64::decode(buf)?,
        })
    }
}

/// The retained time series of one operation kind.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpSeriesPayload {
    /// The operation name (a `glider_metrics::OpKind` name).
    pub name: String,
    /// Points ascending by `seq`, oldest first.
    pub points: Vec<WireSeriesPoint>,
}

impl Wire for OpSeriesPayload {
    fn encode(&self, buf: &mut BytesMut) {
        self.name.encode(buf);
        self.points.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(OpSeriesPayload {
            name: String::decode(buf)?,
            points: Vec::decode(buf)?,
        })
    }
}

/// An exemplar: the last trace id whose latency landed in one histogram
/// bucket of one operation, linking the metrics plane to the trace
/// plane (`stats` shows the id, `trace <id>` dumps it).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExemplarEntry {
    /// The operation name.
    pub op: String,
    /// The log-histogram bucket index the latency landed in.
    pub bucket: u32,
    /// The trace id (nonzero by construction).
    pub trace_id: u64,
}

impl Wire for ExemplarEntry {
    fn encode(&self, buf: &mut BytesMut) {
        self.op.encode(buf);
        self.bucket.encode(buf);
        self.trace_id.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(ExemplarEntry {
            op: String::decode(buf)?,
            bucket: u32::decode(buf)?,
            trace_id: u64::decode(buf)?,
        })
    }
}

/// A server's answer to `MetricsSeries`: its sampled per-operation time
/// series plus current exemplars. Kept per-source (not merged like
/// stats) because tick sequences are process-local; renderers aggregate
/// the latest points across sources instead.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SeriesPayload {
    /// The answering server's address (`client` for the local process).
    pub source: String,
    /// Series of every operation kind that has seen traffic.
    pub series: Vec<OpSeriesPayload>,
    /// Current exemplars (one per occupied `[op][bucket]` cell).
    pub exemplars: Vec<ExemplarEntry>,
}

impl Wire for SeriesPayload {
    fn encode(&self, buf: &mut BytesMut) {
        self.source.encode(buf);
        self.series.encode(buf);
        self.exemplars.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(SeriesPayload {
            source: String::decode(buf)?,
            series: Vec::decode(buf)?,
            exemplars: Vec::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{from_bytes, to_bytes};

    fn span(trace_id: u64, span_id: u64) -> WireSpan {
        WireSpan {
            seq: span_id,
            name: "rpc.dispatch".to_string(),
            trace_id,
            span_id,
            parent_span: 0,
            remote: true,
            duration_ns: 1500,
            err: false,
            pinned: false,
        }
    }

    #[test]
    fn dump_payloads_round_trip() {
        let dump = SpanDump {
            source: "mem://meta".to_string(),
            spans: vec![span(1, 2), span(1, 3)],
            events: vec![WireEvent {
                seq: 4,
                kind: "rpc.retry".to_string(),
                op: "lookup-node".to_string(),
                addr: "mem://meta".to_string(),
                attempt: 2,
                trace_id: 1,
            }],
            dropped_spans: 10,
            dropped_events: 1,
        };
        assert_eq!(from_bytes::<SpanDump>(to_bytes(&dump)).unwrap(), dump);
        assert_eq!(
            from_bytes::<SpanDump>(to_bytes(&SpanDump::default())).unwrap(),
            SpanDump::default()
        );
    }

    #[test]
    fn series_payloads_round_trip() {
        let payload = SeriesPayload {
            source: "mem://data0".to_string(),
            series: vec![OpSeriesPayload {
                name: "block-write".to_string(),
                points: vec![
                    WireSeriesPoint {
                        seq: 1,
                        count: 10,
                        p50_ns: 1000,
                        p99_ns: 9000,
                    },
                    WireSeriesPoint {
                        seq: 2,
                        count: 0,
                        p50_ns: 1000,
                        p99_ns: 9000,
                    },
                ],
            }],
            exemplars: vec![ExemplarEntry {
                op: "block-write".to_string(),
                bucket: 11,
                trace_id: 0xDEAD,
            }],
        };
        assert_eq!(
            from_bytes::<SeriesPayload>(to_bytes(&payload)).unwrap(),
            payload
        );
    }

    #[test]
    fn merge_dedups_spans_by_trace_and_span_id() {
        let mut a = SpanDump {
            source: "mem://meta".to_string(),
            spans: vec![span(1, 2)],
            events: vec![],
            dropped_spans: 1,
            dropped_events: 0,
        };
        let b = SpanDump {
            source: "mem://data0".to_string(),
            spans: vec![span(1, 2), span(1, 5), span(9, 2)],
            events: vec![WireEvent::default()],
            dropped_spans: 2,
            dropped_events: 3,
        };
        a.merge(&b);
        assert_eq!(a.source, "mem://meta,mem://data0");
        // (1,2) deduped; (1,5) and (9,2) are distinct spans.
        assert_eq!(a.spans.len(), 3);
        assert_eq!(a.events.len(), 1);
        assert_eq!(a.dropped_spans, 3);
        assert_eq!(a.dropped_events, 3);
    }
}
