//! Core identifier and descriptor types shared by both RPC planes.

use crate::codec::{CodecError, CodecResult, Wire};
use bytes::{Bytes, BytesMut};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// The reserved "no id" sentinel.
            pub const NONE: $name = $name(0);

            /// Returns the raw id value.
            pub const fn as_u64(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }

        impl Wire for $name {
            fn encode(&self, buf: &mut BytesMut) {
                self.0.encode(buf);
            }
            fn decode(buf: &mut Bytes) -> CodecResult<Self> {
                Ok($name(u64::decode(buf)?))
            }
        }
    };
}

id_newtype!(
    /// Identifier of a node in the storage namespace.
    NodeId
);
id_newtype!(
    /// Identifier of a storage block (or action slot) on a storage server.
    BlockId
);
id_newtype!(
    /// Identifier of a registered storage server.
    ServerId
);
id_newtype!(
    /// Identifier of an open action I/O stream.
    StreamId
);

/// The node types of the NodeKernel storage semantics (paper §4.1), plus the
/// `Action` type that Glider adds (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A byte-stream file backed by a chain of blocks.
    File,
    /// A container node in the hierarchical namespace.
    Directory,
    /// A small key-addressed value with overwrite semantics (single block).
    KeyValue,
    /// A container of `KeyValue` nodes.
    Table,
    /// An unordered multi-writer append container.
    Bag,
    /// A storage action: stateful near-data computation (Glider).
    Action,
}

impl NodeKind {
    /// Whether nodes of this kind may hold children in the namespace.
    pub fn is_container(self) -> bool {
        matches!(self, NodeKind::Directory | NodeKind::Table)
    }

    /// Whether nodes of this kind carry data blocks.
    pub fn has_data(self) -> bool {
        matches!(self, NodeKind::File | NodeKind::KeyValue | NodeKind::Bag)
    }

    fn as_u8(self) -> u8 {
        match self {
            NodeKind::File => 0,
            NodeKind::Directory => 1,
            NodeKind::KeyValue => 2,
            NodeKind::Table => 3,
            NodeKind::Bag => 4,
            NodeKind::Action => 5,
        }
    }

    fn from_u8(v: u8) -> CodecResult<Self> {
        Ok(match v {
            0 => NodeKind::File,
            1 => NodeKind::Directory,
            2 => NodeKind::KeyValue,
            3 => NodeKind::Table,
            4 => NodeKind::Bag,
            5 => NodeKind::Action,
            other => return Err(CodecError(format!("invalid node kind {other}"))),
        })
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::File => "file",
            NodeKind::Directory => "directory",
            NodeKind::KeyValue => "key-value",
            NodeKind::Table => "table",
            NodeKind::Bag => "bag",
            NodeKind::Action => "action",
        };
        f.write_str(s)
    }
}

impl Wire for NodeKind {
    fn encode(&self, buf: &mut BytesMut) {
        self.as_u8().encode(buf);
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        NodeKind::from_u8(u8::decode(buf)?)
    }
}

/// A named storage class grouping storage servers (paper §4.1). Typical
/// classes: `"dram"`, `"nvme"`, `"hdd"` and Glider's dedicated `"active"`
/// class for action slots.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StorageClass(pub String);

impl StorageClass {
    /// The default DRAM-backed data class.
    pub fn dram() -> Self {
        StorageClass("dram".to_string())
    }

    /// The simulated NVMe data class.
    pub fn nvme() -> Self {
        StorageClass("nvme".to_string())
    }

    /// The simulated HDD data class.
    pub fn hdd() -> Self {
        StorageClass("hdd".to_string())
    }

    /// The dedicated active class holding action slots (Glider §4.2).
    pub fn active() -> Self {
        StorageClass("active".to_string())
    }

    /// The class name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for StorageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for StorageClass {
    fn from(s: &str) -> Self {
        StorageClass(s.to_string())
    }
}

impl Wire for StorageClass {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(StorageClass(String::decode(buf)?))
    }
}

/// Whether a registered server is a plain data server or a Glider active
/// server hosting action slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerKind {
    /// Stores data blocks (DRAM/NVMe/HDD tiers).
    Data,
    /// Hosts action slots and runs the action runtime.
    Active,
}

impl Wire for ServerKind {
    fn encode(&self, buf: &mut BytesMut) {
        let v: u8 = match self {
            ServerKind::Data => 0,
            ServerKind::Active => 1,
        };
        v.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        match u8::decode(buf)? {
            0 => Ok(ServerKind::Data),
            1 => Ok(ServerKind::Active),
            other => Err(CodecError(format!("invalid server kind {other}"))),
        }
    }
}

/// The tier a connecting peer declares in its handshake, used for transfer
/// metering (see `glider-metrics`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeerTier {
    /// A serverless worker / application client.
    Compute,
    /// Another component of the storage cluster (action, server).
    Storage,
}

impl Wire for PeerTier {
    fn encode(&self, buf: &mut BytesMut) {
        let v: u8 = match self {
            PeerTier::Compute => 0,
            PeerTier::Storage => 1,
        };
        v.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        match u8::decode(buf)? {
            0 => Ok(PeerTier::Compute),
            1 => Ok(PeerTier::Storage),
            other => Err(CodecError(format!("invalid peer tier {other}"))),
        }
    }
}

/// The direction of an action I/O stream, from the client's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamDir {
    /// Client reads; the action's `on_read` produces the data.
    Read,
    /// Client writes; the action's `on_write` consumes the data.
    Write,
}

impl Wire for StreamDir {
    fn encode(&self, buf: &mut BytesMut) {
        let v: u8 = match self {
            StreamDir::Read => 0,
            StreamDir::Write => 1,
        };
        v.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        match u8::decode(buf)? {
            0 => Ok(StreamDir::Read),
            1 => Ok(StreamDir::Write),
            other => Err(CodecError(format!("invalid stream dir {other}"))),
        }
    }
}

/// The location of one block (or action slot): which server holds it and how
/// to reach that server.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BlockLocation {
    /// The block id, unique across the deployment.
    pub block_id: BlockId,
    /// The server hosting the block.
    pub server_id: ServerId,
    /// The data-plane address of the server (`host:port` or an in-memory
    /// endpoint name for the RDMA-simulation transport).
    pub addr: String,
}

impl Wire for BlockLocation {
    fn encode(&self, buf: &mut BytesMut) {
        self.block_id.encode(buf);
        self.server_id.encode(buf);
        self.addr.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(BlockLocation {
            block_id: BlockId::decode(buf)?,
            server_id: ServerId::decode(buf)?,
            addr: String::decode(buf)?,
        })
    }
}

/// A block in a node's chain together with the number of bytes currently
/// used in it.
///
/// File nodes keep every block full except possibly the last; `Bag` nodes
/// (unordered multi-writer append) may interleave partially-filled blocks
/// from different writers, so the used length is tracked per block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BlockExtent {
    /// Where the block lives.
    pub loc: BlockLocation,
    /// Bytes of the block currently holding node data.
    pub len: u64,
}

impl Wire for BlockExtent {
    fn encode(&self, buf: &mut BytesMut) {
        self.loc.encode(buf);
        self.len.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(BlockExtent {
            loc: BlockLocation::decode(buf)?,
            len: u64::decode(buf)?,
        })
    }
}

/// A primary extent together with its backup replica locations.
///
/// Returned by block allocation when the cluster runs with a
/// replication factor above one: `extent` is the primary the client
/// streams to, `backups` are the replicas the primary chain-forwards
/// each chunk to (DESIGN.md §15). `backups` is empty at factor 1,
/// keeping the unreplicated path byte-compatible in spirit (it uses
/// the plain `Blocks` response).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReplicaExtent {
    /// The primary extent (what goes into the node's block chain).
    pub extent: BlockExtent,
    /// Backup replicas, in forwarding order.
    pub backups: Vec<BlockLocation>,
}

impl Wire for ReplicaExtent {
    fn encode(&self, buf: &mut BytesMut) {
        self.extent.encode(buf);
        self.backups.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(ReplicaExtent {
            extent: BlockExtent::decode(buf)?,
            backups: Vec::decode(buf)?,
        })
    }
}

/// Parameters for instantiating an action object into an action node
/// (paper §6.1: `create<T extends Action>(il)`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ActionSpec {
    /// Registered action type name (the paper's deployed action definition).
    pub type_name: String,
    /// Whether method interleaving is enabled (§4.2 "Actions and
    /// concurrency").
    pub interleaved: bool,
    /// Free-form configuration string passed to the action factory
    /// (the paper's "certain action configuration parameters", §3.2).
    /// Conventionally `key=value` pairs separated by `;`.
    pub params: String,
}

impl ActionSpec {
    /// Creates a spec with no parameters.
    pub fn new(type_name: impl Into<String>, interleaved: bool) -> Self {
        ActionSpec {
            type_name: type_name.into(),
            interleaved,
            params: String::new(),
        }
    }

    /// Sets the configuration string (builder style).
    #[must_use]
    pub fn with_params(mut self, params: impl Into<String>) -> Self {
        self.params = params.into();
        self
    }

    /// Looks up one `key=value` pair in the `;`-separated parameter string.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params.split(';').find_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            (k.trim() == key).then_some(v.trim())
        })
    }
}

impl Wire for ActionSpec {
    fn encode(&self, buf: &mut BytesMut) {
        self.type_name.encode(buf);
        self.interleaved.encode(buf);
        self.params.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(ActionSpec {
            type_name: String::decode(buf)?,
            interleaved: bool::decode(buf)?,
            params: String::decode(buf)?,
        })
    }
}

/// Everything a client learns about a node from a metadata lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    /// The node id.
    pub id: NodeId,
    /// The node kind.
    pub kind: NodeKind,
    /// Data size in bytes (0 for containers and actions).
    pub size: u64,
    /// Block chain (exactly one entry for `KeyValue` and `Action` nodes).
    pub blocks: Vec<BlockExtent>,
    /// Action parameters when `kind == Action`.
    pub action: Option<ActionSpec>,
}

impl NodeInfo {
    /// Convenience: the single block of a `KeyValue` or `Action` node.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GliderError`] with [`crate::ErrorCode::WrongNodeKind`]
    /// if the node has no blocks or more than one.
    pub fn single_block(&self) -> Result<&BlockExtent, crate::GliderError> {
        if self.blocks.len() == 1 {
            Ok(&self.blocks[0])
        } else {
            Err(crate::GliderError::new(
                crate::ErrorCode::WrongNodeKind,
                format!(
                    "expected exactly one block, node {} has {}",
                    self.id,
                    self.blocks.len()
                ),
            ))
        }
    }
}

impl Wire for NodeInfo {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.kind.encode(buf);
        self.size.encode(buf);
        self.blocks.encode(buf);
        self.action.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(NodeInfo {
            id: NodeId::decode(buf)?,
            kind: NodeKind::decode(buf)?,
            size: u64::decode(buf)?,
            blocks: Vec::decode(buf)?,
            action: Option::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{from_bytes, to_bytes};

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        assert_eq!(from_bytes::<T>(to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn ids_round_trip_and_display() {
        round_trip(NodeId(42));
        round_trip(BlockId(7));
        round_trip(ServerId(1));
        round_trip(StreamId(u64::MAX));
        assert_eq!(NodeId(3).to_string(), "NodeId(3)");
        assert_eq!(NodeId::NONE.as_u64(), 0);
    }

    #[test]
    fn node_kinds_round_trip() {
        for k in [
            NodeKind::File,
            NodeKind::Directory,
            NodeKind::KeyValue,
            NodeKind::Table,
            NodeKind::Bag,
            NodeKind::Action,
        ] {
            round_trip(k);
        }
    }

    #[test]
    fn node_kind_classification() {
        assert!(NodeKind::Directory.is_container());
        assert!(NodeKind::Table.is_container());
        assert!(!NodeKind::File.is_container());
        assert!(NodeKind::File.has_data());
        assert!(NodeKind::Bag.has_data());
        assert!(!NodeKind::Action.has_data());
        assert!(!NodeKind::Directory.has_data());
    }

    #[test]
    fn invalid_kind_rejected() {
        let mut b = Bytes::from(vec![99u8]);
        assert!(NodeKind::decode(&mut b).is_err());
    }

    #[test]
    fn composite_types_round_trip() {
        round_trip(StorageClass::active());
        round_trip(ServerKind::Active);
        round_trip(PeerTier::Compute);
        round_trip(StreamDir::Write);
        round_trip(BlockLocation {
            block_id: BlockId(1),
            server_id: ServerId(2),
            addr: "127.0.0.1:7777".to_string(),
        });
        round_trip(ActionSpec {
            type_name: "merge".to_string(),
            interleaved: true,
            params: String::new(),
        });
        round_trip(ReplicaExtent {
            extent: BlockExtent {
                loc: BlockLocation {
                    block_id: BlockId(4),
                    server_id: ServerId(2),
                    addr: "mem://data-0".to_string(),
                },
                len: 64,
            },
            backups: vec![BlockLocation {
                block_id: BlockId(5),
                server_id: ServerId(3),
                addr: "mem://data-1".to_string(),
            }],
        });
        round_trip(NodeInfo {
            id: NodeId(9),
            kind: NodeKind::Action,
            size: 0,
            blocks: vec![BlockExtent {
                loc: BlockLocation {
                    block_id: BlockId(1),
                    server_id: ServerId(2),
                    addr: "mem://active-0".to_string(),
                },
                len: 0,
            }],
            action: Some(ActionSpec {
                type_name: "merge".to_string(),
                interleaved: false,
                params: String::new(),
            }),
        });
    }

    #[test]
    fn single_block_accessor() {
        let extent = BlockExtent {
            loc: BlockLocation {
                block_id: BlockId(1),
                server_id: ServerId(2),
                addr: "a".to_string(),
            },
            len: 5,
        };
        let mut info = NodeInfo {
            id: NodeId(1),
            kind: NodeKind::KeyValue,
            size: 5,
            blocks: vec![extent.clone()],
            action: None,
        };
        assert_eq!(info.single_block().unwrap(), &extent);
        info.blocks.push(extent);
        assert!(info.single_block().is_err());
        info.blocks.clear();
        assert!(info.single_block().is_err());
    }

    #[test]
    fn storage_class_constructors() {
        assert_eq!(StorageClass::dram().name(), "dram");
        assert_eq!(StorageClass::active().name(), "active");
        assert_eq!(StorageClass::from("custom").name(), "custom");
    }
}
