//! Wire representation of server statistics (the `Stats` RPC).
//!
//! Servers answer [`crate::message::RequestBody::Stats`] with a
//! [`StatsPayload`]: per-operation latency histogram buckets plus named
//! gauges and counters. Histograms travel as their raw bucket counts so
//! the client can merge payloads from many servers bucket-wise and only
//! then derive percentiles.

use crate::codec::{CodecResult, Wire};
use bytes::{Bytes, BytesMut};

/// Latency of one operation kind, as raw log-histogram bucket counts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpLatency {
    /// The operation name (a `glider_metrics::OpKind` name).
    pub name: String,
    /// Bucket counts of the log-scale histogram (bucket `i` ≥ 1 counts
    /// values in `[2^(i-1), 2^i)` ns; bucket 0 counts zeros).
    pub buckets: Vec<u64>,
}

impl Wire for OpLatency {
    fn encode(&self, buf: &mut BytesMut) {
        self.name.encode(buf);
        self.buckets.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(OpLatency {
            name: String::decode(buf)?,
            buckets: Vec::decode(buf)?,
        })
    }
}

/// A named scalar (gauge or counter) in a stats payload.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NamedValue {
    /// Stable name (e.g. `queue-peak`).
    pub name: String,
    /// The value.
    pub value: u64,
}

impl Wire for NamedValue {
    fn encode(&self, buf: &mut BytesMut) {
        self.name.encode(buf);
        self.value.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(NamedValue {
            name: String::decode(buf)?,
            value: u64::decode(buf)?,
        })
    }
}

/// A server's observability snapshot, merged client-side across servers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsPayload {
    /// Per-operation latency histograms.
    pub ops: Vec<OpLatency>,
    /// Point-in-time gauges (current/peak values; merged by max would be
    /// more precise, but sums keep partition totals comparable).
    pub gauges: Vec<NamedValue>,
    /// Monotonic counters (merged by sum).
    pub counters: Vec<NamedValue>,
}

impl StatsPayload {
    /// Merges `other` into `self`: histograms add bucket-wise by op
    /// name, gauges and counters add by name; unknown names append.
    pub fn merge(&mut self, other: &StatsPayload) {
        for op in &other.ops {
            match self.ops.iter_mut().find(|o| o.name == op.name) {
                Some(mine) => {
                    if mine.buckets.len() < op.buckets.len() {
                        mine.buckets.resize(op.buckets.len(), 0);
                    }
                    for (a, b) in mine.buckets.iter_mut().zip(op.buckets.iter()) {
                        *a = a.saturating_add(*b);
                    }
                }
                None => self.ops.push(op.clone()),
            }
        }
        for (mine, theirs) in [
            (&mut self.gauges, &other.gauges),
            (&mut self.counters, &other.counters),
        ] {
            for value in theirs {
                match mine.iter_mut().find(|v| v.name == value.name) {
                    Some(v) => v.value = v.value.saturating_add(value.value),
                    None => mine.push(value.clone()),
                }
            }
        }
    }
}

impl Wire for StatsPayload {
    fn encode(&self, buf: &mut BytesMut) {
        self.ops.encode(buf);
        self.gauges.encode(buf);
        self.counters.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(StatsPayload {
            ops: Vec::decode(buf)?,
            gauges: Vec::decode(buf)?,
            counters: Vec::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{from_bytes, to_bytes};

    fn sample() -> StatsPayload {
        StatsPayload {
            ops: vec![
                OpLatency {
                    name: "block-write".to_string(),
                    buckets: vec![0, 1, 2, 3],
                },
                OpLatency {
                    name: "block-read".to_string(),
                    buckets: vec![5; 64],
                },
            ],
            gauges: vec![NamedValue {
                name: "queue-peak".to_string(),
                value: 7,
            }],
            counters: vec![NamedValue {
                name: "metadata-rpcs".to_string(),
                value: 123,
            }],
        }
    }

    #[test]
    fn stats_payload_round_trips() {
        let payload = sample();
        let decoded: StatsPayload = from_bytes(to_bytes(&payload)).unwrap();
        assert_eq!(decoded, payload);
        let empty: StatsPayload = from_bytes(to_bytes(&StatsPayload::default())).unwrap();
        assert_eq!(empty, StatsPayload::default());
    }

    #[test]
    fn merge_adds_matching_and_appends_new() {
        let mut a = sample();
        let b = StatsPayload {
            ops: vec![
                OpLatency {
                    name: "block-write".to_string(),
                    buckets: vec![1, 1],
                },
                OpLatency {
                    name: "queue-wait".to_string(),
                    buckets: vec![9],
                },
            ],
            gauges: vec![NamedValue {
                name: "queue-peak".to_string(),
                value: 3,
            }],
            counters: vec![NamedValue {
                name: "storage-accesses".to_string(),
                value: 2,
            }],
        };
        a.merge(&b);
        let write = a.ops.iter().find(|o| o.name == "block-write").unwrap();
        assert_eq!(write.buckets, vec![1, 2, 2, 3]);
        assert!(a.ops.iter().any(|o| o.name == "queue-wait"));
        assert_eq!(a.gauges[0].value, 10);
        assert_eq!(a.counters.len(), 2);
    }

    #[test]
    fn merge_grows_shorter_bucket_vectors() {
        let mut a = StatsPayload {
            ops: vec![OpLatency {
                name: "x".to_string(),
                buckets: vec![1],
            }],
            ..Default::default()
        };
        a.merge(&StatsPayload {
            ops: vec![OpLatency {
                name: "x".to_string(),
                buckets: vec![1, 2, 3],
            }],
            ..Default::default()
        });
        assert_eq!(a.ops[0].buckets, vec![2, 2, 3]);
    }
}
