//! Length-prefixed record batching for action streams.
//!
//! Action pipelines move many small records (CSV lines, key/value pairs,
//! fixed-size sort records); pushing each one as its own `StreamChunk`
//! RPC costs a full frame, a sequence number, and a pooled buffer per
//! record. The `StreamChunkBatch` request instead packs many records into
//! one bulk payload with a tiny per-record header:
//!
//! ```text
//! [u32 len LE][len bytes] [u32 len LE][len bytes] ...
//! ```
//!
//! [`RecordBatchBuilder`] packs records into a (possibly pooled) buffer on
//! the sending side; [`RecordBatchIter`] walks a complete batch payload on
//! the receiving side, yielding each record as a zero-copy slice of the
//! batch `Bytes`; [`RecordDeframer`] reassembles records from arbitrarily
//! fragmented byte streams (an action reading its input as records rather
//! than raw chunks), slicing zero-copy whenever a record lies inside one
//! fragment and copying only records that straddle fragment boundaries.

use crate::codec::{CodecError, CodecResult};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::VecDeque;

/// Bytes of per-record framing overhead (the `u32` length prefix).
pub const RECORD_HEADER_LEN: usize = 4;

/// Packs length-prefixed records into one contiguous batch payload.
#[derive(Debug, Default)]
pub struct RecordBatchBuilder {
    buf: BytesMut,
    count: u32,
}

impl RecordBatchBuilder {
    /// Creates an empty builder with a fresh buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder packing into `buf` (typically a buffer
    /// leased from a `BytesPool`, so steady-state batching allocates
    /// nothing).
    pub fn with_buffer(mut buf: BytesMut) -> Self {
        buf.clear();
        Self { buf, count: 0 }
    }

    /// Appends one record to the batch.
    pub fn push(&mut self, record: &[u8]) {
        self.buf.put_u32_le(record.len() as u32);
        self.buf.put_slice(record);
        self.count += 1;
    }

    /// Number of records packed so far.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Packed payload size in bytes, including per-record headers.
    pub fn payload_len(&self) -> usize {
        self.buf.len()
    }

    /// True when no record has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Finishes the batch, returning the record count and the packed
    /// payload ready for a `StreamChunkBatch` request.
    pub fn finish(self) -> (u32, Bytes) {
        (self.count, self.buf.freeze())
    }
}

/// Iterates the records of one complete batch payload.
///
/// Each yielded record is a zero-copy slice of the batch `Bytes` (shared
/// refcount, no memcpy), so the receive buffer a batch was decoded from
/// backs the records all the way into the consuming action.
#[derive(Debug, Clone)]
pub struct RecordBatchIter {
    data: Bytes,
}

impl RecordBatchIter {
    /// Creates an iterator over the packed records in `data`.
    pub fn new(data: Bytes) -> Self {
        Self { data }
    }

    /// Remaining unparsed payload bytes.
    pub fn remaining(&self) -> usize {
        self.data.len()
    }
}

impl Iterator for RecordBatchIter {
    type Item = CodecResult<Bytes>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.data.is_empty() {
            return None;
        }
        if self.data.len() < RECORD_HEADER_LEN {
            self.data = Bytes::new();
            return Some(Err(CodecError("truncated record header in batch".into())));
        }
        let len = u32::from_le_bytes(self.data[..RECORD_HEADER_LEN].try_into().unwrap()) as usize;
        if self.data.len() < RECORD_HEADER_LEN + len {
            let remain = self.data.len() - RECORD_HEADER_LEN;
            self.data = Bytes::new();
            return Some(Err(CodecError(format!(
                "truncated record in batch: header says {len} bytes, {remain} remain"
            ))));
        }
        self.data.advance(RECORD_HEADER_LEN);
        Some(Ok(self.data.split_to(len)))
    }
}

/// Splits a complete batch payload into its records.
///
/// Convenience wrapper over [`RecordBatchIter`] that also checks the
/// payload holds exactly `count` records.
///
/// # Errors
///
/// Returns a [`CodecError`] when a record header or body is truncated or
/// when the payload holds a different number of records than `count`
/// claims.
pub fn unpack_records(count: u32, data: Bytes) -> CodecResult<Vec<Bytes>> {
    let records = RecordBatchIter::new(data).collect::<CodecResult<Vec<_>>>()?;
    if records.len() != count as usize {
        return Err(CodecError(format!(
            "batch count mismatch: header says {count}, payload holds {}",
            records.len()
        )));
    }
    Ok(records)
}

/// Reassembles length-prefixed records from a fragmented byte stream.
///
/// Fragments are pushed in arrival order; [`RecordDeframer::next_record`]
/// yields each complete record as soon as its bytes are buffered. A record
/// fully contained in one fragment comes back as a zero-copy slice of that
/// fragment; only records straddling a fragment boundary are stitched
/// together with a copy.
#[derive(Debug, Default)]
pub struct RecordDeframer {
    frags: VecDeque<Bytes>,
    buffered: usize,
}

impl RecordDeframer {
    /// Creates an empty deframer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds the next stream fragment to the deframer.
    pub fn push(&mut self, fragment: Bytes) {
        if fragment.is_empty() {
            return;
        }
        self.buffered += fragment.len();
        self.frags.push_back(fragment);
    }

    /// Total bytes buffered but not yet yielded.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Pops the next complete record, or `None` when more fragments are
    /// needed. Call repeatedly after each [`RecordDeframer::push`]: one
    /// fragment can complete several records.
    pub fn next_record(&mut self) -> Option<Bytes> {
        if self.buffered < RECORD_HEADER_LEN {
            return None;
        }
        let len = self.peek_len();
        if self.buffered < RECORD_HEADER_LEN + len {
            return None;
        }
        self.skip(RECORD_HEADER_LEN);
        Some(self.take(len))
    }

    /// True when every buffered byte has been consumed — a cleanly ended
    /// stream must leave the deframer empty, anything else is a torn
    /// trailing record.
    pub fn is_empty(&self) -> bool {
        self.buffered == 0
    }

    fn peek_len(&self) -> usize {
        let mut hdr = [0u8; RECORD_HEADER_LEN];
        let mut filled = 0;
        for frag in &self.frags {
            let take = (RECORD_HEADER_LEN - filled).min(frag.len());
            hdr[filled..filled + take].copy_from_slice(&frag[..take]);
            filled += take;
            if filled == RECORD_HEADER_LEN {
                break;
            }
        }
        u32::from_le_bytes(hdr) as usize
    }

    fn skip(&mut self, mut n: usize) {
        self.buffered -= n;
        while n > 0 {
            let head = self.frags.front_mut().expect("skip past buffered bytes");
            if head.len() > n {
                head.advance(n);
                return;
            }
            n -= head.len();
            self.frags.pop_front();
        }
    }

    fn take(&mut self, n: usize) -> Bytes {
        if n == 0 {
            return Bytes::new();
        }
        self.buffered -= n;
        let head = self.frags.front_mut().expect("take past buffered bytes");
        if head.len() >= n {
            // Fast path: the record lies inside one fragment — slice it
            // zero-copy.
            let record = head.split_to(n);
            if head.is_empty() {
                self.frags.pop_front();
            }
            return record;
        }
        // Slow path: the record straddles fragments; stitch with one copy.
        let mut out = BytesMut::with_capacity(n);
        let mut left = n;
        while left > 0 {
            let head = self.frags.front_mut().expect("take past buffered bytes");
            if head.len() > left {
                out.put_slice(&head.split_to(left));
                left = 0;
            } else {
                left -= head.len();
                out.put_slice(head);
                self.frags.pop_front();
            }
        }
        out.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pack(records: &[&[u8]]) -> (u32, Bytes) {
        let mut b = RecordBatchBuilder::new();
        for r in records {
            b.push(r);
        }
        b.finish()
    }

    #[test]
    fn builder_packs_length_prefixed_records() {
        let (count, data) = pack(&[b"hi", b"!", b""]);
        assert_eq!(count, 3);
        assert_eq!(
            &data[..],
            b"\x02\x00\x00\x00hi\x01\x00\x00\x00!\x00\x00\x00\x00"
        );
    }

    #[test]
    fn iter_round_trips_and_is_zero_copy() {
        let (count, data) = pack(&[b"hello", b"", b"world"]);
        let records = unpack_records(count, data.clone()).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(&records[0][..], b"hello");
        assert!(records[1].is_empty());
        assert_eq!(&records[2][..], b"world");
        // Zero-copy: the record slices alias the batch allocation.
        let base = data.as_ptr() as usize;
        let rec = records[2].as_ptr() as usize;
        assert!(rec > base && rec < base + data.len());
    }

    #[test]
    fn iter_rejects_truncated_batches() {
        let (_, data) = pack(&[b"hello"]);
        // Truncated body.
        let torn = data.slice(..data.len() - 1);
        assert!(RecordBatchIter::new(torn).any(|r| r.is_err()));
        // Truncated header.
        let torn = data.slice(..2);
        assert!(RecordBatchIter::new(torn).any(|r| r.is_err()));
        // Count mismatch.
        assert!(unpack_records(2, data).is_err());
    }

    #[test]
    fn builder_reuses_a_leased_buffer() {
        let mut lease = BytesMut::with_capacity(64);
        lease.put_slice(b"stale");
        let mut b = RecordBatchBuilder::with_buffer(lease);
        assert!(b.is_empty());
        b.push(b"x");
        let (count, data) = b.finish();
        assert_eq!(count, 1);
        assert_eq!(&data[..], b"\x01\x00\x00\x00x");
    }

    #[test]
    fn deframer_handles_split_headers_and_bodies() {
        let (_, data) = pack(&[b"hello", b"world!"]);
        let mut d = RecordDeframer::new();
        // Feed one byte at a time: every header and body is split.
        for i in 0..data.len() {
            d.push(data.slice(i..i + 1));
        }
        assert_eq!(&d.next_record().unwrap()[..], b"hello");
        assert_eq!(&d.next_record().unwrap()[..], b"world!");
        assert!(d.next_record().is_none());
        assert!(d.is_empty());
    }

    #[test]
    fn deframer_fast_path_slices_zero_copy() {
        let (_, data) = pack(&[b"abcdef"]);
        let mut d = RecordDeframer::new();
        d.push(data.clone());
        let rec = d.next_record().unwrap();
        assert_eq!(&rec[..], b"abcdef");
        let base = data.as_ptr() as usize;
        assert_eq!(rec.as_ptr() as usize, base + RECORD_HEADER_LEN);
    }

    proptest! {
        /// Any records, packed then refragmented at arbitrary boundaries,
        /// deframe back to exactly the original records.
        #[test]
        fn deframer_survives_arbitrary_fragmentation(
            records in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..64),
                0..16,
            ),
            cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..8),
        ) {
            let mut b = RecordBatchBuilder::new();
            for r in &records {
                b.push(r);
            }
            let (_, data) = b.finish();
            let mut offsets: Vec<usize> =
                cuts.iter().map(|i| i.index(data.len() + 1)).collect();
            offsets.push(0);
            offsets.push(data.len());
            offsets.sort_unstable();
            let mut d = RecordDeframer::new();
            let mut out = Vec::new();
            for pair in offsets.windows(2) {
                d.push(data.slice(pair[0]..pair[1]));
                while let Some(rec) = d.next_record() {
                    out.push(rec.to_vec());
                }
            }
            prop_assert_eq!(out, records);
            prop_assert!(d.is_empty());
        }

        /// Batches round-trip through the complete-payload iterator.
        #[test]
        fn iter_round_trips_any_batch(
            records in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..64),
                0..16,
            ),
        ) {
            let mut b = RecordBatchBuilder::new();
            for r in &records {
                b.push(r);
            }
            let (count, data) = b.finish();
            prop_assert_eq!(count as usize, records.len());
            let back = unpack_records(count, data).unwrap();
            let back: Vec<Vec<u8>> = back.iter().map(|r| r.to_vec()).collect();
            prop_assert_eq!(back, records);
        }
    }
}
