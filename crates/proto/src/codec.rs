//! A compact hand-rolled binary codec.
//!
//! All integers are little-endian. Strings are UTF-8 with a `u32` length
//! prefix; byte blobs are `u32`-length-prefixed; sequences are
//! `u32`-count-prefixed; options are a one-byte tag. The codec is
//! deliberately simple — the protocol messages are small and fixed-shape,
//! and bulk data rides as a single `Bytes` blob.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Error produced when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for crate::GliderError {
    fn from(e: CodecError) -> Self {
        crate::GliderError::protocol(e.0)
    }
}

/// Result alias for decode operations.
pub type CodecResult<T> = Result<T, CodecError>;

/// Types that can be encoded to and decoded from the Glider wire format.
///
/// # Examples
///
/// ```
/// use glider_proto::codec::Wire;
/// use bytes::BytesMut;
///
/// let mut buf = BytesMut::new();
/// 42u64.encode(&mut buf);
/// "hi".to_string().encode(&mut buf);
/// let mut rd = buf.freeze();
/// assert_eq!(u64::decode(&mut rd).unwrap(), 42);
/// assert_eq!(String::decode(&mut rd).unwrap(), "hi");
/// ```
pub trait Wire: Sized {
    /// Appends the wire representation of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Consumes the wire representation from `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if `buf` is truncated or malformed.
    fn decode(buf: &mut Bytes) -> CodecResult<Self>;
}

fn need(buf: &Bytes, n: usize, what: &str) -> CodecResult<()> {
    if buf.remaining() < n {
        Err(CodecError(format!(
            "truncated input: need {n} bytes for {what}, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

impl Wire for u8 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self);
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        need(buf, 1, "u8")?;
        Ok(buf.get_u8())
    }
}

impl Wire for u16 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16_le(*self);
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        need(buf, 2, "u16")?;
        Ok(buf.get_u16_le())
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(*self);
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        need(buf, 4, "u32")?;
        Ok(buf.get_u32_le())
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        need(buf, 8, "u64")?;
        Ok(buf.get_u64_le())
    }
}

impl Wire for i64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_i64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        need(buf, 8, "i64")?;
        Ok(buf.get_i64_le())
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        need(buf, 1, "bool")?;
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError(format!("invalid bool tag {other}"))),
        }
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        let len = u32::decode(buf)? as usize;
        need(buf, len, "string body")?;
        let bytes = buf.split_to(len);
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CodecError(format!("invalid utf-8 string: {e}")))
    }
}

impl Wire for Bytes {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self);
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        let len = u32::decode(buf)? as usize;
        need(buf, len, "bytes body")?;
        Ok(buf.split_to(len))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        let len = u32::decode(buf)? as usize;
        // Sanity cap: one element needs at least one byte on the wire.
        if len > buf.remaining() {
            return Err(CodecError(format!(
                "sequence length {len} exceeds remaining {} bytes",
                buf.remaining()
            )));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        need(buf, 1, "option tag")?;
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            other => Err(CodecError(format!("invalid option tag {other}"))),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        let a = A::decode(buf)?;
        let b = B::decode(buf)?;
        Ok((a, b))
    }
}

/// Encodes a value into a fresh buffer (convenience for tests).
pub fn to_bytes<T: Wire>(value: &T) -> Bytes {
    let mut buf = BytesMut::new();
    value.encode(&mut buf);
    buf.freeze()
}

/// Decodes a value from a buffer, requiring all bytes to be consumed.
///
/// # Errors
///
/// Returns [`CodecError`] on malformed input or trailing bytes.
pub fn from_bytes<T: Wire>(mut bytes: Bytes) -> CodecResult<T> {
    let v = T::decode(&mut bytes)?;
    if bytes.has_remaining() {
        return Err(CodecError(format!(
            "{} trailing bytes after decode",
            bytes.remaining()
        )));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let enc = to_bytes(&v);
        let dec: T = from_bytes(enc).unwrap();
        assert_eq!(dec, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(u16::MAX);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(i64::MIN);
        round_trip(true);
        round_trip(false);
    }

    #[test]
    fn strings_and_bytes_round_trip() {
        round_trip(String::new());
        round_trip("héllo wörld /path/to/node".to_string());
        round_trip(Bytes::new());
        round_trip(Bytes::from(vec![0u8, 1, 2, 255]));
    }

    #[test]
    fn containers_round_trip() {
        round_trip(Vec::<u64>::new());
        round_trip(vec![1u64, 2, 3]);
        round_trip(vec!["a".to_string(), "b".to_string()]);
        round_trip(Option::<u32>::None);
        round_trip(Some(77u32));
        round_trip(vec![Some(1u8), None, Some(3)]);
    }

    #[test]
    fn pairs_round_trip() {
        round_trip((7u64, 42u32));
        round_trip(("key".to_string(), 9u64));
        round_trip(Vec::<(u64, u64)>::new());
        round_trip(vec![(1u64, 10u64), (2, 20), (3, 30)]);
        round_trip(Some((true, Bytes::from_static(b"v"))));
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut buf = BytesMut::new();
        "hello".to_string().encode(&mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut part = full.slice(..cut);
            assert!(String::decode(&mut part).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bogus_sequence_length_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        let mut b = buf.freeze();
        assert!(Vec::<u64>::decode(&mut b).is_err());
    }

    #[test]
    fn invalid_tags_are_rejected() {
        let mut b = Bytes::from(vec![2u8]);
        assert!(bool::decode(&mut b).is_err());
        let mut b = Bytes::from(vec![7u8]);
        assert!(Option::<u8>::decode(&mut b).is_err());
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(2);
        buf.put_slice(&[0xff, 0xfe]);
        let mut b = buf.freeze();
        assert!(String::decode(&mut b).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = BytesMut::new();
        1u8.encode(&mut buf);
        2u8.encode(&mut buf);
        assert!(from_bytes::<u8>(buf.freeze()).is_err());
    }
}
