//! Golden wire-format snapshot tests.
//!
//! One committed byte-level fixture (`tests/golden/*.hex`) per
//! `Request`/`Response` variant, covering the full frame: length prefix,
//! kind byte, header, and out-of-band payload where the variant carries
//! one. Each test checks both directions — today's encoder must produce
//! exactly the committed bytes, and the committed bytes must decode back
//! to the same value — so any codec change that breaks compatibility
//! with already-deployed peers fails loudly here.
//!
//! If a change is *intentionally* incompatible, regenerate the fixture
//! and say so in the commit; never edit a fixture to paper over an
//! accidental drift.

use bytes::{Bytes, BytesMut};
use glider_proto::dump::{
    ExemplarEntry, OpSeriesPayload, SeriesPayload, SpanDump, WireEvent, WireSeriesPoint, WireSpan,
};
use glider_proto::frame::{
    decode_frame, decode_frame_tagged, encode_frame, encode_frame_tagged, Frame,
};
use glider_proto::message::{Request, RequestBody, Response, ResponseBody};
use glider_proto::stats::{NamedValue, OpLatency, StatsPayload};
use glider_proto::types::{
    ActionSpec, BlockExtent, BlockId, BlockLocation, NodeId, NodeInfo, NodeKind, PeerTier,
    ReplicaExtent, ServerId, ServerKind, StorageClass, StreamDir, StreamId,
};

fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn from_hex(hex: &str) -> Vec<u8> {
    assert!(hex.len() % 2 == 0, "odd-length fixture hex");
    (0..hex.len() / 2)
        .map(|i| u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).expect("invalid fixture hex"))
        .collect()
}

/// Asserts the frame encodes to exactly the committed fixture bytes and
/// that the fixture bytes decode back to the same frame.
fn check(fixture: &str, frame: Frame) {
    let expected = fixture.trim();
    let mut buf = BytesMut::new();
    encode_frame(&frame, &mut buf);
    assert_eq!(
        to_hex(&buf),
        expected,
        "encoding no longer matches the committed fixture (wire-format break)"
    );
    let mut wire = BytesMut::from(&from_hex(expected)[..]);
    let decoded = decode_frame(&mut wire)
        .expect("committed fixture must decode")
        .expect("committed fixture must hold a complete frame");
    assert_eq!(decoded, frame, "fixture decodes to a different value");
    assert!(wire.is_empty(), "fixture holds trailing bytes");
}

/// Asserts the frame, tagged with `stream`, encodes to exactly the
/// committed fixture bytes and that the fixture decodes back to the same
/// `(stream, frame)` pair. Covers the v2 kind-2/3/4 encodings; the
/// untagged fixtures above stay byte-identical (stream 0 keeps the v1
/// kinds) and double as back-compat decode tests for v1 peers.
fn check_tagged(fixture: &str, stream: u32, frame: Frame) {
    let expected = fixture.trim();
    let mut buf = BytesMut::new();
    encode_frame_tagged(&frame, stream, &mut buf);
    assert_eq!(
        to_hex(&buf),
        expected,
        "tagged encoding no longer matches the committed fixture (wire-format break)"
    );
    let mut wire = BytesMut::from(&from_hex(expected)[..]);
    let (got_stream, decoded) = decode_frame_tagged(&mut wire)
        .expect("committed fixture must decode")
        .expect("committed fixture must hold a complete frame");
    assert_eq!(got_stream, stream, "fixture decodes to a different stream");
    assert_eq!(decoded, frame, "fixture decodes to a different value");
    assert!(wire.is_empty(), "fixture holds trailing bytes");
}

fn req(body: RequestBody) -> Frame {
    Frame::Request(Request {
        id: 1,
        trace_id: 2,
        body,
    })
}

fn resp(body: ResponseBody) -> Frame {
    Frame::Response(Response { id: 1, body })
}

fn extent() -> BlockExtent {
    BlockExtent {
        loc: BlockLocation {
            block_id: BlockId(4),
            server_id: ServerId(2),
            addr: "a".to_string(),
        },
        len: 5,
    }
}

macro_rules! golden {
    ($name:ident, $frame:expr) => {
        #[test]
        fn $name() {
            check(
                include_str!(concat!("golden/", stringify!($name), ".hex")),
                $frame,
            );
        }
    };
}

// ---- requests ----

golden!(
    req_hello,
    req(RequestBody::Hello {
        tier: PeerTier::Compute,
    })
);
golden!(
    req_create_node,
    req(RequestBody::CreateNode {
        path: "/a".to_string(),
        kind: NodeKind::File,
        storage_class: Some(StorageClass::dram()),
        action: None,
    })
);
golden!(
    req_lookup_node,
    req(RequestBody::LookupNode {
        path: "/a".to_string(),
    })
);
golden!(
    req_delete_node,
    req(RequestBody::DeleteNode {
        path: "/a".to_string(),
    })
);
golden!(
    req_list_children,
    req(RequestBody::ListChildren {
        path: "/".to_string(),
    })
);
golden!(
    req_add_block,
    req(RequestBody::AddBlock { node_id: NodeId(3) })
);
golden!(
    req_commit_block,
    req(RequestBody::CommitBlock {
        node_id: NodeId(3),
        block_id: BlockId(4),
        len: 5,
    })
);
golden!(
    req_register_server,
    req(RequestBody::RegisterServer {
        kind: ServerKind::Data,
        storage_class: StorageClass::dram(),
        addr: "a".to_string(),
        capacity_blocks: 7,
    })
);
golden!(req_stats, req(RequestBody::Stats));
golden!(
    req_add_blocks,
    req(RequestBody::AddBlocks {
        node_id: NodeId(3),
        count: 2,
    })
);
golden!(
    req_commit_blocks,
    req(RequestBody::CommitBlocks {
        node_id: NodeId(3),
        commits: vec![(BlockId(4), 5), (BlockId(6), 7)],
    })
);
golden!(
    req_heartbeat,
    req(RequestBody::Heartbeat {
        server_id: ServerId(9),
    })
);
golden!(
    req_replace_block,
    req(RequestBody::ReplaceBlock {
        node_id: NodeId(3),
        block_id: BlockId(4),
    })
);
golden!(
    req_write_block,
    req(RequestBody::WriteBlock {
        block_id: BlockId(4),
        offset: 1,
        data: Bytes::from_static(b"hi"),
    })
);
golden!(
    req_read_block,
    req(RequestBody::ReadBlock {
        block_id: BlockId(4),
        offset: 1,
        len: 2,
    })
);
golden!(
    req_free_blocks,
    req(RequestBody::FreeBlocks {
        block_ids: vec![BlockId(4), BlockId(6)],
    })
);
golden!(
    req_action_create,
    req(RequestBody::ActionCreate {
        node_id: NodeId(3),
        block_id: BlockId(4),
        spec: ActionSpec {
            type_name: "merge".to_string(),
            interleaved: true,
            params: "k=v".to_string(),
        },
    })
);
golden!(
    req_action_delete,
    req(RequestBody::ActionDelete { node_id: NodeId(3) })
);
golden!(
    req_stream_open,
    req(RequestBody::StreamOpen {
        node_id: NodeId(3),
        dir: StreamDir::Write,
    })
);
golden!(
    req_stream_chunk,
    req(RequestBody::StreamChunk {
        stream_id: StreamId(8),
        seq: 1,
        data: Bytes::from_static(b"hi"),
    })
);
golden!(
    req_stream_chunk_batch,
    req(RequestBody::StreamChunkBatch {
        stream_id: StreamId(8),
        seq: 1,
        count: 2,
        data: Bytes::from_static(b"\x02\x00\x00\x00hi\x01\x00\x00\x00!"),
    })
);
golden!(
    req_stream_fetch,
    req(RequestBody::StreamFetch {
        stream_id: StreamId(8),
        max_len: 16,
    })
);
golden!(
    req_stream_close,
    req(RequestBody::StreamClose {
        stream_id: StreamId(8),
    })
);
golden!(
    req_dump_spans,
    req(RequestBody::DumpSpans {
        trace_id: 7,
        since_seq: 9,
    })
);
golden!(req_metrics_series, req(RequestBody::MetricsSeries));
golden!(
    req_forward_chunk,
    req(RequestBody::ForwardChunk {
        offset: 1,
        chain: vec![
            BlockLocation {
                block_id: BlockId(4),
                server_id: ServerId(2),
                addr: "a".to_string(),
            },
            BlockLocation {
                block_id: BlockId(6),
                server_id: ServerId(3),
                addr: "b".to_string(),
            },
        ],
        data: Bytes::from_static(b"hi"),
    })
);
golden!(
    req_replicate_block,
    req(RequestBody::ReplicateBlock {
        src_block: BlockId(4),
        dst: BlockLocation {
            block_id: BlockId(6),
            server_id: ServerId(3),
            addr: "b".to_string(),
        },
        len: 5,
    })
);
golden!(
    req_node_replicas,
    req(RequestBody::NodeReplicas { node_id: NodeId(3) })
);
golden!(
    req_repair_node,
    req(RequestBody::RepairNode { node_id: NodeId(3) })
);

// ---- responses ----

golden!(resp_ok, resp(ResponseBody::Ok));
golden!(
    resp_node,
    resp(ResponseBody::Node(NodeInfo {
        id: NodeId(3),
        kind: NodeKind::File,
        size: 5,
        blocks: vec![extent()],
        action: None,
    }))
);
golden!(
    resp_deleted,
    resp(ResponseBody::Deleted {
        info: NodeInfo {
            id: NodeId(3),
            kind: NodeKind::Directory,
            size: 0,
            blocks: vec![],
            action: None,
        },
        extents: vec![extent()],
        actions: vec![],
    })
);
golden!(
    resp_children,
    resp(ResponseBody::Children(vec![
        "a".to_string(),
        "b".to_string(),
    ]))
);
golden!(resp_block, resp(ResponseBody::Block(extent())));
golden!(
    resp_registered,
    resp(ResponseBody::Registered {
        server_id: ServerId(2),
        first_block_id: BlockId(4),
    })
);
golden!(
    resp_stream_opened,
    resp(ResponseBody::StreamOpened {
        stream_id: StreamId(8),
    })
);
golden!(
    resp_data,
    resp(ResponseBody::Data {
        seq: 1,
        bytes: Bytes::from_static(b"hi"),
        eof: true,
    })
);
golden!(resp_written, resp(ResponseBody::Written { n: 2 }));
golden!(
    resp_error,
    resp(ResponseBody::Error {
        code: 1,
        message: "x".to_string(),
    })
);
golden!(
    resp_stats,
    resp(ResponseBody::Stats(StatsPayload {
        ops: vec![OpLatency {
            name: "op".to_string(),
            buckets: vec![1, 2],
        }],
        gauges: vec![NamedValue {
            name: "g".to_string(),
            value: 3,
        }],
        counters: vec![],
    }))
);
golden!(
    resp_blocks,
    resp(ResponseBody::Blocks(vec![extent(), extent()]))
);
golden!(
    resp_replicated_blocks,
    resp(ResponseBody::ReplicatedBlocks(vec![ReplicaExtent {
        extent: extent(),
        backups: vec![BlockLocation {
            block_id: BlockId(6),
            server_id: ServerId(3),
            addr: "b".to_string(),
        }],
    }]))
);
golden!(
    resp_spans,
    resp(ResponseBody::Spans(SpanDump {
        source: "mem://m".to_string(),
        spans: vec![WireSpan {
            seq: 1,
            name: "rpc.dispatch".to_string(),
            trace_id: 7,
            span_id: 8,
            parent_span: 0,
            remote: true,
            duration_ns: 1500,
            err: false,
            pinned: true,
        }],
        events: vec![WireEvent {
            seq: 2,
            kind: "rpc.retry".to_string(),
            op: "lookup-node".to_string(),
            addr: "mem://m".to_string(),
            attempt: 1,
            trace_id: 7,
        }],
        dropped_spans: 3,
        dropped_events: 4,
    }))
);
golden!(
    resp_series,
    resp(ResponseBody::Series(SeriesPayload {
        source: "mem://m".to_string(),
        series: vec![OpSeriesPayload {
            name: "op".to_string(),
            points: vec![WireSeriesPoint {
                seq: 1,
                count: 2,
                p50_ns: 3,
                p99_ns: 4,
            }],
        }],
        exemplars: vec![ExemplarEntry {
            op: "op".to_string(),
            bucket: 5,
            trace_id: 7,
        }],
    }))
);

// ---- v2 stream-tagged frames ----

macro_rules! golden_tagged {
    ($name:ident, $stream:expr, $frame:expr) => {
        #[test]
        fn $name() {
            check_tagged(
                include_str!(concat!("golden/", stringify!($name), ".hex")),
                $stream,
                $frame,
            );
        }
    };
}

golden_tagged!(
    v2_req_write_block_stream7,
    7,
    req(RequestBody::WriteBlock {
        block_id: BlockId(4),
        offset: 1,
        data: Bytes::from_static(b"hi"),
    })
);
golden_tagged!(
    v2_resp_data_stream9,
    9,
    resp(ResponseBody::Data {
        seq: 1,
        bytes: Bytes::from_static(b"hi"),
        eof: true,
    })
);
golden_tagged!(
    v2_credit_stream3,
    3,
    Frame::Credit {
        stream_id: 3,
        credits: 16,
    }
);
