//! Dependency-free fuzz smoke for the record batching layer.
//!
//! A deterministic LCG drives a few thousand adversarial inputs through
//! [`RecordBatchIter`]/[`unpack_records`] and [`RecordDeframer`]:
//! truncated headers and bodies, counts that disagree with the payload,
//! zero-count batches with leftover bytes, random garbage, and valid
//! batches refragmented at hostile boundaries. The contract under test
//! is *error, not panic*: malformed wire input must surface as a
//! `CodecError` (or as bytes parked in the deframer) and never as a
//! panic, wraparound, or runaway allocation. Seeds are fixed, so a
//! failure reproduces exactly.

use bytes::Bytes;
use glider_proto::batch::{
    unpack_records, RecordBatchBuilder, RecordBatchIter, RecordDeframer, RECORD_HEADER_LEN,
};

/// Minimal xorshift-free LCG (Numerical Recipes constants): good enough
/// to spray structured garbage, with no dependency and no global state.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform-ish value in `0..bound` (`bound` > 0).
    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u64() as u8).collect()
    }
}

fn build_batch(rng: &mut Lcg, max_records: usize, max_len: usize) -> (u32, Bytes) {
    let mut b = RecordBatchBuilder::new();
    for _ in 0..rng.below(max_records + 1) {
        let record = rng.bytes(rng.below(max_len + 1));
        b.push(&record);
    }
    b.finish()
}

/// Drains an iterator, counting records until the first error; returns
/// `(records, saw_error)`. Panics in here are the failure under test.
fn drain(data: Bytes) -> (usize, bool) {
    let mut n = 0;
    for r in RecordBatchIter::new(data) {
        match r {
            Ok(_) => n += 1,
            Err(_) => return (n, true),
        }
    }
    (n, false)
}

#[test]
fn truncated_batches_error_instead_of_panicking() {
    let mut rng = Lcg(0x5eed_0001);
    for _ in 0..2000 {
        let (count, data) = build_batch(&mut rng, 8, 32);
        if data.is_empty() {
            continue;
        }
        // Cut the payload anywhere strictly inside; unless the cut lands
        // exactly on a record boundary, iteration must end in an error —
        // and a boundary cut must then fail the count check instead.
        let cut = rng.below(data.len());
        let torn = data.slice(..cut);
        let (records, saw_error) = drain(torn.clone());
        assert!(records as u32 <= count);
        if !saw_error {
            assert!(
                unpack_records(count, torn).is_err(),
                "a clean-boundary truncation must fail the count check"
            );
        }
    }
}

#[test]
fn count_mismatches_are_rejected() {
    let mut rng = Lcg(0x5eed_0002);
    for _ in 0..2000 {
        let (count, data) = build_batch(&mut rng, 8, 32);
        // Any claimed count other than the real one must error, including
        // zero-count claims over a non-empty payload.
        let lie = (count + 1 + rng.below(4) as u32) % (count + 5);
        if lie == count {
            continue;
        }
        assert!(
            unpack_records(lie, data.clone()).is_err(),
            "count {lie} accepted for a {count}-record payload"
        );
    }
    // The degenerate zero cases hold exactly.
    assert!(unpack_records(0, Bytes::new()).unwrap().is_empty());
    assert!(unpack_records(1, Bytes::new()).is_err());
}

#[test]
fn random_garbage_never_panics_the_iterator() {
    let mut rng = Lcg(0x5eed_0003);
    for _ in 0..2000 {
        let garbage = Bytes::from(rng.bytes(rng.below(200)));
        // Most garbage has a wild length prefix; all of it must come out
        // as records + at most one error, with no panic.
        let _ = drain(garbage.clone());
        let _ = unpack_records(rng.below(16) as u32, garbage);
    }
}

#[test]
fn flipped_length_prefixes_error_or_reframe_but_never_panic() {
    let mut rng = Lcg(0x5eed_0004);
    for _ in 0..2000 {
        let (_, data) = build_batch(&mut rng, 6, 24);
        if data.len() < RECORD_HEADER_LEN {
            continue;
        }
        // Corrupt one byte — often a length prefix, sometimes a body
        // byte. The result may still parse (body corruption, or a length
        // that happens to re-frame the tail), but must never panic and
        // must never yield more payload bytes than exist.
        let mut raw = data.to_vec();
        let at = rng.below(raw.len());
        raw[at] ^= 1 << rng.below(8);
        let corrupted = Bytes::from(raw);
        let total = corrupted.len();
        let mut yielded = 0;
        for r in RecordBatchIter::new(corrupted) {
            match r {
                Ok(rec) => yielded += RECORD_HEADER_LEN + rec.len(),
                Err(_) => break,
            }
        }
        assert!(yielded <= total, "iterator yielded bytes out of thin air");
    }
}

#[test]
fn deframer_survives_hostile_fragmentation() {
    let mut rng = Lcg(0x5eed_0005);
    for _ in 0..500 {
        let (count, data) = build_batch(&mut rng, 8, 32);
        // Refragment at random boundaries, including empty fragments.
        let mut d = RecordDeframer::new();
        let mut fed = 0;
        let mut records = 0;
        while fed < data.len() {
            let n = rng.below(data.len() - fed + 1);
            d.push(data.slice(fed..fed + n));
            fed += n;
            while d.next_record().is_some() {
                records += 1;
            }
        }
        while d.next_record().is_some() {
            records += 1;
        }
        assert_eq!(records, count);
        assert!(d.is_empty(), "clean stream must drain the deframer");
    }
}

#[test]
fn deframer_parks_torn_trailing_records_without_panicking() {
    let mut rng = Lcg(0x5eed_0006);
    for _ in 0..500 {
        let (_, data) = build_batch(&mut rng, 4, 16);
        if data.is_empty() {
            continue;
        }
        let cut = 1 + rng.below(data.len() - 1).min(data.len() - 1);
        let mut d = RecordDeframer::new();
        d.push(data.slice(..cut));
        while d.next_record().is_some() {}
        // A giant bogus length prefix in the tail just waits for bytes
        // that never come; either way the deframer reports the tear.
        if cut < data.len() {
            assert!(
                !d.is_empty() || record_boundary(&data, cut),
                "torn tail at {cut} vanished silently"
            );
        }
    }
}

/// True when `cut` lands exactly between records of a packed payload.
fn record_boundary(data: &Bytes, cut: usize) -> bool {
    let mut at = 0;
    while at < data.len() {
        if at == cut {
            return true;
        }
        let len = u32::from_le_bytes(data[at..at + RECORD_HEADER_LEN].try_into().unwrap());
        at += RECORD_HEADER_LEN + len as usize;
    }
    at == cut
}
