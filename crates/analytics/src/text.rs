//! Incremental text utilities shared by the workloads.
//!
//! The scanning loops delegate to the SWAR kernels in [`crate::kernels`],
//! which process eight bytes per step and are property-tested against the
//! scalar loops these utilities originally used.

use crate::kernels;

/// Incremental line splitter over arbitrary chunk boundaries.
///
/// # Examples
///
/// ```
/// use glider_analytics::text::LineSplitter;
///
/// let mut s = LineSplitter::new();
/// assert_eq!(s.push(b"one\ntw"), vec!["one"]);
/// assert_eq!(s.push(b"o\n"), vec!["two"]);
/// assert_eq!(s.finish(), Some("".to_string()).filter(|_| false));
/// ```
#[derive(Debug, Default)]
pub struct LineSplitter {
    pending: Vec<u8>,
}

impl LineSplitter {
    /// Creates an empty splitter.
    pub fn new() -> Self {
        LineSplitter::default()
    }

    /// Feeds a chunk, returning every completed line (without `\n`).
    pub fn push(&mut self, chunk: &[u8]) -> Vec<String> {
        self.pending.extend_from_slice(chunk);
        let mut out = Vec::new();
        let mut start = 0;
        while let Some(nl) = kernels::find_byte(&self.pending[start..], b'\n') {
            let line = &self.pending[start..start + nl];
            out.push(String::from_utf8_lossy(line).into_owned());
            start += nl + 1;
        }
        self.pending.drain(..start);
        out
    }

    /// Returns the final unterminated line, if any.
    pub fn finish(&mut self) -> Option<String> {
        if self.pending.is_empty() {
            None
        } else {
            let line = String::from_utf8_lossy(&self.pending).into_owned();
            self.pending.clear();
            Some(line)
        }
    }
}

/// Counts whitespace-separated words in a byte chunk stream, tolerating
/// words split across chunk boundaries.
#[derive(Debug, Default)]
pub struct WordCounter {
    count: u64,
    in_word: bool,
}

impl WordCounter {
    /// Creates a counter.
    pub fn new() -> Self {
        WordCounter::default()
    }

    /// Feeds a chunk (vectorized: eight bytes per step).
    pub fn push(&mut self, chunk: &[u8]) {
        let (added, in_word) = kernels::count_words(chunk, self.in_word);
        self.count += added;
        self.in_word = in_word;
    }

    /// Total words seen.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Allocation-free line scanner over byte chunks: invokes a callback per
/// complete line (without `\n`), carrying partial lines across chunks.
///
/// The hot paths of the genomics operators use this instead of
/// [`LineSplitter`] to avoid a `String` per record.
///
/// # Examples
///
/// ```
/// use glider_analytics::text::ByteLineScanner;
///
/// let mut lines = Vec::new();
/// let mut scanner = ByteLineScanner::new();
/// scanner.push(b"12,a\n34,", |l| lines.push(l.to_vec()));
/// scanner.push(b"b\n", |l| lines.push(l.to_vec()));
/// scanner.finish(|l| lines.push(l.to_vec()));
/// assert_eq!(lines, vec![b"12,a".to_vec(), b"34,b".to_vec()]);
/// ```
#[derive(Debug, Default)]
pub struct ByteLineScanner {
    carry: Vec<u8>,
}

impl ByteLineScanner {
    /// Creates an empty scanner.
    pub fn new() -> Self {
        ByteLineScanner::default()
    }

    /// Feeds one chunk, invoking `f` for every completed line.
    pub fn push(&mut self, chunk: &[u8], mut f: impl FnMut(&[u8])) {
        let mut rest = chunk;
        if !self.carry.is_empty() {
            match kernels::find_byte(rest, b'\n') {
                Some(nl) => {
                    self.carry.extend_from_slice(&rest[..nl]);
                    f(&self.carry);
                    self.carry.clear();
                    rest = &rest[nl + 1..];
                }
                None => {
                    self.carry.extend_from_slice(rest);
                    return;
                }
            }
        }
        while let Some(nl) = kernels::find_byte(rest, b'\n') {
            f(&rest[..nl]);
            rest = &rest[nl + 1..];
        }
        self.carry.extend_from_slice(rest);
    }

    /// Flushes a final unterminated line, if any.
    pub fn finish(&mut self, mut f: impl FnMut(&[u8])) {
        if !self.carry.is_empty() {
            f(&self.carry);
            self.carry.clear();
        }
    }
}

/// Parses the leading decimal integer (up to the first `,` or the end) of
/// a record line without allocating.
pub fn leading_i64(line: &[u8]) -> Option<i64> {
    let end = line.iter().position(|&b| b == b',').unwrap_or(line.len());
    if end == 0 || end > 18 {
        return None;
    }
    let mut value: i64 = 0;
    for &b in &line[..end] {
        if !b.is_ascii_digit() {
            return None;
        }
        value = value * 10 + i64::from(b - b'0');
    }
    Some(value)
}

/// Order-independent checksum of items (for validating that two
/// implementations produced the same multiset of records/lines).
pub fn multiset_checksum<'a>(items: impl Iterator<Item = &'a [u8]>) -> u64 {
    items
        .map(|item| {
            // FNV-1a per item, combined by wrapping addition (commutative).
            let mut hash: u64 = 0xcbf29ce484222325;
            for &b in item {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x100000001b3);
            }
            hash
        })
        .fold(0u64, |acc, h| acc.wrapping_add(h))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_splitter_handles_boundaries() {
        let mut s = LineSplitter::new();
        assert_eq!(s.push(b"a\nb"), vec!["a"]);
        assert_eq!(s.push(b"c\n\nd"), vec!["bc", ""]);
        assert_eq!(s.finish(), Some("d".to_string()));
        assert_eq!(s.finish(), None);
    }

    #[test]
    fn word_counter_across_chunks() {
        let mut w = WordCounter::new();
        w.push(b"hello wor");
        w.push(b"ld  and");
        w.push(b" more\n");
        assert_eq!(w.count(), 4);
        let mut empty = WordCounter::new();
        empty.push(b"   \n\t ");
        assert_eq!(empty.count(), 0);
    }

    #[test]
    fn byte_line_scanner_matches_line_splitter() {
        let text = b"one\ntwo split across\nchunks\nand a tail";
        for chunk_size in [1usize, 3, 7, 100] {
            let mut from_scanner: Vec<Vec<u8>> = Vec::new();
            let mut scanner = ByteLineScanner::new();
            for chunk in text.chunks(chunk_size) {
                scanner.push(chunk, |l| from_scanner.push(l.to_vec()));
            }
            scanner.finish(|l| from_scanner.push(l.to_vec()));
            let expected: Vec<Vec<u8>> = text.split(|&b| b == b'\n').map(|l| l.to_vec()).collect();
            assert_eq!(from_scanner, expected, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn leading_i64_parses_and_rejects() {
        assert_eq!(leading_i64(b"123,rest"), Some(123));
        assert_eq!(leading_i64(b"0"), Some(0));
        assert_eq!(leading_i64(b",x"), None);
        assert_eq!(leading_i64(b"12a,x"), None);
        assert_eq!(leading_i64(b""), None);
        assert_eq!(leading_i64(b"99999999999999999999999,x"), None); // too long
    }

    #[test]
    fn multiset_checksum_is_order_independent() {
        let a: Vec<&[u8]> = vec![b"one", b"two", b"three"];
        let b: Vec<&[u8]> = vec![b"three", b"one", b"two"];
        let c: Vec<&[u8]> = vec![b"one", b"two", b"four"];
        assert_eq!(
            multiset_checksum(a.iter().copied()),
            multiset_checksum(b.iter().copied())
        );
        assert_ne!(
            multiset_checksum(a.iter().copied()),
            multiset_checksum(c.iter().copied())
        );
    }
}
