//! Fig. 5: streaming aggregation of random `(key, value)` pairs.
//!
//! Workers generate random numeric pairs over a fixed key cardinality and
//! the pairs must be reduced into one dictionary. The baseline stores all
//! generated pairs as files and runs an extra reducer worker that reads
//! them back (every byte crosses the compute boundary twice); Glider
//! pushes the reduction into an interleaved `merge` action, so the data
//! crosses once and storage holds only the aggregated dictionary — the
//! paper's 50% access cut and ~99.8% utilization cut.

use crate::kernels::StreamingAggregator;
use crate::report::WorkloadReport;
use bytes::Bytes;
use glider_core::{ActionSpec, Cluster, ClusterConfig, GliderError, GliderResult};
use glider_util::textgen::PairGen;
use glider_util::Stopwatch;
use std::collections::HashMap;

/// Configuration of the Fig. 5 experiment.
#[derive(Debug, Clone)]
pub struct ReduceConfig {
    /// Number of generating workers (paper sweeps 1, 2, 5, 10).
    pub workers: usize,
    /// Pairs per worker (paper: 50M ≈ 1 GiB; scaled down by default).
    pub pairs_per_worker: usize,
    /// Distinct keys (paper: 1024).
    pub key_cardinality: u64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for ReduceConfig {
    fn default() -> Self {
        ReduceConfig {
            workers: 5,
            pairs_per_worker: 200_000,
            key_cardinality: 1024,
            seed: 0x0F16_5EED,
        }
    }
}

/// Result of one reduce run.
#[derive(Debug)]
pub struct ReduceOutcome {
    /// Timings and indicator snapshot.
    pub report: WorkloadReport,
    /// Aggregated dictionary (for validation).
    pub dictionary: HashMap<i64, i64>,
    /// Bytes of pair data the workers emitted.
    pub emitted_bytes: u64,
}

/// Pair-generation batch size (pairs per write).
const BATCH: usize = 50_000;

fn merge_lines(dict: &mut HashMap<i64, i64>, lines: &[String]) {
    for line in lines {
        if let Some((k, v)) = line.split_once(',') {
            if let (Ok(k), Ok(v)) = (k.parse::<i64>(), v.parse::<i64>()) {
                *dict.entry(k).or_insert(0) = dict.get(&k).copied().unwrap_or(0).wrapping_add(v);
            }
        }
    }
}

/// Runs the data-shipping baseline: pair files plus a reducer worker.
///
/// # Errors
///
/// Propagates cluster and storage failures.
pub async fn run_baseline(cfg: &ReduceConfig) -> GliderResult<ReduceOutcome> {
    let cluster = Cluster::start(ClusterConfig::default()).await?;
    let setup = cluster.client().await?;
    setup.create_dir("/reduce").await?;
    cluster.metrics().reset();

    let sw = Stopwatch::start();
    // Stage 1: workers emit pair files.
    let mut tasks = Vec::new();
    for w in 0..cfg.workers {
        let store = cluster.client().await?;
        let cfg = cfg.clone();
        tasks.push(tokio::spawn(async move {
            let file = store.create_file(&format!("/reduce/in-{w}")).await?;
            let mut out = file.output_stream().await?;
            let mut gen = PairGen::new(cfg.seed + w as u64, cfg.key_cardinality);
            let mut remaining = cfg.pairs_per_worker;
            let mut emitted = 0u64;
            while remaining > 0 {
                let n = remaining.min(BATCH);
                let batch = gen.generate_pairs(n);
                emitted += batch.len() as u64;
                out.write(Bytes::from(batch)).await?;
                remaining -= n;
            }
            out.close().await?;
            Ok::<u64, GliderError>(emitted)
        }));
    }
    let mut emitted_bytes = 0;
    for t in tasks {
        emitted_bytes += t.await.expect("worker task panicked")?;
    }

    // Stage 2: a reducer worker reads everything back and aggregates.
    // The aggregation kernel parses `k,v` lines straight from the chunk
    // bytes (no String per record) into an FNV-keyed map.
    let reducer = cluster.client().await?;
    let mut agg = StreamingAggregator::new();
    for w in 0..cfg.workers {
        let file = reducer.lookup_file(&format!("/reduce/in-{w}")).await?;
        let mut reader = file.input_stream().await?;
        while let Some(chunk) = reader.next_chunk().await? {
            agg.push_chunk(&chunk);
        }
        agg.finish();
    }
    let dict = agg.into_map();
    // Write the aggregated result so the next stage can consume it.
    let mut entries: Vec<(i64, i64)> = dict.iter().map(|(k, v)| (*k, *v)).collect();
    entries.sort_unstable();
    let mut result = String::new();
    for (k, v) in &entries {
        result.push_str(&format!("{k},{v}\n"));
    }
    let result_file = reducer.create_file("/reduce/result").await?;
    result_file.write_all(Bytes::from(result)).await?;
    let elapsed = sw.elapsed();

    let mut report = WorkloadReport::new(
        format!("reduce baseline w={}", cfg.workers),
        elapsed,
        vec![],
        cluster.metrics().snapshot(),
    );
    report.fact("distinct_keys", dict.len());
    Ok(ReduceOutcome {
        report,
        dictionary: dict,
        emitted_bytes,
    })
}

/// Runs the Glider version: workers stream pairs into one interleaved
/// `merge` action; the aggregate is immediately available for the next
/// stage without a reducer worker.
///
/// # Errors
///
/// Propagates cluster and storage failures.
pub async fn run_glider(cfg: &ReduceConfig) -> GliderResult<ReduceOutcome> {
    let cluster = Cluster::start(ClusterConfig::default()).await?;
    let setup = cluster.client().await?;
    setup.create_dir("/reduce").await?;
    setup
        .create_action("/reduce/merger", ActionSpec::new("merge", true))
        .await?;
    cluster.metrics().reset();

    let sw = Stopwatch::start();
    let mut tasks = Vec::new();
    for w in 0..cfg.workers {
        let store = cluster.client().await?;
        let cfg = cfg.clone();
        tasks.push(tokio::spawn(async move {
            let action = store.lookup_action("/reduce/merger").await?;
            let mut out = action.output_stream().await?;
            let mut gen = PairGen::new(cfg.seed + w as u64, cfg.key_cardinality);
            let mut remaining = cfg.pairs_per_worker;
            let mut emitted = 0u64;
            while remaining > 0 {
                let n = remaining.min(BATCH);
                let batch = gen.generate_pairs(n);
                emitted += batch.len() as u64;
                out.write(Bytes::from(batch)).await?;
                remaining -= n;
            }
            out.close().await?; // barrier: aggregation of this stream done
            Ok::<u64, GliderError>(emitted)
        }));
    }
    let mut emitted_bytes = 0;
    for t in tasks {
        emitted_bytes += t.await.expect("worker task panicked")?;
    }
    let elapsed = sw.elapsed();

    // Validation read (outside the measured window, like the baseline's
    // next stage): the action already holds the aggregate.
    let report_snapshot = cluster.metrics().snapshot();
    let verify = cluster.client().await?;
    let action = verify.lookup_action("/reduce/merger").await?;
    let result = action.read_all().await?;
    let mut dict = HashMap::new();
    let lines: Vec<String> = String::from_utf8_lossy(&result)
        .lines()
        .map(str::to_string)
        .collect();
    merge_lines(&mut dict, &lines);

    let mut report = WorkloadReport::new(
        format!("reduce glider w={}", cfg.workers),
        elapsed,
        vec![],
        report_snapshot,
    );
    report.fact("distinct_keys", dict.len());
    Ok(ReduceOutcome {
        report,
        dictionary: dict,
        emitted_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ReduceConfig {
        ReduceConfig {
            workers: 3,
            pairs_per_worker: 20_000,
            key_cardinality: 256,
            seed: 11,
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn both_sides_compute_the_same_dictionary() {
        let cfg = small();
        let base = run_baseline(&cfg).await.unwrap();
        let glider = run_glider(&cfg).await.unwrap();
        assert_eq!(base.dictionary.len(), 256);
        assert_eq!(base.dictionary, glider.dictionary);
        assert_eq!(base.emitted_bytes, glider.emitted_bytes);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn glider_halves_transfers_and_collapses_utilization() {
        let cfg = small();
        let base = run_baseline(&cfg).await.unwrap();
        let glider = run_glider(&cfg).await.unwrap();
        // Paper Fig. 5: baseline moves the data twice (write + read back),
        // Glider once.
        let base_xfer = base.report.tier_crossing_bytes();
        let glider_xfer = glider.report.tier_crossing_bytes();
        assert!(
            glider_xfer as f64 <= base_xfer as f64 * 0.6,
            "glider {glider_xfer} vs baseline {base_xfer}"
        );
        // Paper §7.1: storage accesses cut by half.
        assert!(glider.report.storage_accesses() < base.report.storage_accesses());
        // Paper §7.1: utilization ~99.8% lower (full pair files vs a
        // small dictionary).
        assert!(
            glider.report.peak_utilization() < base.report.peak_utilization() / 20,
            "glider {} vs baseline {}",
            glider.report.peak_utilization(),
            base.report.peak_utilization()
        );
    }
}
