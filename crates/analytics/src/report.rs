//! Workload result reporting.

use glider_metrics::MetricsSnapshot;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// What one workload run measured: wall-clock (total and per phase), the
/// metrics snapshot (the paper's indicators), and free-form facts used for
/// validation (e.g. a result checksum).
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Human-readable configuration label (e.g. `baseline w=10`).
    pub label: String,
    /// Total wall-clock time.
    pub elapsed: Duration,
    /// Ordered phase timings (e.g. `P1`/`P2`, `map`/`ranges`/`reduce`).
    pub phases: Vec<(String, Duration)>,
    /// Metrics accumulated during the run (registry is reset per run).
    pub metrics: MetricsSnapshot,
    /// Workload-specific facts (checksums, counts).
    pub facts: BTreeMap<String, String>,
}

impl WorkloadReport {
    /// Creates a report.
    pub fn new(
        label: impl Into<String>,
        elapsed: Duration,
        phases: Vec<(String, Duration)>,
        metrics: MetricsSnapshot,
    ) -> Self {
        WorkloadReport {
            label: label.into(),
            elapsed,
            phases,
            metrics,
            facts: BTreeMap::new(),
        }
    }

    /// Adds a validation fact.
    pub fn fact(&mut self, key: impl Into<String>, value: impl fmt::Display) {
        self.facts.insert(key.into(), value.to_string());
    }

    /// A phase's duration, if present.
    pub fn phase(&self, name: &str) -> Option<Duration> {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, d)| *d)
    }

    /// Bytes that crossed the compute boundary during the run.
    pub fn tier_crossing_bytes(&self) -> u64 {
        self.metrics.tier_crossing_bytes()
    }

    /// Data-plane storage accesses during the run.
    pub fn storage_accesses(&self) -> u64 {
        self.metrics.storage_accesses()
    }

    /// Peak temporary storage utilization during the run.
    pub fn peak_utilization(&self) -> u64 {
        self.metrics.peak_utilization()
    }

    /// Application throughput in Gbit/s over `payload_bytes` of input.
    pub fn gbps(&self, payload_bytes: u64) -> f64 {
        glider_util::stopwatch::gbps(payload_bytes, self.elapsed)
    }

    /// Speedup of this run relative to `other` (>1 = this one is faster).
    pub fn speedup_vs(&self, other: &WorkloadReport) -> f64 {
        other.elapsed.as_secs_f64() / self.elapsed.as_secs_f64()
    }
}

impl fmt::Display for WorkloadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] {:.3}s", self.label, self.elapsed.as_secs_f64())?;
        for (name, d) in &self.phases {
            writeln!(f, "  phase {name}: {:.3}s", d.as_secs_f64())?;
        }
        writeln!(
            f,
            "  tier-crossing: {} B, storage accesses: {}, peak utilization: {} B",
            self.tier_crossing_bytes(),
            self.storage_accesses(),
            self.peak_utilization()
        )?;
        for (k, v) in &self.facts {
            writeln!(f, "  {k}: {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glider_metrics::MetricsRegistry;

    fn report(label: &str, secs: u64) -> WorkloadReport {
        WorkloadReport::new(
            label,
            Duration::from_secs(secs),
            vec![("p1".to_string(), Duration::from_secs(1))],
            MetricsRegistry::new().snapshot(),
        )
    }

    #[test]
    fn phases_and_facts() {
        let mut r = report("x", 2);
        r.fact("sum", 42);
        assert_eq!(r.phase("p1"), Some(Duration::from_secs(1)));
        assert_eq!(r.phase("nope"), None);
        assert_eq!(r.facts["sum"], "42");
        let display = r.to_string();
        assert!(display.contains("[x]"));
        assert!(display.contains("phase p1"));
        assert!(display.contains("sum: 42"));
    }

    #[test]
    fn speedup_math() {
        let fast = report("fast", 2);
        let slow = report("slow", 6);
        assert!((fast.speedup_vs(&slow) - 3.0).abs() < 1e-9);
        assert!((slow.speedup_vs(&fast) - 1.0 / 3.0).abs() < 1e-9);
    }
}
