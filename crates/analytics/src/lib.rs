//! Serverless analytics workloads — the paper's evaluation section as code.
//!
//! Each module implements one experiment of the paper's §7, always as a
//! **pair**: the data-shipping baseline (PyWren / AWS-Lambda-MapReduce
//! style: workers ship intermediate data through remote storage) and the
//! Glider version (storage actions transform the data near storage). Both
//! run against the same in-process cluster substrate and report the same
//! [`report::WorkloadReport`], so the benchmark harnesses in
//! `glider-bench` can print paper-style tables with measured reductions.
//!
//! | Module | Paper | Workload |
//! |--------|-------|----------|
//! | [`pipeline`] | Table 2 | word count with per-line filtering (ingest pre-processing) |
//! | [`reduce`] | Fig. 5 | streaming aggregation of random `(key,value)` pairs |
//! | [`sort`] | Fig. 7 | two-phase distributed sort of 100-byte records |
//! | [`genomics`] | Fig. 9 | variant-calling map/shuffle/reduce over FASTA/FASTQ-shaped data |
//!
//! Correctness of each pair is asserted by tests: both sides must produce
//! the *same* answer, not just similar timings.
//!
//! The inner loops shared by the workloads (byte scanning, `k,v`
//! aggregation, record partitioning) live in [`kernels`] as vectorized
//! SWAR implementations, property-tested against their scalar references.

pub mod genomics;
pub mod kernels;
pub mod pipeline;
pub mod reduce;
pub mod report;
pub mod sort;
pub mod text;

pub use report::WorkloadReport;
