//! Vectorized byte-scanning and aggregation kernels for the hot paths.
//!
//! The workloads spend most of their CPU time in three inner loops: byte
//! classification (word counting, line splitting for CSV filtering),
//! hashing `(key, value)` pairs for streaming aggregation, and moving
//! 100-byte sort records between partitions. These kernels speed up all
//! three with plain safe Rust:
//!
//! - **SWAR scanning** — [`count_words`] and [`find_byte`] process input
//!   eight bytes at a time inside a `u64` (SIMD within a register). The
//!   workspace forbids `unsafe`, so instead of explicit SIMD intrinsics
//!   the kernels use the classic zero-byte trick
//!   `(t - 0x01…01) & !t & 0x80…80`, which the compiler autovectorizes
//!   well on the `chunks_exact(8)` loop shape.
//! - **Pre-hashed aggregation** — [`StreamingAggregator`] parses `k,v`
//!   lines without allocating a `String` per record and aggregates into a
//!   hash map keyed by FNV-1a (the same cheap hash the multiset checksum
//!   uses) instead of the default DoS-resistant SipHash.
//! - **Radix partitioning** — [`radix_partition_into`] and
//!   [`sort_records_by_key`] bucket fixed-size records by the first key
//!   byte (the partition function is monotone in that byte) with a
//!   count-then-scatter pass, so each output buffer is allocated exactly
//!   once and records are copied exactly once.
//!
//! Every kernel is checked against the scalar reference implementation by
//! property tests; the scalar definitions stay the source of truth.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Low bits of every byte lane.
const LANES_LO: u64 = 0x0101_0101_0101_0101;
/// High bit of every byte lane.
const LANES_HI: u64 = 0x8080_8080_8080_8080;

/// Returns a mask with `0x80` in every byte lane of `x` equal to `c`.
#[inline]
fn eq_mask(x: u64, c: u8) -> u64 {
    // Zero-byte detection (Hacker's Delight §6-1): exact, no false
    // positives thanks to the `& !t` term.
    let t = x ^ (LANES_LO * u64::from(c));
    t.wrapping_sub(LANES_LO) & !t & LANES_HI
}

/// Returns a mask with `0x80` in every byte lane holding ASCII whitespace.
///
/// The set matches `u8::is_ascii_whitespace` exactly: space, tab, line
/// feed, form feed, carriage return.
#[inline]
fn whitespace_mask(x: u64) -> u64 {
    eq_mask(x, b' ') | eq_mask(x, b'\t') | eq_mask(x, b'\n') | eq_mask(x, 0x0c) | eq_mask(x, b'\r')
}

/// Counts word starts in `chunk`, eight bytes at a time.
///
/// `in_word` carries the classification of the byte immediately before
/// the chunk (for words split across chunk boundaries). Returns the
/// number of words started inside the chunk and the carry for the next
/// one. Exactly equivalent to the scalar loop over
/// `u8::is_ascii_whitespace`.
pub fn count_words(chunk: &[u8], mut in_word: bool) -> (u64, bool) {
    let mut count = 0u64;
    let mut windows = chunk.chunks_exact(8);
    for win in windows.by_ref() {
        let x = u64::from_le_bytes(win.try_into().expect("8-byte window"));
        let nonspace = !whitespace_mask(x) & LANES_HI;
        // A word starts where a byte is non-space and its predecessor
        // (previous lane, or the carry for lane 0) was space.
        let prev = (nonspace << 8) | (u64::from(in_word) * 0x80);
        count += u64::from((nonspace & !prev).count_ones());
        in_word = nonspace >> 56 != 0;
    }
    for &b in windows.remainder() {
        let is_space = b.is_ascii_whitespace();
        if !is_space && !in_word {
            count += 1;
        }
        in_word = !is_space;
    }
    (count, in_word)
}

/// Finds the first occurrence of `needle`, eight bytes at a time.
///
/// Drop-in replacement for `haystack.iter().position(|&b| b == needle)`
/// on the line-splitting hot paths.
pub fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    let mut offset = 0usize;
    let mut windows = haystack.chunks_exact(8);
    for win in windows.by_ref() {
        let x = u64::from_le_bytes(win.try_into().expect("8-byte window"));
        let hits = eq_mask(x, needle);
        if hits != 0 {
            return Some(offset + hits.trailing_zeros() as usize / 8);
        }
        offset += 8;
    }
    windows
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|i| offset + i)
}

/// FNV-1a streaming hasher (same constants as the multiset checksum).
///
/// Not DoS-resistant — fine for the analytics aggregations, whose keys
/// come from trusted generators, and much cheaper than SipHash on small
/// integer keys.
#[derive(Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0100_0000_01b3);
        }
    }
}

/// `BuildHasher` for FNV-keyed hash maps.
pub type FnvBuildHasher = BuildHasherDefault<Fnv64>;

/// A `HashMap` using FNV-1a instead of SipHash.
pub type FnvHashMap<K, V> = HashMap<K, V, FnvBuildHasher>;

/// Parses a full decimal `i64` (optional sign), rejecting anything
/// `str::parse::<i64>` would reject: empty input, stray bytes, overflow.
fn parse_i64(bytes: &[u8]) -> Option<i64> {
    let (negative, digits) = match bytes.split_first()? {
        (b'-', rest) => (true, rest),
        (b'+', rest) => (false, rest),
        _ => (false, bytes),
    };
    if digits.is_empty() {
        return None;
    }
    let mut value: i64 = 0;
    for &b in digits {
        if !b.is_ascii_digit() {
            return None;
        }
        value = value.checked_mul(10)?;
        value = if negative {
            value.checked_sub(i64::from(b - b'0'))?
        } else {
            value.checked_add(i64::from(b - b'0'))?
        };
    }
    Some(value)
}

/// Merges one `k,v` line into the dictionary; malformed lines are
/// skipped, matching the scalar reference.
fn merge_line(map: &mut FnvHashMap<i64, i64>, line: &[u8]) {
    let comma = match find_byte(line, b',') {
        Some(c) => c,
        None => return,
    };
    if let (Some(k), Some(v)) = (parse_i64(&line[..comma]), parse_i64(&line[comma + 1..])) {
        let slot = map.entry(k).or_insert(0);
        *slot = slot.wrapping_add(v);
    }
}

/// Streaming `k,v` aggregation without per-line allocation.
///
/// Feeds arbitrary byte chunks, splits them into lines, parses each line
/// as a decimal `key,value` pair and accumulates `value` per `key` with
/// wrapping addition — the same dictionary the scalar
/// `LineSplitter`-plus-`parse::<i64>` path produces, minus a `String`
/// allocation and a SipHash per record. Malformed lines are skipped,
/// matching the reference.
#[derive(Debug, Default)]
pub struct StreamingAggregator {
    carry: Vec<u8>,
    map: FnvHashMap<i64, i64>,
}

impl StreamingAggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        StreamingAggregator::default()
    }

    /// Feeds one chunk, merging every completed line.
    pub fn push_chunk(&mut self, chunk: &[u8]) {
        let mut rest = chunk;
        if !self.carry.is_empty() {
            match find_byte(rest, b'\n') {
                Some(nl) => {
                    self.carry.extend_from_slice(&rest[..nl]);
                    merge_line(&mut self.map, &self.carry);
                    self.carry.clear();
                    rest = &rest[nl + 1..];
                }
                None => {
                    self.carry.extend_from_slice(rest);
                    return;
                }
            }
        }
        while let Some(nl) = find_byte(rest, b'\n') {
            merge_line(&mut self.map, &rest[..nl]);
            rest = &rest[nl + 1..];
        }
        self.carry.extend_from_slice(rest);
    }

    /// Merges a single line (no trailing `\n`); malformed lines are
    /// skipped.
    pub fn push_line(&mut self, line: &[u8]) {
        merge_line(&mut self.map, line);
    }

    /// Merges a final unterminated line, if buffered.
    pub fn finish(&mut self) {
        if !self.carry.is_empty() {
            merge_line(&mut self.map, &self.carry);
            self.carry.clear();
        }
    }

    /// Consumes the aggregator, returning the dictionary with the
    /// default hasher (for drop-in use where `HashMap<i64, i64>` is
    /// expected).
    pub fn into_map(self) -> HashMap<i64, i64> {
        self.map.into_iter().collect()
    }
}

/// The partition a record's first key byte belongs to: fixed first-byte
/// ranges, monotone in the byte value.
#[inline]
fn partition_of_byte(b: u8, partitions: usize) -> usize {
    (b as usize * partitions) / 256
}

/// Radix-partitions fixed-size records into `out` by first key byte.
///
/// Two passes: count records per partition (so each buffer grows by one
/// exact `reserve`), then scatter. Records keep their input order within
/// each partition, so downstream stable sorts see the same sequence the
/// scalar append loop would produce. `data` must be record-aligned.
///
/// # Panics
///
/// Panics if `record_len` is zero, `data` is not a multiple of
/// `record_len`, or `out` is empty.
pub fn radix_partition_into(data: &[u8], record_len: usize, out: &mut [Vec<u8>]) {
    assert!(record_len > 0, "record_len must be positive");
    assert_eq!(data.len() % record_len, 0, "data must be record-aligned");
    let partitions = out.len();
    assert!(partitions > 0, "need at least one partition");
    let mut lut = [0usize; 256];
    for (b, slot) in lut.iter_mut().enumerate() {
        *slot = partition_of_byte(b as u8, partitions);
    }
    let mut counts = vec![0usize; partitions];
    for rec in data.chunks_exact(record_len) {
        counts[lut[rec[0] as usize]] += 1;
    }
    for (buf, count) in out.iter_mut().zip(&counts) {
        buf.reserve(count * record_len);
    }
    for rec in data.chunks_exact(record_len) {
        out[lut[rec[0] as usize]].extend_from_slice(rec);
    }
}

/// Sorts fixed-size records by their `key_len`-byte prefix, returning the
/// concatenated sorted records.
///
/// Radix-buckets by the first key byte (256 ways), then stable-sorts each
/// bucket — equal keys keep their input order, so the output is byte-for-
/// byte identical to a stable comparison sort over the whole input, while
/// the comparison sort only ever sees 1/256th of the records.
///
/// # Panics
///
/// Panics if `key_len` is zero or exceeds `record_len`, or `data` is not
/// record-aligned.
pub fn sort_records_by_key(data: &[u8], record_len: usize, key_len: usize) -> Vec<u8> {
    assert!(key_len > 0 && key_len <= record_len, "key within record");
    assert_eq!(data.len() % record_len, 0, "data must be record-aligned");
    // Bucket offsets by first key byte: count, prefix-sum, gather.
    let mut counts = [0usize; 256];
    for rec in data.chunks_exact(record_len) {
        counts[rec[0] as usize] += 1;
    }
    let mut buckets: Vec<Vec<&[u8]>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for rec in data.chunks_exact(record_len) {
        buckets[rec[0] as usize].push(rec);
    }
    let mut sorted = Vec::with_capacity(data.len());
    for bucket in &mut buckets {
        bucket.sort_by_key(|rec| &rec[..key_len]);
        for rec in bucket.iter() {
            sorted.extend_from_slice(rec);
        }
    }
    sorted
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The scalar reference the SWAR kernel must match bit-for-bit.
    fn scalar_count_words(chunk: &[u8], mut in_word: bool) -> (u64, bool) {
        let mut count = 0;
        for &b in chunk {
            let is_space = b.is_ascii_whitespace();
            if !is_space && !in_word {
                count += 1;
            }
            in_word = !is_space;
        }
        (count, in_word)
    }

    #[test]
    fn count_words_handles_basics() {
        assert_eq!(count_words(b"hello world", false), (2, true));
        assert_eq!(count_words(b"  leading and trailing  ", false), (3, false));
        assert_eq!(count_words(b"", true), (0, true));
        assert_eq!(count_words(b"carry", true), (0, true));
        // All five ASCII whitespace characters separate words.
        assert_eq!(count_words(b"a b\tc\nd\x0ce\rf", false), (6, true));
    }

    #[test]
    fn find_byte_matches_position() {
        let hay = b"abcdefghijklmnop,qrs";
        assert_eq!(find_byte(hay, b','), Some(16));
        assert_eq!(find_byte(hay, b'a'), Some(0));
        assert_eq!(find_byte(hay, b's'), Some(19));
        assert_eq!(find_byte(hay, b'z'), None);
        assert_eq!(find_byte(b"", b'x'), None);
    }

    #[test]
    fn parse_i64_matches_str_parse() {
        let cases = [
            "0",
            "42",
            "-7",
            "+9",
            "",
            "-",
            "1a",
            "9223372036854775807",
            "9223372036854775808",
        ];
        for case in cases {
            assert_eq!(
                parse_i64(case.as_bytes()),
                case.parse::<i64>().ok(),
                "case {case:?}"
            );
        }
    }

    #[test]
    fn aggregator_matches_scalar_dictionary() {
        let text = b"1,10\n2,20\n1,5\nbad line\n3,-3\n2,1";
        for chunk_size in [1usize, 3, 8, 64] {
            let mut agg = StreamingAggregator::new();
            for chunk in text.chunks(chunk_size) {
                agg.push_chunk(chunk);
            }
            agg.finish();
            let dict = agg.into_map();
            assert_eq!(dict.len(), 3);
            assert_eq!(dict[&1], 15);
            assert_eq!(dict[&2], 21);
            assert_eq!(dict[&3], -3);
        }
    }

    #[test]
    fn radix_partition_preserves_order_within_partitions() {
        // Three 4-byte records per partition range, interleaved.
        let data: Vec<u8> = [
            [0x00, 1, 1, 1],
            [0xff, 2, 2, 2],
            [0x01, 3, 3, 3],
            [0x80, 4, 4, 4],
            [0xfe, 5, 5, 5],
        ]
        .concat();
        let mut out = vec![Vec::new(), Vec::new()];
        radix_partition_into(&data, 4, &mut out);
        assert_eq!(out[0], [[0x00, 1, 1, 1], [0x01, 3, 3, 3]].concat());
        assert_eq!(
            out[1],
            [[0xff, 2, 2, 2], [0x80, 4, 4, 4], [0xfe, 5, 5, 5]].concat()
        );
    }

    #[test]
    fn sort_records_matches_stable_sort() {
        let records: Vec<[u8; 6]> = vec![
            [9, 1, b'a', 0, 0, 1],
            [3, 2, b'b', 0, 0, 2],
            [9, 1, b'c', 0, 0, 3], // same key as the first: must stay after it
            [0, 0, b'd', 0, 0, 4],
        ];
        let data: Vec<u8> = records.concat();
        let sorted = sort_records_by_key(&data, 6, 2);
        let expected: Vec<u8> = [
            [0, 0, b'd', 0, 0, 4],
            [3, 2, b'b', 0, 0, 2],
            [9, 1, b'a', 0, 0, 1],
            [9, 1, b'c', 0, 0, 3],
        ]
        .concat();
        assert_eq!(sorted, expected);
    }

    proptest! {
        #[test]
        fn swar_word_count_matches_scalar(
            chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..8),
            start in any::<bool>(),
        ) {
            let mut swar = (0u64, start);
            let mut scalar = (0u64, start);
            for chunk in &chunks {
                let (c, w) = count_words(chunk, swar.1);
                swar = (swar.0 + c, w);
                let (c, w) = scalar_count_words(chunk, scalar.1);
                scalar = (scalar.0 + c, w);
            }
            prop_assert_eq!(swar, scalar);
        }

        #[test]
        fn swar_find_byte_matches_position(
            hay in prop::collection::vec(any::<u8>(), 0..80),
            needle in any::<u8>(),
        ) {
            prop_assert_eq!(
                find_byte(&hay, needle),
                hay.iter().position(|&b| b == needle)
            );
        }

        #[test]
        fn radix_sort_matches_stable_comparison_sort(
            mut data in prop::collection::vec(any::<u8>(), 0..400),
        ) {
            let record_len = 5;
            let key_len = 2;
            data.truncate(data.len() / record_len * record_len);
            let mut reference: Vec<&[u8]> = data.chunks_exact(record_len).collect();
            reference.sort_by_key(|rec| &rec[..key_len]);
            let expected: Vec<u8> = reference.concat();
            prop_assert_eq!(sort_records_by_key(&data, record_len, key_len), expected);
        }

        #[test]
        fn radix_partition_matches_scalar_append(
            data in prop::collection::vec(any::<u8>(), 0..300),
            partitions in 1usize..9,
        ) {
            let record_len = 3;
            let data = &data[..data.len() / record_len * record_len];
            let mut expected = vec![Vec::new(); partitions];
            for rec in data.chunks_exact(record_len) {
                expected[(rec[0] as usize * partitions) / 256].extend_from_slice(rec);
            }
            let mut out = vec![Vec::new(); partitions];
            radix_partition_into(data, record_len, &mut out);
            prop_assert_eq!(out, expected);
        }
    }
}
