//! The two variant-calling pipelines (baseline on S3+SELECT, Glider on
//! actions) and their shared configuration.

use super::actions::genomics_registry;
use super::{call_variants, compute_ranges, generate_map_records};
use crate::report::WorkloadReport;
use crate::text::multiset_checksum;
use bytes::Bytes;
use glider_core::{
    ActionSpec, Cluster, ClusterConfig, GliderError, GliderResult, MetricsRegistry, StoreClient,
};
use glider_faas::{FaasPlatform, FunctionConfig};
use glider_objectstore::{ObjectClient, ObjectStore, ObjectStoreConfig, Predicate};
use glider_util::{ByteSize, Stopwatch};
use std::sync::Arc;

/// Configuration of the Fig. 9 experiment.
///
/// The paper's full run is `a=20 × q=35` (700 mappers) with `r ∈ {2,3}`
/// reducers per FASTA chunk; the x-axis of Fig. 9 sweeps scaled-down
/// configurations (`1×5,1`, `2×10,1`, `3×20,2`, `5×20,2`, `20×35,2-3`).
#[derive(Debug, Clone)]
pub struct GenomicsConfig {
    /// Number of FASTA (reference) chunks, `a`.
    pub fasta_chunks: usize,
    /// Number of FASTQ (reads) chunks, `q`.
    pub fastq_chunks: usize,
    /// Reducers per FASTA chunk, `r`.
    pub reducers_per_chunk: usize,
    /// Alignment records each of the `a×q` map tasks emits.
    pub records_per_map: usize,
    /// Position space per FASTA chunk.
    pub chunk_span: i64,
    /// Generator seed.
    pub seed: u64,
    /// Bandwidth cap for map functions in MiB/s (paper: 2 GiB Lambdas).
    pub map_bandwidth_mibps: Option<u64>,
    /// Bandwidth cap for reduce functions in MiB/s (paper: 8 GiB Lambdas).
    pub reduce_bandwidth_mibps: Option<u64>,
}

impl Default for GenomicsConfig {
    fn default() -> Self {
        GenomicsConfig {
            fasta_chunks: 2,
            fastq_chunks: 4,
            reducers_per_chunk: 2,
            records_per_map: 20_000,
            chunk_span: 1_000_000,
            seed: 0x6E_0E_5EED,
            map_bandwidth_mibps: None,
            reduce_bandwidth_mibps: None,
        }
    }
}

impl GenomicsConfig {
    /// A Fig. 9 x-axis point `a×q,r`.
    pub fn point(a: usize, q: usize, r: usize) -> Self {
        GenomicsConfig {
            fasta_chunks: a,
            fastq_chunks: q,
            reducers_per_chunk: r,
            ..GenomicsConfig::default()
        }
    }

    fn map_fn(&self) -> FunctionConfig {
        let mut cfg = FunctionConfig::default().with_memory(ByteSize::gib(2));
        if let Some(bw) = self.map_bandwidth_mibps {
            cfg = cfg.with_bandwidth_mibps(bw);
        }
        cfg
    }

    fn reduce_fn(&self) -> FunctionConfig {
        let mut cfg = FunctionConfig::default().with_memory(ByteSize::gib(8));
        if let Some(bw) = self.reduce_bandwidth_mibps {
            cfg = cfg.with_bandwidth_mibps(bw);
        }
        cfg
    }
}

/// Result of one variant-calling run.
#[derive(Debug)]
pub struct GenomicsOutcome {
    /// Timings (phases `map`, `ranges`, `reduce`) and indicator snapshot.
    pub report: WorkloadReport,
    /// Order-independent checksum of every `final_i-k` object's lines
    /// (validation: identical between baseline and Glider).
    pub variants_checksum: u64,
    /// Total variant lines called.
    pub total_variant_lines: u64,
    /// Serverless functions invoked.
    pub invocations: u64,
}

async fn collect_finals(s3: &ObjectClient) -> GliderResult<(u64, u64)> {
    let mut tagged: Vec<Vec<u8>> = Vec::new();
    let mut total_lines = 0u64;
    for key in s3.list("gen/final/").await? {
        let data = s3.get(&key).await?;
        for line in data.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            let mut tag = key.as_bytes().to_vec();
            tag.push(b'|');
            tag.extend_from_slice(line);
            tagged.push(tag);
            total_lines += 1;
        }
    }
    Ok((
        multiset_checksum(tagged.iter().map(|v| v.as_slice())),
        total_lines,
    ))
}

/// Runs the data-shipping baseline (Fig. 8, left): mappers write S3
/// objects; samplers re-read them with SELECT to derive ranges; reducers
/// SELECT their range from every object, sort, and call variants.
///
/// # Errors
///
/// Propagates object store and FaaS failures.
pub async fn run_baseline(cfg: &GenomicsConfig) -> GliderResult<GenomicsOutcome> {
    let metrics = MetricsRegistry::new();
    let s3 = ObjectStore::new(ObjectStoreConfig::default(), Arc::clone(&metrics));
    let faas = FaasPlatform::new();

    let mut sw = Stopwatch::start();
    // ---- Map ----
    let mut map_inputs = Vec::new();
    for i in 0..cfg.fasta_chunks {
        for j in 0..cfg.fastq_chunks {
            map_inputs.push((i, j));
        }
    }
    {
        let s3 = s3.clone();
        let cfg = cfg.clone();
        faas.map_stage("map", cfg.map_fn(), map_inputs, 16, move |ctx, (i, j)| {
            let s3 = s3.client(ctx.throttle.clone());
            let cfg = cfg.clone();
            Box::pin(async move {
                let records =
                    generate_map_records(cfg.seed, i, j, cfg.records_per_map, cfg.chunk_span);
                ctx.memory.alloc(records.len() as u64)?;
                s3.put(&format!("gen/tmp/{i}-{j}"), Bytes::from(records))
                    .await
            })
        })
        .await?;
    }
    sw.lap("map");

    // ---- Ranges: one sampler function per FASTA chunk, re-reading the
    // intermediate objects with SELECT on the sample flag. ----
    let ranges: Vec<Vec<(i64, i64)>> = {
        let s3 = s3.clone();
        let cfg = cfg.clone();
        faas.map_stage(
            "sampler",
            cfg.map_fn(),
            (0..cfg.fasta_chunks).collect(),
            8,
            move |ctx, i| {
                let s3 = s3.client(ctx.throttle.clone());
                let cfg = cfg.clone();
                Box::pin(async move {
                    let mut samples = Vec::new();
                    for j in 0..cfg.fastq_chunks {
                        let picked = s3
                            .select(
                                &format!("gen/tmp/{i}-{j}"),
                                &Predicate::ColEq {
                                    col: 2,
                                    value: "s".to_string(),
                                },
                            )
                            .await?;
                        for line in picked.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
                            debug_assert!(crate::genomics::is_sample_bytes(line));
                            if let Some(pos) = crate::text::leading_i64(line) {
                                samples.push(pos);
                            }
                        }
                    }
                    Ok(compute_ranges(
                        &mut samples,
                        cfg.reducers_per_chunk,
                        cfg.chunk_span,
                    ))
                })
            },
        )
        .await?
    };
    sw.lap("ranges");

    // ---- Reduce: SELECT each reducer's range from every object. ----
    let mut reduce_inputs = Vec::new();
    for (i, chunk_ranges) in ranges.iter().enumerate() {
        for (k, (lo, hi)) in chunk_ranges.iter().enumerate() {
            reduce_inputs.push((i, k, *lo, *hi));
        }
    }
    {
        let s3 = s3.clone();
        let cfg = cfg.clone();
        faas.map_stage(
            "reduce",
            cfg.reduce_fn(),
            reduce_inputs,
            16,
            move |ctx, (i, k, lo, hi)| {
                let s3 = s3.client(ctx.throttle.clone());
                let cfg = cfg.clone();
                Box::pin(async move {
                    let mut positions = Vec::new();
                    for j in 0..cfg.fastq_chunks {
                        let rows = s3
                            .select(
                                &format!("gen/tmp/{i}-{j}"),
                                &Predicate::ColI64Range { col: 0, lo, hi },
                            )
                            .await?;
                        ctx.memory.alloc(rows.len() as u64)?;
                        for line in rows.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
                            if let Some(pos) = crate::text::leading_i64(line) {
                                positions.push(pos);
                            }
                        }
                    }
                    positions.sort_unstable();
                    let variants = call_variants(&positions);
                    s3.put(&format!("gen/final/{i}-{k}"), Bytes::from(variants))
                        .await
                })
            },
        )
        .await?;
    }
    sw.lap("reduce");
    let elapsed = sw.elapsed();
    let snapshot = metrics.snapshot();

    let (variants_checksum, total_variant_lines) = collect_finals(&s3.client(None)).await?;
    let mut report = WorkloadReport::new(
        format!(
            "genomics baseline {}x{},{}",
            cfg.fasta_chunks, cfg.fastq_chunks, cfg.reducers_per_chunk
        ),
        elapsed,
        sw.laps().to_vec(),
        snapshot,
    );
    report.fact("variant_lines", total_variant_lines);
    report.fact("invocations", faas.invocation_count());
    Ok(GenomicsOutcome {
        report,
        variants_checksum,
        total_variant_lines,
        invocations: faas.invocation_count(),
    })
}

/// Runs the Glider pipeline (Fig. 8, right): mappers stream into Sampler
/// actions, a Manager action computes ranges from the already-collected
/// samples, and Reader actions feed each reducer one sorted stream.
///
/// # Errors
///
/// Propagates cluster, object store and FaaS failures.
pub async fn run_glider(cfg: &GenomicsConfig) -> GliderResult<GenomicsOutcome> {
    let metrics = MetricsRegistry::new();
    // Enough slots for samplers + manager + readers, and blocks for the
    // intermediate files.
    let inter_bytes = (cfg.fasta_chunks * cfg.fastq_chunks * cfg.records_per_map * 20) as u64;
    let blocks = (inter_bytes * 3)
        .div_ceil(ByteSize::mib(1).as_u64())
        .max(64)
        + (cfg.fasta_chunks * cfg.fastq_chunks) as u64;
    let slots = (cfg.fasta_chunks * (1 + cfg.reducers_per_chunk) + 1) as u64 + 4;
    let cluster = Cluster::start_with_metrics(
        ClusterConfig::default()
            .with_data(2, blocks / 2 + 1)
            .with_active(2, slots / 2 + 1)
            .with_registry(genomics_registry()),
        Arc::clone(&metrics),
    )
    .await?;
    let s3 = ObjectStore::new(ObjectStoreConfig::default(), Arc::clone(&metrics));
    let faas = FaasPlatform::new();

    // Job deployment (unmeasured, like uploading Lambda code): directories
    // and the sampler/manager actions.
    let driver = cluster.client().await?;
    driver.create_dir_all("/gen/tmp").await?;
    driver.create_dir("/gen/reader").await?;
    driver.create_dir("/gen/sampler").await?;
    driver
        .create_action(
            "/gen/manager",
            ActionSpec::new("gen-manager", true).with_params(format!(
                "reducers={};span={}",
                cfg.reducers_per_chunk, cfg.chunk_span
            )),
        )
        .await?;
    for i in 0..cfg.fasta_chunks {
        driver.create_dir(&format!("/gen/tmp/{i}")).await?;
        driver
            .create_action(
                &format!("/gen/sampler/{i}"),
                ActionSpec::new("gen-sampler", true)
                    .with_params(format!("dir=/gen/tmp/{i};manager=/gen/manager;chunk={i}")),
            )
            .await?;
    }
    metrics.reset();

    let mut sw = Stopwatch::start();
    // ---- Map: stream records into the sampler actions. ----
    let mut map_inputs = Vec::new();
    for i in 0..cfg.fasta_chunks {
        for j in 0..cfg.fastq_chunks {
            map_inputs.push((i, j));
        }
    }
    {
        let client_config = cluster.client_config();
        let cfg = cfg.clone();
        faas.map_stage("map", cfg.map_fn(), map_inputs, 16, move |ctx, (i, j)| {
            let mut client_config = client_config.clone();
            client_config.throttle = ctx.throttle.clone();
            let cfg = cfg.clone();
            Box::pin(async move {
                let store = StoreClient::connect(client_config).await?;
                let records =
                    generate_map_records(cfg.seed, i, j, cfg.records_per_map, cfg.chunk_span);
                ctx.memory.alloc(records.len() as u64)?;
                let sampler = store.lookup_action(&format!("/gen/sampler/{i}")).await?;
                let mut out = sampler.output_stream().await?;
                out.write(Bytes::from(records)).await?;
                out.close().await?;
                Ok::<(), GliderError>(())
            })
        })
        .await?;
    }
    sw.lap("map");

    // ---- Ranges: samplers flush to the manager (intra-store); the
    // driver reads the ranges and deploys the reader actions. ----
    let mut flushes = Vec::new();
    for i in 0..cfg.fasta_chunks {
        let store = cluster.client().await?;
        flushes.push(tokio::spawn(async move {
            let sampler = store.lookup_action(&format!("/gen/sampler/{i}")).await?;
            let summary = sampler.read_all().await?;
            if !summary.starts_with(b"samples=") {
                return Err(GliderError::protocol("unexpected sampler summary"));
            }
            Ok::<(), GliderError>(())
        }));
    }
    for f in flushes {
        f.await.expect("sampler flush panicked")?;
    }
    let manager = driver.lookup_action("/gen/manager").await?;
    let ranges_text = String::from_utf8_lossy(&manager.read_all().await?).into_owned();
    let mut ranges: Vec<Vec<(i64, i64)>> = vec![Vec::new(); cfg.fasta_chunks];
    for line in ranges_text.lines() {
        let parts: Vec<&str> = line.split(',').collect();
        if let [chunk, _k, lo, hi] = parts[..] {
            let chunk: usize = chunk
                .parse()
                .map_err(|_| GliderError::protocol(format!("bad manager output line {line:?}")))?;
            ranges[chunk].push((
                lo.parse().map_err(|_| GliderError::protocol("bad lo"))?,
                hi.parse().map_err(|_| GliderError::protocol("bad hi"))?,
            ));
        }
    }
    for (i, chunk_ranges) in ranges.iter().enumerate() {
        for (k, (lo, hi)) in chunk_ranges.iter().enumerate() {
            driver
                .create_action(
                    &format!("/gen/reader/{i}-{k}"),
                    ActionSpec::new("gen-reader", false)
                        .with_params(format!("dir=/gen/tmp/{i};lo={lo};hi={hi}")),
                )
                .await?;
        }
    }
    sw.lap("ranges");

    // ---- Reduce: one sorted pre-filtered stream per reducer. ----
    let mut reduce_inputs = Vec::new();
    for (i, chunk_ranges) in ranges.iter().enumerate() {
        for k in 0..chunk_ranges.len() {
            reduce_inputs.push((i, k));
        }
    }
    {
        let client_config = cluster.client_config();
        let s3 = s3.clone();
        let cfg = cfg.clone();
        faas.map_stage(
            "reduce",
            cfg.reduce_fn(),
            reduce_inputs,
            16,
            move |ctx, (i, k)| {
                let mut client_config = client_config.clone();
                client_config.throttle = ctx.throttle.clone();
                let s3 = s3.client(ctx.throttle.clone());
                Box::pin(async move {
                    let store = StoreClient::connect(client_config).await?;
                    let reader = store.lookup_action(&format!("/gen/reader/{i}-{k}")).await?;
                    let mut input = reader.input_stream().await?;
                    let mut positions = Vec::new();
                    let mut scanner = crate::text::ByteLineScanner::new();
                    while let Some(chunk) = input.next_chunk().await? {
                        ctx.memory.alloc(chunk.len() as u64)?;
                        scanner.push(&chunk, |line| {
                            if let Some(pos) = crate::text::leading_i64(line) {
                                positions.push(pos);
                            }
                        });
                    }
                    input.close().await?;
                    scanner.finish(|line| {
                        if let Some(pos) = crate::text::leading_i64(line) {
                            positions.push(pos);
                        }
                    });
                    // The reader action already delivers sorted data.
                    debug_assert!(positions.windows(2).all(|w| w[0] <= w[1]));
                    let variants = call_variants(&positions);
                    s3.put(&format!("gen/final/{i}-{k}"), Bytes::from(variants))
                        .await
                })
            },
        )
        .await?;
    }
    sw.lap("reduce");
    let elapsed = sw.elapsed();
    let snapshot = metrics.snapshot();

    let (variants_checksum, total_variant_lines) = collect_finals(&s3.client(None)).await?;
    let mut report = WorkloadReport::new(
        format!(
            "genomics glider {}x{},{}",
            cfg.fasta_chunks, cfg.fastq_chunks, cfg.reducers_per_chunk
        ),
        elapsed,
        sw.laps().to_vec(),
        snapshot,
    );
    report.fact("variant_lines", total_variant_lines);
    report.fact("invocations", faas.invocation_count());
    Ok(GenomicsOutcome {
        report,
        variants_checksum,
        total_variant_lines,
        invocations: faas.invocation_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GenomicsConfig {
        GenomicsConfig {
            fasta_chunks: 2,
            fastq_chunks: 3,
            reducers_per_chunk: 2,
            records_per_map: 4_000,
            chunk_span: 50_000,
            seed: 99,
            map_bandwidth_mibps: None,
            reduce_bandwidth_mibps: None,
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn baseline_and_glider_call_identical_variants() {
        let cfg = small();
        let base = run_baseline(&cfg).await.unwrap();
        let glider = run_glider(&cfg).await.unwrap();
        assert!(base.total_variant_lines > 0, "variants were called");
        assert_eq!(base.total_variant_lines, glider.total_variant_lines);
        assert_eq!(base.variants_checksum, glider.variants_checksum);
        // a*q mappers + a samplers + a*r reducers (baseline).
        assert_eq!(base.invocations, (2 * 3 + 2 + 2 * 2) as u64);
        // Glider needs no sampler functions.
        assert_eq!(glider.invocations, (2 * 3 + 2 * 2) as u64);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn glider_avoids_the_sampling_read() {
        let cfg = small();
        let base = run_baseline(&cfg).await.unwrap();
        let glider = run_glider(&cfg).await.unwrap();
        // Baseline scans the full intermediate data for sampling AND for
        // every reducer's SELECT; Glider's only re-scan is the reader
        // actions', which stays inside the storage tier.
        assert!(base.report.metrics.object_scanned > 0);
        assert_eq!(glider.report.metrics.object_scanned, 0);
        // Intermediate data crosses the compute boundary fewer times with
        // Glider (paper: 3 transfers -> 2).
        let b = base.report.tier_crossing_bytes();
        let g = glider.report.tier_crossing_bytes();
        assert!((g as f64) < (b as f64), "glider {g} vs baseline {b}");
    }
}
