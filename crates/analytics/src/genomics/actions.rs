//! The genomics storage actions (paper Fig. 8, right side).
//!
//! - [`SamplerAction`] — receives mapper output, persists it on ephemeral
//!   files *while* collecting the flagged sample records; on read it
//!   forwards its samples to the manager action (an action→action stream
//!   inside the store) and reports.
//! - [`ManagerAction`] — aggregates samples from all samplers and computes
//!   the reducer ranges on demand.
//! - [`ReaderAction`] — serves one reducer a single, sorted stream of the
//!   records in its range, scanning the chunk's temporary files near
//!   data.
//!
//! Deployed on top of the built-in library by [`genomics_registry`], the
//! same way an application package would be (paper §6.2).

use super::{compute_ranges, is_sample_bytes};
use bytes::Bytes;
use futures::future::BoxFuture;
use glider_core::actions::stream::{ActionInputStream, ActionOutputStream, LineReader};
use glider_core::actions::{ActionCell, ActionContext, ActionRegistry};
use glider_core::{Action, GliderError, GliderResult};
use std::collections::HashMap;
use std::sync::Arc;

/// Builds the action registry for the genomics job: the built-in library
/// plus `gen-sampler`, `gen-manager` and `gen-reader`.
pub fn genomics_registry() -> Arc<ActionRegistry> {
    let registry = ActionRegistry::with_builtins();
    registry.register(
        "gen-sampler",
        Arc::new(|spec| {
            let dir = spec
                .param("dir")
                .ok_or_else(|| GliderError::invalid("gen-sampler: missing dir param"))?
                .to_string();
            let manager = spec
                .param("manager")
                .ok_or_else(|| GliderError::invalid("gen-sampler: missing manager param"))?
                .to_string();
            let chunk = spec
                .param("chunk")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| GliderError::invalid("gen-sampler: missing chunk param"))?;
            Ok(Arc::new(SamplerAction {
                dir,
                manager,
                chunk,
                state: ActionCell::default(),
            }) as Arc<dyn Action>)
        }),
    );
    registry.register(
        "gen-manager",
        Arc::new(|spec| {
            let reducers = spec
                .param("reducers")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| GliderError::invalid("gen-manager: missing reducers param"))?;
            let span = spec
                .param("span")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| GliderError::invalid("gen-manager: missing span param"))?;
            Ok(Arc::new(ManagerAction {
                reducers,
                span,
                samples: ActionCell::default(),
            }) as Arc<dyn Action>)
        }),
    );
    registry.register(
        "gen-reader",
        Arc::new(|spec| {
            let dir = spec
                .param("dir")
                .ok_or_else(|| GliderError::invalid("gen-reader: missing dir param"))?
                .to_string();
            let lo = spec
                .param("lo")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| GliderError::invalid("gen-reader: missing lo param"))?;
            let hi = spec
                .param("hi")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| GliderError::invalid("gen-reader: missing hi param"))?;
            Ok(Arc::new(ReaderAction { dir, lo, hi }) as Arc<dyn Action>)
        }),
    );
    Arc::new(registry)
}

#[derive(Debug, Default)]
struct SamplerState {
    samples: Vec<i64>,
    next_file: u64,
}

/// Persists mapper streams on ephemeral files while sampling them.
#[derive(Debug)]
pub struct SamplerAction {
    dir: String,
    manager: String,
    chunk: usize,
    state: ActionCell<SamplerState>,
}

impl Action for SamplerAction {
    fn on_write<'a>(
        &'a self,
        input: &'a mut ActionInputStream,
        ctx: &'a ActionContext,
    ) -> BoxFuture<'a, GliderResult<()>> {
        Box::pin(async move {
            let file_no = self.state.with(|s| {
                let n = s.next_file;
                s.next_file += 1;
                n
            });
            let store = ctx.store()?;
            let mut sink = store
                .create_file(&format!("{}/{file_no}", self.dir))
                .await?;
            let mut scanner = crate::text::ByteLineScanner::new();
            let mut picked: Vec<i64> = Vec::new();
            while let Some(chunk) = input.next_chunk().await? {
                // Sample on the fly (the baseline needs a whole extra
                // SELECT pass for this)...
                scanner.push(&chunk, |line| {
                    if is_sample_bytes(line) {
                        if let Some(pos) = crate::text::leading_i64(line) {
                            picked.push(pos);
                        }
                    }
                });
                if !picked.is_empty() {
                    self.state.with(|s| s.samples.append(&mut picked));
                }
                // ...while persisting the raw stream near data.
                sink.write(chunk).await?;
            }
            scanner.finish(|line| {
                if is_sample_bytes(line) {
                    if let Some(pos) = crate::text::leading_i64(line) {
                        picked.push(pos);
                    }
                }
            });
            if !picked.is_empty() {
                self.state.with(|s| s.samples.append(&mut picked));
            }
            sink.close().await
        })
    }

    fn on_read<'a>(
        &'a self,
        output: &'a mut ActionOutputStream,
        ctx: &'a ActionContext,
    ) -> BoxFuture<'a, GliderResult<()>> {
        Box::pin(async move {
            // Flush the collected samples to the manager action — an
            // action-to-action stream that never leaves the storage tier.
            let samples = self.state.with(|s| std::mem::take(&mut s.samples));
            let store = ctx.store()?;
            let mut sink = store.open_action_write(&self.manager).await?;
            let mut buf = String::new();
            for pos in &samples {
                buf.push_str(&format!("{},{pos}\n", self.chunk));
            }
            sink.write(Bytes::from(buf)).await?;
            sink.close().await?;
            output
                .write_all(format!("samples={}\n", samples.len()).as_bytes())
                .await
        })
    }

    fn state_size(&self) -> u64 {
        self.state.with(|s| s.samples.len() as u64 * 8)
    }
}

/// Aggregates sample positions and computes reducer ranges.
#[derive(Debug)]
pub struct ManagerAction {
    reducers: usize,
    span: i64,
    samples: ActionCell<HashMap<usize, Vec<i64>>>,
}

impl Action for ManagerAction {
    fn on_write<'a>(
        &'a self,
        input: &'a mut ActionInputStream,
        _ctx: &'a ActionContext,
    ) -> BoxFuture<'a, GliderResult<()>> {
        Box::pin(async move {
            let mut lines = LineReader::new(input);
            while let Some(line) = lines.next_line().await? {
                let Some((chunk, pos)) = line.split_once(',') else {
                    continue;
                };
                if let (Ok(chunk), Ok(pos)) = (chunk.parse::<usize>(), pos.parse::<i64>()) {
                    self.samples.with(|m| m.entry(chunk).or_default().push(pos));
                }
            }
            Ok(())
        })
    }

    fn on_read<'a>(
        &'a self,
        output: &'a mut ActionOutputStream,
        _ctx: &'a ActionContext,
    ) -> BoxFuture<'a, GliderResult<()>> {
        Box::pin(async move {
            let mut per_chunk: Vec<(usize, Vec<i64>)> = self.samples.with(|m| m.drain().collect());
            per_chunk.sort_by_key(|(chunk, _)| *chunk);
            for (chunk, mut samples) in per_chunk {
                for (k, (lo, hi)) in compute_ranges(&mut samples, self.reducers, self.span)
                    .into_iter()
                    .enumerate()
                {
                    output
                        .write_all(format!("{chunk},{k},{lo},{hi}\n").as_bytes())
                        .await?;
                }
            }
            Ok(())
        })
    }

    fn state_size(&self) -> u64 {
        self.samples
            .with(|m| m.values().map(|v| v.len() as u64 * 8).sum())
    }
}

/// Serves one reducer's range as a single sorted stream, scanning the
/// chunk's temporary files near data.
#[derive(Debug)]
pub struct ReaderAction {
    dir: String,
    lo: i64,
    hi: i64,
}

impl Action for ReaderAction {
    fn on_read<'a>(
        &'a self,
        output: &'a mut ActionOutputStream,
        ctx: &'a ActionContext,
    ) -> BoxFuture<'a, GliderResult<()>> {
        Box::pin(async move {
            let store = ctx.store()?;
            // Matching lines are appended into one arena; `index` keeps
            // (position, offset, length) so sorting never moves line
            // bytes — this scan is the near-data hot path.
            let mut arena: Vec<u8> = Vec::new();
            let mut index: Vec<(i64, u32, u32)> = Vec::new();
            for name in store.list(&self.dir).await? {
                let mut reader = store.open_read(&format!("{}/{name}", self.dir)).await?;
                let mut scanner = crate::text::ByteLineScanner::new();
                let mut keep = |line: &[u8]| {
                    if let Some(pos) = crate::text::leading_i64(line) {
                        if (self.lo..self.hi).contains(&pos) {
                            let start = arena.len() as u32;
                            arena.extend_from_slice(line);
                            index.push((pos, start, line.len() as u32));
                        }
                    }
                };
                while let Some(chunk) = reader.next_chunk().await? {
                    scanner.push(&chunk, &mut keep);
                }
                scanner.finish(&mut keep);
            }
            index.sort_unstable_by_key(|&(pos, _, _)| pos);
            for (_, start, len) in index {
                output
                    .write_all(&arena[start as usize..(start + len) as usize])
                    .await?;
                output.write_all(b"\n").await?;
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glider_core::ActionSpec;

    #[test]
    fn registry_has_genomics_actions() {
        let reg = genomics_registry();
        for name in ["gen-sampler", "gen-manager", "gen-reader", "merge"] {
            assert!(reg.names().iter().any(|n| n == name), "missing {name}");
        }
    }

    #[test]
    fn factories_validate_params() {
        let reg = genomics_registry();
        assert!(reg
            .instantiate(&ActionSpec::new("gen-sampler", true))
            .is_err());
        assert!(reg
            .instantiate(
                &ActionSpec::new("gen-sampler", true).with_params("dir=/t;manager=/m;chunk=0")
            )
            .is_ok());
        assert!(reg
            .instantiate(&ActionSpec::new("gen-manager", true))
            .is_err());
        assert!(reg
            .instantiate(&ActionSpec::new("gen-manager", true).with_params("reducers=2;span=100"))
            .is_ok());
        assert!(reg
            .instantiate(&ActionSpec::new("gen-reader", false).with_params("dir=/t;lo=0"))
            .is_err());
        assert!(reg
            .instantiate(&ActionSpec::new("gen-reader", false).with_params("dir=/t;lo=0;hi=10"))
            .is_ok());
    }
}
