//! Fig. 9: serverless genomics variant calling (§7.4).
//!
//! The paper's pipeline aligns FASTQ sequencing reads against FASTA
//! reference chunks with `a × q` Lambda mappers, shuffles the per-chunk
//! intermediate alignments to `r` reducers per chunk (ranges chosen by
//! sampling), and aggregates variants. The baseline stores intermediate
//! files in S3 and shuffles with **S3 SELECT**; Glider routes mapper
//! output through **Sampler** actions (which persist the data on
//! ephemeral files *and* sample it on the fly), computes ranges in a
//! **Manager** action, and serves each reducer one sorted, pre-filtered
//! stream from a **Reader** action — eliminating the baseline's extra
//! full read of the intermediate data.
//!
//! Real genome data is proprietary-scale (3 GiB FASTA + 5.25 GiB FASTQ);
//! we generate FASTA/FASTQ-shaped synthetic alignments with the same
//! structural knobs (`a`, `q`, `r`, records per map task, position space
//! per chunk) — see DESIGN.md §4. The *map computation itself* is
//! simplified to producing the intermediate data, exactly as the paper
//! does ("we simplify the map computation to focus on the data shuffle").
//!
//! Both implementations share the record generator, the sampling rule
//! (every [`SAMPLE_RATE`]-th record is flagged), the range computation and
//! the variant caller, so their final outputs must be byte-identical —
//! asserted in tests.

pub mod actions;
pub mod run;

pub use run::{run_baseline, run_glider, GenomicsConfig, GenomicsOutcome};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One in `SAMPLE_RATE` alignment records carries the sample flag used to
/// derive reducer ranges.
pub const SAMPLE_RATE: usize = 100;

/// Minimum reads covering a position for it to be called a variant.
pub const MIN_READS: u64 = 2;

/// Generates the alignment records one mapper `(fasta_chunk, fastq_chunk)`
/// emits: CSV lines `pos,read_id,flag` with positions uniform in
/// `[0, span)` and every [`SAMPLE_RATE`]-th record flagged `s`.
pub fn generate_map_records(
    seed: u64,
    fasta_chunk: usize,
    fastq_chunk: usize,
    records: usize,
    span: i64,
) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(
        seed ^ ((fasta_chunk as u64) << 32) ^ (fastq_chunk as u64).wrapping_mul(0x9E3779B97F4A7C15),
    );
    let mut out = Vec::with_capacity(records * 20);
    for n in 0..records {
        let pos = rng.gen_range(0..span.max(1));
        let read_id: u32 = rng.gen();
        let flag = if (n + 1) % SAMPLE_RATE == 0 { 's' } else { '.' };
        out.extend_from_slice(format!("{pos},{read_id:08x},{flag}\n").as_bytes());
    }
    out
}

/// Parses the position (first CSV field) of an alignment record line.
pub fn parse_pos(line: &str) -> Option<i64> {
    line.split(',').next()?.trim().parse().ok()
}

/// Whether a record line carries the sample flag.
pub fn is_sample(line: &str) -> bool {
    line.split(',').nth(2).map(str::trim) == Some("s")
}

/// Byte-level variant of [`is_sample`] for hot paths (the flag is the
/// final field, so a flagged record line ends with `,s`).
pub fn is_sample_bytes(line: &[u8]) -> bool {
    line.ends_with(b",s")
}

/// Computes `r` reducer ranges over `[0, span)` from sampled positions
/// (quantile boundaries), identically for the baseline and Glider.
pub fn compute_ranges(samples: &mut Vec<i64>, reducers: usize, span: i64) -> Vec<(i64, i64)> {
    samples.sort_unstable();
    let r = reducers.max(1);
    let mut bounds = Vec::with_capacity(r + 1);
    bounds.push(0i64);
    for k in 1..r {
        let b = if samples.is_empty() {
            (span * k as i64) / r as i64
        } else {
            samples[(samples.len() * k) / r]
        };
        let prev = *bounds.last().expect("non-empty");
        bounds.push(b.clamp(prev, span));
    }
    bounds.push(span);
    bounds.windows(2).map(|w| (w[0], w[1])).collect()
}

/// Aggregates sorted positions into called variants: every position with
/// at least [`MIN_READS`] covering reads yields a `pos,count` line.
///
/// # Panics
///
/// Debug-asserts that positions arrive sorted.
pub fn call_variants(sorted_positions: &[i64]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < sorted_positions.len() {
        let pos = sorted_positions[i];
        let mut count = 0u64;
        while i < sorted_positions.len() && sorted_positions[i] == pos {
            debug_assert!(i == 0 || sorted_positions[i - 1] <= pos, "positions sorted");
            count += 1;
            i += 1;
        }
        if count >= MIN_READS {
            out.extend_from_slice(format!("{pos},{count}\n").as_bytes());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_records_are_deterministic_and_flagged() {
        let a = generate_map_records(1, 2, 3, 1000, 10_000);
        let b = generate_map_records(1, 2, 3, 1000, 10_000);
        assert_eq!(a, b);
        let c = generate_map_records(1, 2, 4, 1000, 10_000);
        assert_ne!(a, c);
        let text = String::from_utf8(a).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1000);
        let flagged = lines.iter().filter(|l| is_sample(l)).count();
        assert_eq!(flagged, 1000 / SAMPLE_RATE);
        for line in &lines {
            let pos = parse_pos(line).unwrap();
            assert!((0..10_000).contains(&pos));
        }
    }

    #[test]
    fn ranges_partition_the_span() {
        let mut samples: Vec<i64> = (0..1000).map(|i| i * 10).collect();
        let ranges = compute_ranges(&mut samples, 4, 10_000);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0].0, 0);
        assert_eq!(ranges[3].1, 10_000);
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0, "contiguous");
            assert!(w[0].0 <= w[0].1, "ordered");
        }
        // Quantiles of a uniform sample split roughly evenly.
        assert!((ranges[0].1 - 2_500).abs() < 300, "{:?}", ranges);
    }

    #[test]
    fn ranges_with_no_samples_split_evenly() {
        let mut empty = Vec::new();
        let ranges = compute_ranges(&mut empty, 4, 1000);
        assert_eq!(ranges, vec![(0, 250), (250, 500), (500, 750), (750, 1000)]);
        let single = compute_ranges(&mut vec![5, 1, 9], 1, 1000);
        assert_eq!(single, vec![(0, 1000)]);
    }

    #[test]
    fn variant_calling_thresholds() {
        let positions = vec![1, 1, 2, 3, 3, 3, 9];
        let out = String::from_utf8(call_variants(&positions)).unwrap();
        assert_eq!(out, "1,2\n3,3\n");
        assert!(call_variants(&[]).is_empty());
        assert!(call_variants(&[7]).is_empty());
    }
}
