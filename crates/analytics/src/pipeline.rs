//! Table 2: the ingest pre-processing pipeline.
//!
//! Word counting where text must be filtered per line before the main
//! computation. The baseline ships the *full* files to the workers, which
//! filter and count locally; Glider offloads the filter to storage
//! actions acting as proxies, so workers ingest only the matching lines
//! (a ~99.75% transfer reduction at the paper's selectivity), and the
//! filter runs in parallel with the counting. The `rdma` flag moves the
//! intra-storage fabric onto the in-process RDMA simulation (Table 2's
//! third row).

use crate::report::WorkloadReport;
use crate::text::{LineSplitter, WordCounter};
use bytes::Bytes;
use glider_core::{ActionSpec, Cluster, ClusterConfig, GliderResult, StoreClient};
use glider_util::textgen::{TextGen, FILTER_MARKER};
use glider_util::{ByteSize, Stopwatch};

/// Configuration of the Table 2 experiment.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Number of workers (paper: 10, one file each).
    pub workers: usize,
    /// Input text per worker (paper: 1 GiB; scaled down by default).
    pub bytes_per_worker: ByteSize,
    /// Fraction of lines passing the filter (paper's Wikipedia filter
    /// keeps ~0.25% of the data).
    pub selectivity: f64,
    /// Generator seed.
    pub seed: u64,
    /// Use the RDMA-simulation fabric for intra-storage links.
    pub rdma: bool,
    /// Per-worker bandwidth cap in MiB/s. The paper's testbed gives
    /// workers a much slower path than the intra-storage fabric (their
    /// baseline tops out at ~3 Gbps while storage-to-storage TCP reaches
    /// ~45 Gbps); on loopback both paths are equally fast, so this cap
    /// restores the compute/storage bandwidth asymmetry the experiment
    /// is about. `None` removes it.
    pub worker_bandwidth_mibps: Option<u64>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            workers: 10,
            bytes_per_worker: ByteSize::mib(8),
            selectivity: 0.0025,
            seed: 0xF117E5,
            rdma: false,
            worker_bandwidth_mibps: Some(8),
        }
    }
}

/// Result of one pipeline run.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// Timings and indicator snapshot.
    pub report: WorkloadReport,
    /// Total words counted in matching lines (validation: identical
    /// between baseline and Glider).
    pub total_words: u64,
    /// Total input bytes across all workers.
    pub input_bytes: u64,
}

fn worker_config(cluster: &Cluster, cfg: &PipelineConfig) -> glider_core::ClientConfig {
    let mut config = cluster.client_config();
    if let Some(bw) = cfg.worker_bandwidth_mibps {
        config.throttle = Some(std::sync::Arc::new(glider_util::TokenBucket::from_mibps(
            bw.max(1),
        )));
    }
    config
}

async fn upload_inputs(store: &StoreClient, cfg: &PipelineConfig) -> GliderResult<u64> {
    store.create_dir("/pipeline").await?;
    let mut total = 0u64;
    for w in 0..cfg.workers {
        let mut gen = TextGen::new(cfg.seed + w as u64, cfg.selectivity);
        let data = gen.generate_bytes(cfg.bytes_per_worker.as_usize());
        total += data.len() as u64;
        let file = store.create_file(&format!("/pipeline/in-{w}")).await?;
        let mut out = file.output_stream().await?;
        out.write(Bytes::from(data)).await?;
        out.close().await?;
    }
    Ok(total)
}

/// Runs the data-shipping baseline: each worker reads its full file and
/// filters/counts locally.
///
/// # Errors
///
/// Propagates cluster and storage failures.
pub async fn run_baseline(cfg: &PipelineConfig) -> GliderResult<PipelineOutcome> {
    let cluster = Cluster::start(ClusterConfig::default().with_rdma_sim(cfg.rdma)).await?;
    let setup_store = cluster.client().await?;
    let input_bytes = upload_inputs(&setup_store, cfg).await?;
    cluster.metrics().reset();

    let sw = Stopwatch::start();
    let mut tasks = Vec::new();
    for w in 0..cfg.workers {
        let store = StoreClient::connect(worker_config(&cluster, cfg)).await?;
        tasks.push(tokio::spawn(async move {
            let file = store.lookup_file(&format!("/pipeline/in-{w}")).await?;
            let mut reader = file.input_stream().await?;
            let mut lines = LineSplitter::new();
            let mut words = WordCounter::new();
            while let Some(chunk) = reader.next_chunk().await? {
                for line in lines.push(&chunk) {
                    if line.contains(FILTER_MARKER) {
                        words.push(line.as_bytes());
                        words.push(b" ");
                    }
                }
            }
            if let Some(line) = lines.finish() {
                if line.contains(FILTER_MARKER) {
                    words.push(line.as_bytes());
                }
            }
            Ok::<u64, glider_core::GliderError>(words.count())
        }));
    }
    let mut total_words = 0;
    for t in tasks {
        total_words += t.await.expect("worker task panicked")?;
    }
    let elapsed = sw.elapsed();

    let mut report = WorkloadReport::new(
        format!("pipeline baseline w={}", cfg.workers),
        elapsed,
        vec![],
        cluster.metrics().snapshot(),
    );
    report.fact("total_words", total_words);
    Ok(PipelineOutcome {
        report,
        total_words,
        input_bytes,
    })
}

/// Runs the Glider version: filter actions pre-process near data and the
/// workers ingest only matching lines.
///
/// # Errors
///
/// Propagates cluster and storage failures.
pub async fn run_glider(cfg: &PipelineConfig) -> GliderResult<PipelineOutcome> {
    let cluster = Cluster::start(ClusterConfig::default().with_rdma_sim(cfg.rdma)).await?;
    let setup_store = cluster.client().await?;
    let input_bytes = upload_inputs(&setup_store, cfg).await?;
    // Actions are part of the job deployment, not the measured pipeline.
    for w in 0..cfg.workers {
        setup_store
            .create_action(
                &format!("/pipeline/filter-{w}"),
                ActionSpec::new("filter", false)
                    .with_params(format!("src=/pipeline/in-{w};pattern={FILTER_MARKER}")),
            )
            .await?;
    }
    cluster.metrics().reset();

    let sw = Stopwatch::start();
    let mut tasks = Vec::new();
    for w in 0..cfg.workers {
        let store = StoreClient::connect(worker_config(&cluster, cfg)).await?;
        tasks.push(tokio::spawn(async move {
            let action = store
                .lookup_action(&format!("/pipeline/filter-{w}"))
                .await?;
            let mut reader = action.input_stream().await?;
            let mut words = WordCounter::new();
            while let Some(chunk) = reader.next_chunk().await? {
                // All delivered lines already match; count words directly,
                // in parallel with the near-data filtering.
                words.push(&chunk);
            }
            reader.close().await?;
            Ok::<u64, glider_core::GliderError>(words.count())
        }));
    }
    let mut total_words = 0;
    for t in tasks {
        total_words += t.await.expect("worker task panicked")?;
    }
    let elapsed = sw.elapsed();

    let label = if cfg.rdma {
        format!("pipeline glider-rdma w={}", cfg.workers)
    } else {
        format!("pipeline glider w={}", cfg.workers)
    };
    let mut report = WorkloadReport::new(label, elapsed, vec![], cluster.metrics().snapshot());
    report.fact("total_words", total_words);
    Ok(PipelineOutcome {
        report,
        total_words,
        input_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PipelineConfig {
        PipelineConfig {
            workers: 3,
            bytes_per_worker: ByteSize::kib(256),
            selectivity: 0.05,
            seed: 7,
            rdma: false,
            worker_bandwidth_mibps: None,
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn baseline_and_glider_agree_and_glider_ingests_less() {
        let cfg = small();
        let base = run_baseline(&cfg).await.unwrap();
        let glider = run_glider(&cfg).await.unwrap();
        assert!(base.total_words > 0);
        assert_eq!(base.total_words, glider.total_words, "same answer");
        // The headline claim: the filter cut worker ingestion massively.
        let base_in = base.report.metrics.compute_ingress_bytes();
        let glider_in = glider.report.metrics.compute_ingress_bytes();
        assert!(base_in >= cfg.workers as u64 * cfg.bytes_per_worker.as_u64());
        assert!(
            (glider_in as f64) < (base_in as f64) * 0.25,
            "glider {glider_in} vs baseline {base_in}"
        );
        // And the full data still moved — but inside the storage tier.
        assert!(glider.report.metrics.intra_storage_bytes() >= base_in / 2);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn rdma_variant_matches_results() {
        let mut cfg = small();
        cfg.rdma = true;
        let tcp = run_glider(&small()).await.unwrap();
        let rdma = run_glider(&cfg).await.unwrap();
        assert_eq!(tcp.total_words, rdma.total_words);
        assert!(rdma.report.label.contains("rdma"));
    }
}
