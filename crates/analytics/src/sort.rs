//! Fig. 7: distributed sort (§7.3).
//!
//! Sorting is the severe case of serverless shuffling: the temporary data
//! contains the full dataset. The baseline runs two worker stages over
//! files — map (P1) partitions input records to per-reducer files, reduce
//! (P2) reads them back, sorts, writes results — transferring the dataset
//! four times. Glider replaces the reduce stage with `sorter` actions:
//! the map stage streams partitions straight into the actions (which
//! parse in parallel with the mappers), and P2 sorts *inside* the storage
//! cluster, writing result files without shipping the data back — a 50%
//! cut in data movement and the paper's ~50% run-time reduction at 16
//! workers.

use crate::kernels;
use crate::report::WorkloadReport;
use bytes::Bytes;
use glider_core::{ActionSpec, Cluster, ClusterConfig, GliderError, GliderResult, StoreClient};
use glider_util::textgen::{RecordGen, SORT_KEY_LEN, SORT_RECORD_LEN};
use glider_util::{ByteSize, Stopwatch};

/// Configuration of the Fig. 7 experiment.
#[derive(Debug, Clone)]
pub struct SortConfig {
    /// Number of map workers; the reduce side uses the same count (paper
    /// sweeps 1, 2, 4, 8, 16).
    pub workers: usize,
    /// Records per worker (paper: 1 GiB ≈ 10.7M records; scaled down).
    pub records_per_worker: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Default for SortConfig {
    fn default() -> Self {
        SortConfig {
            workers: 4,
            records_per_worker: 50_000,
            seed: 0x50B7,
        }
    }
}

/// Result of one sort run.
#[derive(Debug)]
pub struct SortOutcome {
    /// Timings (phases `P1`, `P2`) and indicator snapshot.
    pub report: WorkloadReport,
    /// Total records in the sorted output.
    pub output_records: u64,
    /// Order-independent checksum of the output records (validation:
    /// equal to the input's and across implementations).
    pub output_checksum: u64,
}

/// Which reducer a record key belongs to: fixed first-byte ranges.
fn partition_of(key: &[u8], reducers: usize) -> usize {
    ((key[0] as usize) * reducers) / 256
}

async fn upload_inputs(store: &StoreClient, cfg: &SortConfig) -> GliderResult<u64> {
    store.create_dir("/sort").await?;
    store.create_dir("/sort/in").await?;
    store.create_dir("/sort/tmp").await?;
    store.create_dir("/sort/out").await?;
    let mut total = 0u64;
    for w in 0..cfg.workers {
        let mut gen = RecordGen::new(cfg.seed + w as u64);
        let data = gen.generate_records(cfg.records_per_worker);
        total += data.len() as u64;
        let file = store.create_file(&format!("/sort/in/{w}")).await?;
        file.write_all(Bytes::from(data)).await?;
    }
    Ok(total)
}

/// Reads, partitions and returns the partition buffers for one mapper.
///
/// Partitioning uses the radix kernel: the partition function depends
/// only on the first key byte, so each record-aligned region is scattered
/// with a count-then-copy pass instead of a per-record append.
async fn map_partitions(
    store: &StoreClient,
    worker: usize,
    reducers: usize,
) -> GliderResult<Vec<Vec<u8>>> {
    let file = store.lookup_file(&format!("/sort/in/{worker}")).await?;
    let mut reader = file.input_stream().await?;
    let mut buffers: Vec<Vec<u8>> = vec![Vec::new(); reducers];
    let mut carry: Vec<u8> = Vec::new();
    while let Some(chunk) = reader.next_chunk().await? {
        carry.extend_from_slice(&chunk);
        let full = (carry.len() / SORT_RECORD_LEN) * SORT_RECORD_LEN;
        kernels::radix_partition_into(&carry[..full], SORT_RECORD_LEN, &mut buffers);
        carry.drain(..full);
    }
    debug_assert!(carry.is_empty(), "input is record-aligned");
    Ok(buffers)
}

async fn validate_outputs(store: &StoreClient, reducers: usize) -> GliderResult<(u64, u64)> {
    let mut records = 0u64;
    let mut checksum = 0u64;
    for r in 0..reducers {
        let file = store.lookup_file(&format!("/sort/out/{r}")).await?;
        let data = file.read_all().await?;
        assert_eq!(data.len() % SORT_RECORD_LEN, 0, "output record-aligned");
        let mut prev: Option<Vec<u8>> = None;
        for rec in data.chunks(SORT_RECORD_LEN) {
            let key = rec[..SORT_KEY_LEN].to_vec();
            if let Some(p) = &prev {
                assert!(p <= &key, "output of reducer {r} must be sorted");
            }
            assert_eq!(partition_of(&key, reducers), r, "record in right range");
            prev = Some(key);
            records += 1;
        }
        checksum =
            checksum.wrapping_add(crate::text::multiset_checksum(data.chunks(SORT_RECORD_LEN)));
    }
    Ok((records, checksum))
}

/// Runs the data-shipping baseline sort (two worker stages over files).
///
/// # Errors
///
/// Propagates cluster and storage failures.
pub async fn run_baseline(cfg: &SortConfig) -> GliderResult<SortOutcome> {
    let cluster = Cluster::start(cluster_config(cfg)).await?;
    let setup = cluster.client().await?;
    upload_inputs(&setup, cfg).await?;
    cluster.metrics().reset();
    let reducers = cfg.workers;

    let mut sw = Stopwatch::start();
    // P1 (map): partition input into per-(worker, reducer) files.
    let mut tasks = Vec::new();
    for w in 0..cfg.workers {
        let store = cluster.client().await?;
        tasks.push(tokio::spawn(async move {
            let buffers = map_partitions(&store, w, reducers).await?;
            for (r, buf) in buffers.into_iter().enumerate() {
                let file = store.create_file(&format!("/sort/tmp/{w}-{r}")).await?;
                file.write_all(Bytes::from(buf)).await?;
            }
            Ok::<(), GliderError>(())
        }));
    }
    for t in tasks {
        t.await.expect("mapper panicked")?;
    }
    sw.lap("P1");

    // P2 (reduce): read the shuffle files back, sort, write results.
    let mut tasks = Vec::new();
    for r in 0..reducers {
        let store = cluster.client().await?;
        let workers = cfg.workers;
        tasks.push(tokio::spawn(async move {
            let mut data = Vec::new();
            for w in 0..workers {
                let file = store.lookup_file(&format!("/sort/tmp/{w}-{r}")).await?;
                let mut reader = file.input_stream().await?;
                while let Some(chunk) = reader.next_chunk().await? {
                    data.extend_from_slice(&chunk);
                }
            }
            // Radix-bucketed stable sort: byte-identical output to the
            // old index sort, without comparing across key-byte buckets.
            let sorted = kernels::sort_records_by_key(&data, SORT_RECORD_LEN, SORT_KEY_LEN);
            let out = store.create_file(&format!("/sort/out/{r}")).await?;
            out.write_all(Bytes::from(sorted)).await?;
            Ok::<(), GliderError>(())
        }));
    }
    for t in tasks {
        t.await.expect("reducer panicked")?;
    }
    sw.lap("P2");
    let elapsed = sw.elapsed();
    let snapshot = cluster.metrics().snapshot();

    let verify = cluster.client().await?;
    let (output_records, output_checksum) = validate_outputs(&verify, reducers).await?;
    let mut report = WorkloadReport::new(
        format!("sort baseline w={}", cfg.workers),
        elapsed,
        sw.laps().to_vec(),
        snapshot,
    );
    report.fact("output_records", output_records);
    Ok(SortOutcome {
        report,
        output_records,
        output_checksum,
    })
}

/// Runs the Glider sort: mappers stream partitions into `sorter` actions;
/// P2 sorts near data and writes results from inside the cluster.
///
/// # Errors
///
/// Propagates cluster and storage failures.
pub async fn run_glider(cfg: &SortConfig) -> GliderResult<SortOutcome> {
    let cluster = Cluster::start(cluster_config(cfg)).await?;
    let setup = cluster.client().await?;
    upload_inputs(&setup, cfg).await?;
    let reducers = cfg.workers;
    setup.create_dir("/sort/actions").await?;
    for r in 0..reducers {
        setup
            .create_action(
                &format!("/sort/actions/{r}"),
                ActionSpec::new("sorter", true).with_params(format!(
                    "out=/sort/out/{r};record={SORT_RECORD_LEN};key={SORT_KEY_LEN}"
                )),
            )
            .await?;
    }
    cluster.metrics().reset();

    let mut sw = Stopwatch::start();
    // P1 (map): stream partitions directly into the sorter actions.
    let mut tasks = Vec::new();
    for w in 0..cfg.workers {
        let store = cluster.client().await?;
        tasks.push(tokio::spawn(async move {
            let buffers = map_partitions(&store, w, reducers).await?;
            for (r, buf) in buffers.into_iter().enumerate() {
                let action = store.lookup_action(&format!("/sort/actions/{r}")).await?;
                let mut out = action.output_stream().await?;
                out.write(Bytes::from(buf)).await?;
                out.close().await?;
            }
            Ok::<(), GliderError>(())
        }));
    }
    for t in tasks {
        t.await.expect("mapper panicked")?;
    }
    sw.lap("P1");

    // P2: trigger each action to sort and write its result file from
    // inside the storage cluster (the driver only reads a tiny summary).
    let mut tasks = Vec::new();
    for r in 0..reducers {
        let store = cluster.client().await?;
        tasks.push(tokio::spawn(async move {
            let action = store.lookup_action(&format!("/sort/actions/{r}")).await?;
            let summary = action.read_all().await?;
            let text = String::from_utf8_lossy(&summary);
            if !text.starts_with("records=") {
                return Err(GliderError::protocol(format!(
                    "unexpected sorter summary: {text:?}"
                )));
            }
            Ok::<(), GliderError>(())
        }));
    }
    for t in tasks {
        t.await.expect("trigger panicked")?;
    }
    sw.lap("P2");
    let elapsed = sw.elapsed();
    let snapshot = cluster.metrics().snapshot();

    let verify = cluster.client().await?;
    let (output_records, output_checksum) = validate_outputs(&verify, reducers).await?;
    let mut report = WorkloadReport::new(
        format!("sort glider w={}", cfg.workers),
        elapsed,
        sw.laps().to_vec(),
        snapshot,
    );
    report.fact("output_records", output_records);
    Ok(SortOutcome {
        report,
        output_records,
        output_checksum,
    })
}

fn cluster_config(cfg: &SortConfig) -> ClusterConfig {
    // Capacity: inputs + shuffle + outputs, with headroom. The baseline's
    // shuffle creates workers² temporary files, each wasting a partial
    // tail block, so budget one extra block per file.
    let bytes = (cfg.workers * cfg.records_per_worker * SORT_RECORD_LEN) as u64;
    let blocks = (bytes * 4).div_ceil(ByteSize::mib(1).as_u64()).max(64)
        + 2 * (cfg.workers * cfg.workers) as u64
        + 4 * cfg.workers as u64;
    ClusterConfig::default()
        .with_data(1, blocks)
        .with_active(2, cfg.workers.max(8) as u64)
}

/// Expected input multiset checksum (for cross-validating outcomes).
pub fn input_checksum(cfg: &SortConfig) -> u64 {
    let mut checksum = 0u64;
    for w in 0..cfg.workers {
        let mut gen = RecordGen::new(cfg.seed + w as u64);
        let data = gen.generate_records(cfg.records_per_worker);
        checksum =
            checksum.wrapping_add(crate::text::multiset_checksum(data.chunks(SORT_RECORD_LEN)));
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SortConfig {
        SortConfig {
            workers: 3,
            records_per_worker: 3_000,
            seed: 21,
        }
    }

    #[test]
    fn partitioning_covers_all_reducers() {
        for reducers in [1, 2, 3, 7, 16] {
            assert_eq!(partition_of(&[0], reducers), 0);
            assert_eq!(partition_of(&[255], reducers), reducers - 1);
            for b in 0..=255u8 {
                let p = partition_of(&[b], reducers);
                assert!(p < reducers);
            }
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn baseline_sorts_correctly() {
        let cfg = small();
        let out = run_baseline(&cfg).await.unwrap();
        assert_eq!(out.output_records as usize, 3 * cfg.records_per_worker);
        assert_eq!(out.output_checksum, input_checksum(&cfg));
        assert!(out.report.phase("P1").is_some());
        assert!(out.report.phase("P2").is_some());
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn glider_sorts_identically_with_less_movement() {
        let cfg = small();
        let base = run_baseline(&cfg).await.unwrap();
        let glider = run_glider(&cfg).await.unwrap();
        assert_eq!(glider.output_records, base.output_records);
        assert_eq!(glider.output_checksum, base.output_checksum);
        // Paper: Glider cuts data movement to half (reads input + writes
        // shuffle once; no read-back, results written near data).
        let b = base.report.tier_crossing_bytes();
        let g = glider.report.tier_crossing_bytes();
        assert!((g as f64) < (b as f64) * 0.65, "glider {g} vs baseline {b}");
    }
}
