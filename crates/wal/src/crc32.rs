//! CRC32 (IEEE 802.3 polynomial, reflected) implemented in safe Rust.
//!
//! The workspace forbids `unsafe_code` and the WAL crate is deliberately
//! dependency-free, so the checksum is a classic table-driven
//! implementation with the table built in a `const fn`. The polynomial
//! and bit order match zlib's `crc32()`, which pins the on-disk format
//! to a well-known reference (check value: `crc32(b"123456789") ==
//! 0xCBF4_3926`).

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0usize;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// CRC32 of `data` in one shot.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(data);
    crc.finish()
}

/// Incremental CRC32, for callers that stream data in pieces
/// (e.g. `fsck` checksumming a block extent chunk by chunk).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state;
        for &byte in data {
            c = TABLE[((c ^ u32::from(byte)) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value_matches_zlib() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut crc = Crc32::new();
            crc.update(&data[..split]);
            crc.update(&data[split..]);
            assert_eq!(crc.finish(), crc32(data));
        }
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"glider");
        let mut data = *b"glider";
        data[2] ^= 0x01;
        assert_ne!(crc32(&data), base);
    }
}
