//! `glider-wal`: a segmented, checksummed, group-committed write-ahead
//! log with snapshot + compaction support.
//!
//! This crate is the bottom of Glider's durability plane (DESIGN.md
//! §15). The metadata server appends one record per applied namespace /
//! registry mutation and replays the log on restart; a periodic
//! snapshot bounds replay time and lets fully-covered segments be
//! deleted.
//!
//! # On-disk format
//!
//! A log directory contains numbered segment files plus at most one
//! snapshot:
//!
//! ```text
//! wal-000001.log
//! wal-000002.log
//! snapshot.bin
//! ```
//!
//! Every segment starts with a 16-byte header:
//!
//! ```text
//! magic "GWAL" (4) | version u16 LE | reserved u16 | first_lsn u64 LE
//! ```
//!
//! followed by back-to-back records:
//!
//! ```text
//! len u32 LE | crc32 u32 LE (over payload) | payload bytes
//! ```
//!
//! Records are assigned monotonically increasing LSNs starting at 1;
//! a segment's header pins the LSN of its first record, so replay can
//! count forward without storing LSNs per record. The snapshot file is
//! written via `snapshot.tmp` + rename (atomic on POSIX) and carries:
//!
//! ```text
//! magic "GSNP" (4) | version u16 | reserved u16 | covered_lsn u64 |
//! payload_len u32 | crc32 u32 | payload
//! ```
//!
//! # Crash semantics
//!
//! Appends go to the tail of the newest segment only, so a crash can
//! tear at most the final record(s) of the final segment. On open, the
//! last segment is scanned and truncated at the first short or
//! checksum-failing record (torn-tail truncation); the same anomaly in
//! any *earlier* segment is real corruption and fails the open. A
//! record is only reported durable once [`Wal::sync_to`] has returned
//! for its LSN (under `FsyncPolicy::Always` every append syncs before
//! returning).
//!
//! # Group commit
//!
//! Concurrent appenders write records under a short mutex and then
//! race to `sync_to(lsn)`. The first caller through the sync mutex
//! fsyncs the segment once and publishes the highest written LSN;
//! everyone who queued behind it observes `synced_lsn >= lsn` and
//! returns without issuing another fsync. Rotation fsyncs the outgoing
//! segment (unless the policy is `Never`), preserving the invariant
//! that only the current segment can hold unsynced bytes.

mod crc32;

pub use crc32::{crc32, Crc32};

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"GWAL";
/// Magic bytes opening the snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"GSNP";
/// On-disk format version stamped into segment and snapshot headers.
pub const FORMAT_VERSION: u16 = 1;
/// Size of the fixed segment header.
pub const SEGMENT_HEADER_LEN: u64 = 16;
/// Size of the per-record header (`len` + `crc`).
pub const RECORD_HEADER_LEN: u64 = 8;
/// Hard cap on a single record payload; a length field above this is
/// treated as tail corruption rather than an allocation request.
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

const SNAPSHOT_FILE: &str = "snapshot.bin";
const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// When appended records are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync before every append returns. Slowest, loses nothing.
    Always,
    /// fsync at most once per interval; a crash may lose the tail of
    /// records appended since the last sync.
    Interval(Duration),
    /// Never fsync (tests / throwaway state only).
    Never,
}

/// Configuration for [`Wal::open`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Directory holding segments and the snapshot. Created if absent.
    pub dir: PathBuf,
    /// Flush policy; see [`FsyncPolicy`].
    pub fsync: FsyncPolicy,
    /// Rotate to a new segment once the current one exceeds this size.
    pub segment_bytes: u64,
}

impl WalOptions {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            segment_bytes: 8 * 1024 * 1024,
        }
    }

    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    pub fn with_segment_bytes(mut self, segment_bytes: u64) -> Self {
        self.segment_bytes = segment_bytes.max(SEGMENT_HEADER_LEN + RECORD_HEADER_LEN);
        self
    }
}

/// Everything recovered by [`Wal::open`].
#[derive(Debug, Default)]
pub struct Replay {
    /// Payload of the newest snapshot, if one exists.
    pub snapshot: Option<Vec<u8>>,
    /// LSN covered by the snapshot (0 when there is none).
    pub snapshot_lsn: u64,
    /// Record payloads with LSN `snapshot_lsn + 1 ..`, in order.
    pub records: Vec<Vec<u8>>,
    /// True when a torn tail was found and truncated away.
    pub truncated: bool,
}

/// Counters exported into the metrics plane (`wal-fsyncs`,
/// `wal-bytes` in Stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// fsync calls issued since open.
    pub fsyncs: u64,
    /// Bytes appended (record headers included) since open.
    pub appended_bytes: u64,
    /// Records appended since open.
    pub records: u64,
    /// Records past the newest snapshot (replay backlog).
    pub since_snapshot: u64,
}

struct Inner {
    file: File,
    seg_index: u64,
    seg_len: u64,
    next_lsn: u64,
}

/// A segmented write-ahead log. Cheap to share behind an `Arc`; all
/// methods take `&self`.
pub struct Wal {
    dir: PathBuf,
    fsync: FsyncPolicy,
    segment_bytes: u64,
    inner: Mutex<Inner>,
    /// Serializes fsyncs (group commit) and snapshot installation.
    sync: Mutex<()>,
    synced_lsn: AtomicU64,
    last_lsn: AtomicU64,
    snapshot_lsn: AtomicU64,
    fsyncs: AtomicU64,
    appended_bytes: AtomicU64,
    records: AtomicU64,
    epoch: Instant,
    last_sync_nanos: AtomicU64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("fsync", &self.fsync)
            .field("last_lsn", &self.last_lsn.load(Ordering::Relaxed))
            .field("synced_lsn", &self.synced_lsn.load(Ordering::Relaxed))
            .finish()
    }
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // The WAL holds no invariant that a panicking appender could have
    // broken mid-update (records are staged in a local buffer and
    // written with one write_all), so poisoning is recoverable.
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:06}.log"))
}

/// fsync the directory itself so created/renamed/deleted entries are
/// durable (POSIX requires this separately from file data syncs).
fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
        else {
            continue;
        };
        let Ok(index) = stem.parse::<u64>() else {
            continue;
        };
        segments.push((index, entry.path()));
    }
    segments.sort_unstable_by_key(|(index, _)| *index);
    Ok(segments)
}

fn create_segment(dir: &Path, index: u64, first_lsn: u64) -> io::Result<File> {
    let path = segment_path(dir, index);
    let mut file = OpenOptions::new()
        .create_new(true)
        .append(true)
        .open(&path)?;
    let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
    header[0..4].copy_from_slice(&SEGMENT_MAGIC);
    header[4..6].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    header[8..16].copy_from_slice(&first_lsn.to_le_bytes());
    file.write_all(&header)?;
    sync_dir(dir)?;
    Ok(file)
}

fn read_segment_first_lsn(path: &Path) -> io::Result<u64> {
    let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
    File::open(path)?.read_exact(&mut header)?;
    check_segment_header(&header, path)?;
    Ok(u64::from_le_bytes([
        header[8], header[9], header[10], header[11], header[12], header[13], header[14],
        header[15],
    ]))
}

fn check_segment_header(header: &[u8], path: &Path) -> io::Result<()> {
    if header[0..4] != SEGMENT_MAGIC {
        return Err(invalid(format!("{}: bad segment magic", path.display())));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != FORMAT_VERSION {
        return Err(invalid(format!(
            "{}: unsupported segment version {version}",
            path.display()
        )));
    }
    Ok(())
}

struct SegScan {
    first_lsn: u64,
    records: Vec<Vec<u8>>,
    /// Byte offset of the end of the last intact record.
    good_len: u64,
    torn: bool,
}

fn scan_segment(path: &Path, allow_torn: bool) -> io::Result<SegScan> {
    let data = fs::read(path)?;
    if data.len() < SEGMENT_HEADER_LEN as usize {
        return Err(invalid(format!("{}: short segment header", path.display())));
    }
    check_segment_header(&data, path)?;
    let first_lsn = u64::from_le_bytes([
        data[8], data[9], data[10], data[11], data[12], data[13], data[14], data[15],
    ]);
    let mut records = Vec::new();
    let mut off = SEGMENT_HEADER_LEN as usize;
    let mut torn = false;
    while off < data.len() {
        if off + RECORD_HEADER_LEN as usize > data.len() {
            torn = true;
            break;
        }
        let len = u32::from_le_bytes([data[off], data[off + 1], data[off + 2], data[off + 3]]);
        let crc = u32::from_le_bytes([data[off + 4], data[off + 5], data[off + 6], data[off + 7]]);
        if len > MAX_RECORD_LEN {
            torn = true;
            break;
        }
        let start = off + RECORD_HEADER_LEN as usize;
        let Some(end) = start.checked_add(len as usize) else {
            torn = true;
            break;
        };
        if end > data.len() {
            torn = true;
            break;
        }
        let payload = &data[start..end];
        if crc32(payload) != crc {
            torn = true;
            break;
        }
        records.push(payload.to_vec());
        off = end;
    }
    if torn && !allow_torn {
        return Err(invalid(format!(
            "{}: corrupt record at offset {off} in non-final segment",
            path.display()
        )));
    }
    Ok(SegScan {
        first_lsn,
        records,
        good_len: off as u64,
        torn,
    })
}

fn read_snapshot(dir: &Path) -> io::Result<Option<(u64, Vec<u8>)>> {
    let path = dir.join(SNAPSHOT_FILE);
    let data = match fs::read(&path) {
        Ok(data) => data,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(err) => return Err(err),
    };
    if data.len() < 24 {
        return Err(invalid(format!(
            "{}: short snapshot header",
            path.display()
        )));
    }
    if data[0..4] != SNAPSHOT_MAGIC {
        return Err(invalid(format!("{}: bad snapshot magic", path.display())));
    }
    let version = u16::from_le_bytes([data[4], data[5]]);
    if version != FORMAT_VERSION {
        return Err(invalid(format!(
            "{}: unsupported snapshot version {version}",
            path.display()
        )));
    }
    let covered_lsn = u64::from_le_bytes([
        data[8], data[9], data[10], data[11], data[12], data[13], data[14], data[15],
    ]);
    let payload_len = u32::from_le_bytes([data[16], data[17], data[18], data[19]]) as usize;
    let crc = u32::from_le_bytes([data[20], data[21], data[22], data[23]]);
    if data.len() != 24 + payload_len {
        return Err(invalid(format!(
            "{}: snapshot length mismatch",
            path.display()
        )));
    }
    let payload = &data[24..];
    if crc32(payload) != crc {
        return Err(invalid(format!(
            "{}: snapshot checksum mismatch",
            path.display()
        )));
    }
    Ok(Some((covered_lsn, payload.to_vec())))
}

impl Wal {
    /// Open (or create) the log at `options.dir`, replaying whatever
    /// survived the last process. Returns the live handle plus the
    /// recovered state.
    pub fn open(options: WalOptions) -> io::Result<(Self, Replay)> {
        fs::create_dir_all(&options.dir)?;
        // A stale snapshot.tmp is a snapshot that never committed.
        let _ = fs::remove_file(options.dir.join(SNAPSHOT_TMP));

        let (snapshot_lsn, snapshot) = match read_snapshot(&options.dir)? {
            Some((lsn, payload)) => (lsn, Some(payload)),
            None => (0, None),
        };

        let mut segments = list_segments(&options.dir)?;
        let mut truncated = false;
        // A crash during segment creation can leave a trailing file
        // shorter than its own header; it holds no records, drop it.
        while let Some((_, path)) = segments.last() {
            if fs::metadata(path)?.len() >= SEGMENT_HEADER_LEN {
                break;
            }
            fs::remove_file(path)?;
            truncated = true;
            segments.pop();
        }

        let mut records = Vec::new();
        let mut next_lsn = snapshot_lsn + 1;
        let mut current: Option<(File, u64, u64)> = None;

        let last_pos = segments.len().wrapping_sub(1);
        for (pos, (index, path)) in segments.iter().enumerate() {
            let is_last = pos == last_pos;
            let scan = scan_segment(path, is_last)?;
            if pos == 0 {
                if scan.first_lsn > next_lsn {
                    return Err(invalid(format!(
                        "{}: log gap: first segment starts at lsn {} but snapshot covers {}",
                        path.display(),
                        scan.first_lsn,
                        snapshot_lsn
                    )));
                }
            } else if scan.first_lsn != next_lsn {
                return Err(invalid(format!(
                    "{}: log gap: segment starts at lsn {} but expected {}",
                    path.display(),
                    scan.first_lsn,
                    next_lsn
                )));
            }
            let mut lsn = scan.first_lsn;
            for record in scan.records {
                if lsn > snapshot_lsn {
                    records.push(record);
                }
                lsn += 1;
            }
            if pos > 0 || lsn > next_lsn {
                next_lsn = lsn;
            }
            if is_last {
                if scan.torn {
                    let file = OpenOptions::new().append(true).open(path)?;
                    file.set_len(scan.good_len)?;
                    file.sync_data()?;
                    truncated = true;
                }
                let file = OpenOptions::new().append(true).open(path)?;
                current = Some((file, *index, scan.good_len));
            }
        }

        let (file, seg_index, seg_len) = match current {
            Some(state) => state,
            None => (
                create_segment(&options.dir, 1, next_lsn)?,
                1,
                SEGMENT_HEADER_LEN,
            ),
        };

        let wal = Self {
            dir: options.dir,
            fsync: options.fsync,
            segment_bytes: options.segment_bytes,
            inner: Mutex::new(Inner {
                file,
                seg_index,
                seg_len,
                next_lsn,
            }),
            sync: Mutex::new(()),
            synced_lsn: AtomicU64::new(next_lsn - 1),
            last_lsn: AtomicU64::new(next_lsn - 1),
            snapshot_lsn: AtomicU64::new(snapshot_lsn),
            fsyncs: AtomicU64::new(0),
            appended_bytes: AtomicU64::new(0),
            records: AtomicU64::new(0),
            epoch: Instant::now(),
            last_sync_nanos: AtomicU64::new(0),
        };
        let replay = Replay {
            snapshot,
            snapshot_lsn,
            records,
            truncated,
        };
        Ok((wal, replay))
    }

    /// Append one record and flush it according to the fsync policy.
    /// Returns the record's LSN; under `FsyncPolicy::Always` the
    /// record is durable when this returns.
    pub fn append(&self, payload: &[u8]) -> io::Result<u64> {
        if payload.len() > MAX_RECORD_LEN as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("wal record of {} bytes exceeds cap", payload.len()),
            ));
        }
        let record_len = RECORD_HEADER_LEN + payload.len() as u64;
        let lsn = {
            let mut inner = lock(&self.inner);
            if inner.seg_len + record_len > self.segment_bytes && inner.seg_len > SEGMENT_HEADER_LEN
            {
                self.rotate(&mut inner)?;
            }
            let mut buf = Vec::with_capacity(record_len as usize);
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(&crc32(payload).to_le_bytes());
            buf.extend_from_slice(payload);
            inner.file.write_all(&buf)?;
            inner.seg_len += record_len;
            let lsn = inner.next_lsn;
            inner.next_lsn += 1;
            self.last_lsn.store(lsn, Ordering::Release);
            self.appended_bytes.fetch_add(record_len, Ordering::Relaxed);
            self.records.fetch_add(1, Ordering::Relaxed);
            lsn
        };
        match self.fsync {
            FsyncPolicy::Always => self.sync_to(lsn)?,
            FsyncPolicy::Interval(interval) => {
                let now = self.elapsed_nanos();
                let last = self.last_sync_nanos.load(Ordering::Relaxed);
                if now.saturating_sub(last) >= interval.as_nanos() as u64 {
                    self.sync_to(lsn)?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(lsn)
    }

    /// Block until the record at `lsn` (and everything before it) is
    /// durable. Concurrent callers coalesce onto one fsync.
    pub fn sync_to(&self, lsn: u64) -> io::Result<()> {
        if self.synced_lsn.load(Ordering::Acquire) >= lsn {
            return Ok(());
        }
        let _guard = lock(&self.sync);
        if self.synced_lsn.load(Ordering::Acquire) >= lsn {
            // Another appender synced past us while we queued.
            return Ok(());
        }
        let (file, high) = {
            let inner = lock(&self.inner);
            (inner.file.try_clone()?, inner.next_lsn - 1)
        };
        file.sync_data()?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.last_sync_nanos
            .store(self.elapsed_nanos(), Ordering::Relaxed);
        self.synced_lsn.store(high, Ordering::Release);
        Ok(())
    }

    /// Flush everything appended so far.
    pub fn sync(&self) -> io::Result<()> {
        let high = self.last_lsn.load(Ordering::Acquire);
        if high == 0 {
            return Ok(());
        }
        self.sync_to(high)
    }

    /// Must be called with `inner` held. Syncs the outgoing segment
    /// (unless policy is `Never`) and starts the next one, keeping the
    /// invariant that only the current segment can be unsynced.
    fn rotate(&self, inner: &mut Inner) -> io::Result<()> {
        if self.fsync != FsyncPolicy::Never {
            inner.file.sync_data()?;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        let index = inner.seg_index + 1;
        inner.file = create_segment(&self.dir, index, inner.next_lsn)?;
        inner.seg_index = index;
        inner.seg_len = SEGMENT_HEADER_LEN;
        Ok(())
    }

    /// Atomically install a snapshot covering every record up to and
    /// including `covered_lsn`, then delete segments whose records are
    /// all covered. The caller serializes the *content* of the
    /// snapshot against its own state; overlap between the snapshot
    /// and records replayed after it is allowed, so restore paths must
    /// be idempotent.
    pub fn install_snapshot(&self, covered_lsn: u64, payload: &[u8]) -> io::Result<()> {
        let _guard = lock(&self.sync);
        let tmp = self.dir.join(SNAPSHOT_TMP);
        let path = self.dir.join(SNAPSHOT_FILE);
        let mut buf = Vec::with_capacity(24 + payload.len());
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&covered_lsn.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(payload).to_le_bytes());
        buf.extend_from_slice(payload);
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&buf)?;
            file.sync_data()?;
        }
        fs::rename(&tmp, &path)?;
        sync_dir(&self.dir)?;
        self.snapshot_lsn.store(covered_lsn, Ordering::Release);
        self.compact(covered_lsn)?;
        Ok(())
    }

    /// Delete segments entirely covered by `covered_lsn`. The current
    /// segment is always kept.
    fn compact(&self, covered_lsn: u64) -> io::Result<()> {
        let current_index = lock(&self.inner).seg_index;
        let segments = list_segments(&self.dir)?;
        let mut removed = false;
        for (pos, (index, path)) in segments.iter().enumerate() {
            if *index == current_index {
                break;
            }
            // A segment is fully covered iff its successor starts at
            // or below covered_lsn + 1 (successor first_lsn is this
            // segment's last lsn + 1).
            let covered = match segments.get(pos + 1) {
                Some((_, next_path)) => read_segment_first_lsn(next_path)? <= covered_lsn + 1,
                None => false,
            };
            if covered {
                fs::remove_file(path)?;
                removed = true;
            } else {
                break;
            }
        }
        if removed {
            sync_dir(&self.dir)?;
        }
        Ok(())
    }

    /// LSN of the most recently appended record (0 before any append).
    pub fn last_lsn(&self) -> u64 {
        self.last_lsn.load(Ordering::Acquire)
    }

    /// Highest LSN known durable.
    pub fn synced_lsn(&self) -> u64 {
        self.synced_lsn.load(Ordering::Acquire)
    }

    /// LSN covered by the newest installed snapshot.
    pub fn snapshot_lsn(&self) -> u64 {
        self.snapshot_lsn.load(Ordering::Acquire)
    }

    pub fn stats(&self) -> WalStats {
        let last = self.last_lsn.load(Ordering::Relaxed);
        let snap = self.snapshot_lsn.load(Ordering::Relaxed);
        WalStats {
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            appended_bytes: self.appended_bytes.load(Ordering::Relaxed),
            records: self.records.load(Ordering::Relaxed),
            since_snapshot: last.saturating_sub(snap),
        }
    }

    fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("glider-wal-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn opts(dir: &Path) -> WalOptions {
        WalOptions::new(dir).with_fsync(FsyncPolicy::Never)
    }

    #[test]
    fn append_then_replay_round_trips() {
        let dir = test_dir("round-trip");
        let payloads: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; usize::from(i) * 7 + 1]).collect();
        {
            let (wal, replay) = Wal::open(opts(&dir)).unwrap();
            assert!(replay.records.is_empty());
            assert!(replay.snapshot.is_none());
            for (i, payload) in payloads.iter().enumerate() {
                let lsn = wal.append(payload).unwrap();
                assert_eq!(lsn, i as u64 + 1);
            }
            wal.sync().unwrap();
        }
        let (wal, replay) = Wal::open(opts(&dir)).unwrap();
        assert_eq!(replay.records, payloads);
        assert!(!replay.truncated);
        assert_eq!(wal.last_lsn(), payloads.len() as u64);
    }

    #[test]
    fn empty_payload_records_are_valid() {
        let dir = test_dir("empty-payload");
        {
            let (wal, _) = Wal::open(opts(&dir)).unwrap();
            wal.append(b"").unwrap();
            wal.append(b"x").unwrap();
        }
        let (_, replay) = Wal::open(opts(&dir)).unwrap();
        assert_eq!(replay.records, vec![Vec::new(), b"x".to_vec()]);
    }

    #[test]
    fn torn_tail_is_truncated_and_log_stays_usable() {
        let dir = test_dir("torn-tail");
        {
            let (wal, _) = Wal::open(opts(&dir)).unwrap();
            for i in 0..5u8 {
                wal.append(&[i; 32]).unwrap();
            }
        }
        // Chop mid-way through the last record.
        let path = segment_path(&dir, 1);
        let len = fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 10).unwrap();
        drop(file);

        let (wal, replay) = Wal::open(opts(&dir)).unwrap();
        assert!(replay.truncated);
        assert_eq!(replay.records.len(), 4);
        assert_eq!(replay.records[3], vec![3u8; 32]);
        // The tail is writable again and replays cleanly.
        let lsn = wal.append(&[9u8; 8]).unwrap();
        assert_eq!(lsn, 5);
        drop(wal);
        let (_, replay) = Wal::open(opts(&dir)).unwrap();
        assert!(!replay.truncated);
        assert_eq!(replay.records.len(), 5);
        assert_eq!(replay.records[4], vec![9u8; 8]);
    }

    #[test]
    fn corrupt_crc_in_tail_drops_the_record() {
        let dir = test_dir("bad-crc");
        {
            let (wal, _) = Wal::open(opts(&dir)).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
        }
        let path = segment_path(&dir, 1);
        let mut data = fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF;
        fs::write(&path, &data).unwrap();

        let (_, replay) = Wal::open(opts(&dir)).unwrap();
        assert!(replay.truncated);
        assert_eq!(replay.records, vec![b"first".to_vec()]);
    }

    #[test]
    fn corruption_in_non_final_segment_is_fatal() {
        let dir = test_dir("mid-corrupt");
        {
            let (wal, _) = Wal::open(opts(&dir).with_segment_bytes(64)).unwrap();
            for i in 0..8u8 {
                wal.append(&[i; 24]).unwrap();
            }
        }
        assert!(list_segments(&dir).unwrap().len() >= 2);
        let path = segment_path(&dir, 1);
        let mut data = fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF;
        fs::write(&path, &data).unwrap();
        let err = Wal::open(opts(&dir)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rotation_spreads_records_across_segments() {
        let dir = test_dir("rotate");
        let payloads: Vec<Vec<u8>> = (0..30u8).map(|i| vec![i; 40]).collect();
        {
            let (wal, _) = Wal::open(opts(&dir).with_segment_bytes(128)).unwrap();
            for payload in &payloads {
                wal.append(payload).unwrap();
            }
        }
        assert!(list_segments(&dir).unwrap().len() > 3);
        let (_, replay) = Wal::open(opts(&dir).with_segment_bytes(128)).unwrap();
        assert_eq!(replay.records, payloads);
    }

    #[test]
    fn snapshot_compacts_and_replay_resumes_past_it() {
        let dir = test_dir("snapshot");
        {
            let (wal, _) = Wal::open(opts(&dir).with_segment_bytes(128)).unwrap();
            for i in 0..20u8 {
                wal.append(&[i; 40]).unwrap();
            }
            let cut = wal.last_lsn();
            wal.install_snapshot(cut, b"state-at-20").unwrap();
            for i in 20..25u8 {
                wal.append(&[i; 4]).unwrap();
            }
            assert!(list_segments(&dir).unwrap().len() < 20);
        }
        let (wal, replay) = Wal::open(opts(&dir).with_segment_bytes(128)).unwrap();
        assert_eq!(replay.snapshot.as_deref(), Some(&b"state-at-20"[..]));
        assert_eq!(replay.snapshot_lsn, 20);
        assert_eq!(
            replay.records,
            (20..25u8).map(|i| vec![i; 4]).collect::<Vec<_>>()
        );
        assert_eq!(wal.last_lsn(), 25);
        assert_eq!(wal.snapshot_lsn(), 20);
    }

    #[test]
    fn snapshot_mid_segment_skips_covered_prefix_on_replay() {
        let dir = test_dir("snapshot-mid");
        {
            let (wal, _) = Wal::open(opts(&dir)).unwrap();
            for i in 0..10u8 {
                wal.append(&[i]).unwrap();
            }
            wal.install_snapshot(6, b"six").unwrap();
        }
        let (_, replay) = Wal::open(opts(&dir)).unwrap();
        assert_eq!(replay.snapshot_lsn, 6);
        assert_eq!(
            replay.records,
            (6..10u8).map(|i| vec![i]).collect::<Vec<_>>()
        );
    }

    #[test]
    fn missing_middle_segment_is_a_gap_error() {
        let dir = test_dir("gap");
        {
            let (wal, _) = Wal::open(opts(&dir).with_segment_bytes(64)).unwrap();
            for i in 0..9u8 {
                wal.append(&[i; 24]).unwrap();
            }
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3);
        fs::remove_file(&segments[1].1).unwrap();
        let err = Wal::open(opts(&dir).with_segment_bytes(64)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("gap"), "{err}");
    }

    #[test]
    fn fsync_policy_always_syncs_every_append() {
        let dir = test_dir("fsync-always");
        let (wal, _) = Wal::open(WalOptions::new(&dir).with_fsync(FsyncPolicy::Always)).unwrap();
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        assert_eq!(wal.synced_lsn(), 2);
        assert!(wal.stats().fsyncs >= 2);
    }

    #[test]
    fn fsync_policy_never_never_syncs() {
        let dir = test_dir("fsync-never");
        let (wal, _) = Wal::open(opts(&dir)).unwrap();
        wal.append(b"a").unwrap();
        assert_eq!(wal.stats().fsyncs, 0);
        assert_eq!(wal.synced_lsn(), 0);
        // An explicit sync still works.
        wal.sync().unwrap();
        assert_eq!(wal.synced_lsn(), 1);
    }

    #[test]
    fn sync_to_coalesces_once_synced() {
        let dir = test_dir("coalesce");
        let (wal, _) = Wal::open(opts(&dir)).unwrap();
        let lsn1 = wal.append(b"a").unwrap();
        let lsn2 = wal.append(b"b").unwrap();
        wal.sync_to(lsn2).unwrap();
        let before = wal.stats().fsyncs;
        // Already covered by the earlier sync: no new fsync.
        wal.sync_to(lsn1).unwrap();
        wal.sync_to(lsn2).unwrap();
        assert_eq!(wal.stats().fsyncs, before);
    }

    #[test]
    fn oversized_records_are_rejected() {
        let dir = test_dir("oversize");
        let (wal, _) = Wal::open(opts(&dir)).unwrap();
        let big = vec![0u8; MAX_RECORD_LEN as usize + 1];
        let err = wal.append(&big).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn stale_snapshot_tmp_is_cleaned_up() {
        let dir = test_dir("stale-tmp");
        fs::write(dir.join(SNAPSHOT_TMP), b"half-written").unwrap();
        let (_, replay) = Wal::open(opts(&dir)).unwrap();
        assert!(replay.snapshot.is_none());
        assert!(!dir.join(SNAPSHOT_TMP).exists());
    }

    #[test]
    fn short_trailing_segment_is_discarded() {
        let dir = test_dir("short-trailing");
        {
            let (wal, _) = Wal::open(opts(&dir)).unwrap();
            wal.append(b"alive").unwrap();
        }
        // Simulate a crash during segment creation: header half-written.
        fs::write(segment_path(&dir, 2), b"GWAL").unwrap();
        let (wal, replay) = Wal::open(opts(&dir)).unwrap();
        assert!(replay.truncated);
        assert_eq!(replay.records, vec![b"alive".to_vec()]);
        assert_eq!(wal.append(b"next").unwrap(), 2);
    }

    #[test]
    fn concurrent_appends_keep_all_records() {
        let dir = test_dir("concurrent");
        let (wal, _) = Wal::open(opts(&dir)).unwrap();
        let wal = std::sync::Arc::new(wal);
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let wal = wal.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50u8 {
                    wal.append(&[t, i]).unwrap();
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        wal.sync().unwrap();
        assert_eq!(wal.last_lsn(), 200);
        drop(wal);
        let (_, replay) = Wal::open(opts(&dir)).unwrap();
        assert_eq!(replay.records.len(), 200);
        let mut counts = [0u32; 4];
        for record in &replay.records {
            counts[usize::from(record[0])] += 1;
        }
        assert_eq!(counts, [50; 4]);
    }
}
