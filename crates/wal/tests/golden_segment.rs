//! Pins the WAL on-disk segment format, the same way the wire-format
//! golden fixtures pin the RPC encoding. If this test fails you have
//! changed the durable format: bump `FORMAT_VERSION`, write migration
//! notes in DESIGN.md §15, and regenerate the fixture deliberately.

use glider_wal::{FsyncPolicy, Wal, WalOptions};
use std::path::PathBuf;

const GOLDEN_HEX: &str = include_str!("golden/segment.hex");

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("glider-wal-golden-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn golden_payloads() -> Vec<Vec<u8>> {
    vec![
        b"glider-wal golden record one".to_vec(),
        (0u8..16).collect(),
        Vec::new(),
    ]
}

fn hex_encode(data: &[u8]) -> String {
    data.iter().map(|b| format!("{b:02x}")).collect()
}

fn hex_decode(hex: &str) -> Vec<u8> {
    let hex = hex.trim();
    (0..hex.len() / 2)
        .map(|i| u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).expect("valid hex"))
        .collect()
}

#[test]
fn segment_bytes_match_golden_fixture() {
    let dir = test_dir("encode");
    let (wal, _) =
        Wal::open(WalOptions::new(&dir).with_fsync(FsyncPolicy::Never)).expect("open wal");
    for payload in golden_payloads() {
        wal.append(&payload).expect("append");
    }
    drop(wal);
    let data = std::fs::read(dir.join("wal-000001.log")).expect("read segment");
    assert_eq!(
        hex_encode(&data),
        GOLDEN_HEX.trim(),
        "WAL segment encoding changed — this breaks replay of existing logs"
    );
}

#[test]
fn golden_fixture_replays_to_known_records() {
    let dir = test_dir("decode");
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("wal-000001.log"), hex_decode(GOLDEN_HEX)).expect("write");
    let (wal, replay) = Wal::open(WalOptions::new(&dir).with_fsync(FsyncPolicy::Never))
        .expect("open wal over fixture");
    assert_eq!(replay.records, golden_payloads());
    assert!(!replay.truncated);
    assert!(replay.snapshot.is_none());
    assert_eq!(wal.last_lsn(), 3);
}
