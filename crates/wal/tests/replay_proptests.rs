//! Crash-point proptests: whatever point a crash tears the log at,
//! replay yields an exact prefix of the appended op stream, and every
//! record that was fully on disk before the crash point survives.

use glider_wal::{FsyncPolicy, Wal, WalOptions, RECORD_HEADER_LEN, SEGMENT_HEADER_LEN};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const SEGMENT_BYTES: u64 = 256;

static CASE: AtomicU64 = AtomicU64::new(0);

fn case_dir(name: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "glider-wal-prop-{}-{name}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn write_all(dir: &PathBuf, payloads: &[Vec<u8>]) {
    let (wal, _) = Wal::open(
        WalOptions::new(dir)
            .with_fsync(FsyncPolicy::Never)
            .with_segment_bytes(SEGMENT_BYTES),
    )
    .expect("open wal");
    for payload in payloads {
        wal.append(payload).expect("append");
    }
    wal.sync().expect("sync");
}

fn reopen(dir: &PathBuf) -> glider_wal::Replay {
    let (_, replay) = Wal::open(
        WalOptions::new(dir)
            .with_fsync(FsyncPolicy::Never)
            .with_segment_bytes(SEGMENT_BYTES),
    )
    .expect("reopen wal");
    replay
}

fn last_segment(dir: &PathBuf) -> PathBuf {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read_dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segments.sort();
    segments.pop().expect("at least one segment")
}

/// Parse the end offset of every record in one intact segment. This
/// deliberately re-implements the record framing (`len | crc |
/// payload`) so the test would catch the library and the format
/// drifting together.
fn record_ends(segment: &[u8]) -> Vec<u64> {
    let mut ends = Vec::new();
    let mut off = SEGMENT_HEADER_LEN as usize;
    while off + (RECORD_HEADER_LEN as usize) <= segment.len() {
        let len = u32::from_le_bytes([
            segment[off],
            segment[off + 1],
            segment[off + 2],
            segment[off + 3],
        ]) as usize;
        off += RECORD_HEADER_LEN as usize + len;
        assert!(off <= segment.len(), "intact segment parsed past its end");
        ends.push(off as u64);
    }
    ends
}

fn payload_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncate the tail segment at an arbitrary byte (a kill -9 mid
    /// write): replay returns exactly the records that were fully on
    /// disk — no more, no fewer, in order.
    #[test]
    fn truncation_replays_the_exact_on_disk_prefix(
        payloads in payload_strategy(),
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = case_dir("truncate");
        write_all(&dir, &payloads);

        let tail_path = last_segment(&dir);
        let tail = std::fs::read(&tail_path).expect("read tail segment");
        let ends = record_ends(&tail);
        let span = tail.len() as u64 - SEGMENT_HEADER_LEN;
        let cut = SEGMENT_HEADER_LEN + (span as f64 * cut_frac) as u64;
        let survivors_in_tail = ends.iter().filter(|end| **end <= cut).count();
        let expected = payloads.len() - ends.len() + survivors_in_tail;

        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&tail_path)
            .expect("open for truncation");
        file.set_len(cut).expect("set_len");
        drop(file);

        let replay = reopen(&dir);
        prop_assert_eq!(&replay.records, &payloads[..expected]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flip one arbitrary byte in the tail segment's record area:
    /// replay still yields a clean prefix of the op stream (the flip
    /// is caught by the length guard or the CRC, never surfaced as a
    /// corrupt record).
    #[test]
    fn tail_bitflip_still_replays_a_prefix(
        payloads in payload_strategy(),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dir = case_dir("bitflip");
        write_all(&dir, &payloads);

        let tail_path = last_segment(&dir);
        let mut tail = std::fs::read(&tail_path).expect("read tail segment");
        prop_assume!(tail.len() as u64 > SEGMENT_HEADER_LEN);
        let span = tail.len() - SEGMENT_HEADER_LEN as usize;
        let pos = SEGMENT_HEADER_LEN as usize + ((span as f64 * pos_frac) as usize).min(span - 1);
        tail[pos] ^= 1 << bit;
        std::fs::write(&tail_path, &tail).expect("write corrupted tail");

        let replay = reopen(&dir);
        prop_assert!(replay.records.len() <= payloads.len());
        prop_assert_eq!(&replay.records, &payloads[..replay.records.len()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Drive a tiny KV state machine through the log, crash at a
    /// random record boundary, and check the replayed state equals the
    /// state after applying exactly the surviving prefix of ops.
    #[test]
    fn kv_state_machine_recovers_prefix_state(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..60),
        keep_frac in 0.0f64..1.0,
    ) {
        fn apply(state: &mut HashMap<u8, u8>, record: &[u8]) {
            match record {
                [0, key, value] => { state.insert(*key, *value); }
                [1, key] => { state.remove(key); }
                other => panic!("unknown op record {other:?}"),
            }
        }

        let dir = case_dir("kv");
        let records: Vec<Vec<u8>> = ops
            .iter()
            .map(|(key, value, is_put)| {
                if *is_put { vec![0, *key, *value] } else { vec![1, *key] }
            })
            .collect();
        write_all(&dir, &records);

        // Crash: drop a suffix of the tail segment at a record boundary.
        let tail_path = last_segment(&dir);
        let tail = std::fs::read(&tail_path).expect("read tail segment");
        let mut boundaries = vec![SEGMENT_HEADER_LEN];
        boundaries.extend(record_ends(&tail));
        let keep = ((boundaries.len() - 1) as f64 * keep_frac) as usize;
        let cut = boundaries[keep.min(boundaries.len() - 1)];
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&tail_path)
            .expect("open for truncation");
        file.set_len(cut).expect("set_len");
        drop(file);

        let replay = reopen(&dir);
        let mut expected = HashMap::new();
        for record in &records[..replay.records.len()] {
            apply(&mut expected, record);
        }
        let mut recovered = HashMap::new();
        for record in &replay.records {
            apply(&mut recovered, record);
        }
        prop_assert_eq!(recovered, expected);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
