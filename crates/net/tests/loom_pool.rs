//! Loom model of the `BytesPool` freelist discipline.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p glider-net --test
//! loom_pool --release` (requires the `loom` dev-dependency, added by
//! the CI loom job).
//!
//! Like `loom_pending.rs`, this models the *algorithm* with loom's
//! primitives rather than driving the production types: the pool is a
//! mutex-protected freelist plus relaxed hit/miss counters, and the
//! properties checked are the ones the production `BytesPool` relies on:
//!
//! - a buffer is owned by exactly one side at a time (no freelist entry
//!   is ever handed to two getters — the aliasing guarantee);
//! - buffers are conserved: everything put is either on the freelist or
//!   was deliberately dropped at the `max_free` bound;
//! - `hits + misses` equals the number of gets, under every interleaving.

#![cfg(loom)]

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

/// The pool algorithm under test: freelist of tokens + counters.
/// Each "buffer" is a token with a unique identity.
struct ModelPool {
    free: Mutex<Vec<u64>>,
    max_free: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    next_fresh: AtomicU64,
}

impl ModelPool {
    fn new(max_free: usize, prime: Vec<u64>) -> Self {
        ModelPool {
            free: Mutex::new(prime),
            max_free,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            next_fresh: AtomicU64::new(1000),
        }
    }

    fn get(&self) -> u64 {
        let reused = self.free.lock().unwrap().pop();
        match reused {
            Some(token) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                token
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.next_fresh.fetch_add(1, Ordering::Relaxed)
            }
        }
    }

    /// Returns whether the token was kept (freelist below the bound).
    fn put(&self, token: u64) -> bool {
        let mut free = self.free.lock().unwrap();
        if free.len() >= self.max_free {
            return false;
        }
        free.push(token);
        true
    }
}

#[test]
fn concurrent_get_put_never_duplicates_a_buffer() {
    loom::model(|| {
        // Two primed buffers, two threads each doing get -> put.
        let pool = Arc::new(ModelPool::new(4, vec![1, 2]));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let pool = Arc::clone(&pool);
                thread::spawn(move || {
                    let token = pool.get();
                    let kept = pool.put(token);
                    (token, kept)
                })
            })
            .collect();
        let results: Vec<(u64, bool)> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        // No two getters ever observed the same buffer.
        assert_ne!(results[0].0, results[1].0, "freelist handed out an alias");

        // Counter discipline: every get is exactly one hit or miss.
        let gets = 2;
        let hits = pool.hits.load(Ordering::Relaxed);
        let misses = pool.misses.load(Ordering::Relaxed);
        assert_eq!(hits + misses, gets);

        // Conservation: every kept token is on the freelist exactly once.
        let free = pool.free.lock().unwrap();
        for (token, kept) in &results {
            let copies = free.iter().filter(|t| *t == token).count();
            assert_eq!(copies, usize::from(*kept), "token {token} conservation");
        }
    });
}

#[test]
fn the_max_free_bound_holds_under_races() {
    loom::model(|| {
        // Freelist bound of 1 with two concurrent returns: at most one
        // may be kept, whatever the interleaving.
        let pool = Arc::new(ModelPool::new(1, vec![]));
        let handles: Vec<_> = [10u64, 20]
            .into_iter()
            .map(|token| {
                let pool = Arc::clone(&pool);
                thread::spawn(move || pool.put(token))
            })
            .collect();
        let kept: usize = handles
            .into_iter()
            .map(|h| usize::from(h.join().unwrap()))
            .sum();
        assert_eq!(kept, 1, "exactly one return fits a bound of 1");
        assert_eq!(pool.free.lock().unwrap().len(), 1);
    });
}

#[test]
fn a_racing_get_and_put_agree_on_ownership() {
    loom::model(|| {
        // One primed buffer; one thread gets while another puts a new
        // one. The getter receives either the primed buffer or a fresh
        // allocation — never the buffer the putter still owns before its
        // put completes, and never a double-handed freelist entry.
        let pool = Arc::new(ModelPool::new(4, vec![7]));
        let getter = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || pool.get())
        };
        let putter = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || pool.put(42))
        };
        let got = getter.join().unwrap();
        assert!(putter.join().unwrap());
        assert!(
            got == 7 || got >= 1000 || got == 42,
            "got a token from nowhere: {got}"
        );
        let free = pool.free.lock().unwrap();
        // Whatever happened, the got token is no longer on the freelist.
        assert!(
            !free.iter().any(|t| *t == got),
            "token {got} is both owned and free"
        );
    });
}
