//! Loom model of the RPC pending-reply map.
//!
//! The client channel keeps `Arc<Mutex<Option<HashMap<id, waiter>>>>`
//! (see `src/rpc.rs`): callers insert a waiter before sending, the
//! reader task removes-and-completes it on response, the caller
//! withdraws it on timeout, and connection close `take()`s the whole map
//! and fails every leftover. The safety properties loom checks across
//! all interleavings:
//!
//! - **exactly-once completion**: a response racing a timeout never
//!   completes the same waiter twice, and never resurrects a withdrawn
//!   one;
//! - **no lost waiter**: once `take()` runs, every in-flight waiter is
//!   failed and every later insert is refused (`None` map ⇒ Closed) —
//!   a caller can never block forever on a waiter nobody owns.
//!
//! This file only compiles under `RUSTFLAGS="--cfg loom"`; the `loom`
//! crate is provisioned by the CI `loom` job (`cargo add loom --dev`)
//! rather than carried as a permanent dependency of the workspace.
#![cfg(loom)]

use loom::sync::{Arc, Mutex};
use loom::thread;
use std::collections::HashMap;

/// Outcome delivered to a waiter; stands in for the tokio oneshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Response,
    ClosedInFlight,
}

/// One waiter cell: completed at most once, observed by the caller.
type Waiter = Arc<Mutex<Option<Outcome>>>;

/// The modeled pending table, shaped exactly like `rpc.rs`'s `Pending`.
type Pending = Arc<Mutex<Option<HashMap<u64, Waiter>>>>;

fn complete(w: &Waiter, outcome: Outcome) {
    let mut slot = w.lock().unwrap();
    assert!(slot.is_none(), "waiter completed twice: {:?} then {outcome:?}", *slot);
    *slot = Some(outcome);
}

/// `channel_call`'s insert step: `Some(map)` accepts, `None` refuses.
fn try_insert(pending: &Pending, id: u64, w: Waiter) -> bool {
    match pending.lock().unwrap().as_mut() {
        Some(map) => {
            map.insert(id, w);
            true
        }
        None => false,
    }
}

/// `reader_task`'s response step: remove-then-complete outside the lock.
fn deliver_response(pending: &Pending, id: u64) {
    let waiter = pending.lock().unwrap().as_mut().and_then(|m| m.remove(&id));
    if let Some(w) = waiter {
        complete(&w, Outcome::Response);
    }
}

/// `channel_call`'s timeout step: withdraw without completing.
fn withdraw(pending: &Pending, id: u64) {
    pending.lock().unwrap().as_mut().map(|m| m.remove(&id));
}

/// `reader_task`'s shutdown step: take the map, fail the leftovers.
fn close(pending: &Pending) {
    let map = pending.lock().unwrap().take();
    if let Some(map) = map {
        for (_, w) in map {
            complete(&w, Outcome::ClosedInFlight);
        }
    }
}

fn new_pending() -> Pending {
    Arc::new(Mutex::new(Some(HashMap::new())))
}

#[test]
fn response_and_timeout_race_completes_at_most_once() {
    loom::model(|| {
        let pending = new_pending();
        let waiter: Waiter = Arc::new(Mutex::new(None));
        assert!(try_insert(&pending, 1, Arc::clone(&waiter)));

        let reader = {
            let pending = Arc::clone(&pending);
            thread::spawn(move || deliver_response(&pending, 1))
        };
        // The caller times out concurrently with the response arriving.
        withdraw(&pending, 1);
        reader.join().unwrap();

        // Either the response won (waiter completed once) or the
        // withdrawal won (waiter never completed) — `complete` itself
        // asserts the never-twice half.
        let outcome = *waiter.lock().unwrap();
        assert!(
            outcome.is_none() || outcome == Some(Outcome::Response),
            "timed-out waiter must not observe {outcome:?}"
        );
        // Whoever lost finds nothing: the entry is gone.
        assert!(pending.lock().unwrap().as_mut().unwrap().remove(&1).is_none());
    });
}

#[test]
fn close_fails_every_in_flight_waiter_and_refuses_new_ones() {
    loom::model(|| {
        let pending = new_pending();
        let in_flight: Waiter = Arc::new(Mutex::new(None));
        assert!(try_insert(&pending, 1, Arc::clone(&in_flight)));

        let late: Waiter = Arc::new(Mutex::new(None));
        let inserter = {
            let pending = Arc::clone(&pending);
            let late = Arc::clone(&late);
            thread::spawn(move || try_insert(&pending, 2, late))
        };
        let closer = {
            let pending = Arc::clone(&pending);
            thread::spawn(move || close(&pending))
        };
        let inserted = inserter.join().unwrap();
        closer.join().unwrap();

        // The pre-close waiter is always failed exactly once...
        assert_eq!(*in_flight.lock().unwrap(), Some(Outcome::ClosedInFlight));
        // ...and the racing insert either lost (refused: caller sees
        // Closed immediately) or won and was then failed by close —
        // never inserted-and-forgotten.
        let late_outcome = *late.lock().unwrap();
        if inserted {
            assert_eq!(late_outcome, Some(Outcome::ClosedInFlight));
        } else {
            assert_eq!(late_outcome, None);
        }
        // After close the map stays None: all future calls fail fast.
        assert!(pending.lock().unwrap().is_none());
        assert!(!try_insert(&pending, 3, Arc::new(Mutex::new(None))));
    });
}

#[test]
fn two_callers_two_responses_all_complete() {
    loom::model(|| {
        let pending = new_pending();
        let w1: Waiter = Arc::new(Mutex::new(None));
        let w2: Waiter = Arc::new(Mutex::new(None));
        assert!(try_insert(&pending, 1, Arc::clone(&w1)));
        assert!(try_insert(&pending, 2, Arc::clone(&w2)));

        let r1 = {
            let pending = Arc::clone(&pending);
            thread::spawn(move || deliver_response(&pending, 1))
        };
        deliver_response(&pending, 2);
        r1.join().unwrap();

        assert_eq!(*w1.lock().unwrap(), Some(Outcome::Response));
        assert_eq!(*w2.lock().unwrap(), Some(Outcome::Response));
        assert!(pending.lock().unwrap().as_ref().unwrap().is_empty());
    });
}
