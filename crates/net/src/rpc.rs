//! Multiplexing RPC client and server over framed connections.

use crate::conn::{connect, BoundListener, FrameRx, FrameTx};
use crate::retry::{op_class, JitterRng, RetryPolicy};
use crate::stats::build_stats;
use futures::future::BoxFuture;
use glider_metrics::{MetricsRegistry, OpKind, Tier};
use glider_proto::frame::Frame;
use glider_proto::message::{Request, RequestBody, Response, ResponseBody};
use glider_proto::types::PeerTier;
use glider_proto::{ErrorCode, GliderError, GliderResult};
use glider_trace::{Span, SpanContext};
use glider_util::TokenBucket;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tokio::sync::{mpsc, oneshot};
use tokio::task::JoinSet;

/// Maps the wire-level peer tier to the metrics tier.
pub fn tier_of(peer: PeerTier) -> Tier {
    match peer {
        PeerTier::Compute => Tier::Compute,
        PeerTier::Storage => Tier::Storage,
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

type Pending = Arc<Mutex<Option<HashMap<u64, oneshot::Sender<GliderResult<ResponseBody>>>>>>;

/// A multiplexing, self-healing RPC client.
///
/// Cloning is cheap; all clones share one *supervised* connection. Any
/// number of [`RpcClient::call`]s may be in flight concurrently —
/// responses are matched by request id. This is what lets the client
/// library keep a window of data operations outstanding ("batched async
/// operations", paper §7.2).
///
/// Fault tolerance (DESIGN.md §10):
/// - every call runs under a per-class deadline from the client's
///   [`RetryPolicy`];
/// - idempotent calls that fail with a transient error are retried with
///   full-jitter backoff up to the retry budget;
/// - a dropped connection fails its in-flight calls with
///   [`ErrorCode::Closed`], then the next call redials with backoff and
///   re-runs the `Hello` handshake — a bounced server is a blip, not a
///   poisoned client.
///
/// An optional [`TokenBucket`] throttles bulk payload bytes in both
/// directions, modelling the limited bandwidth of serverless workers.
#[derive(Debug, Clone)]
pub struct RpcClient {
    inner: Arc<ClientInner>,
}

/// One live connection: the writer queue plus the in-flight table. The
/// table is set to `None` permanently when the reader exits, which is how
/// callers detect a dead channel.
#[derive(Debug)]
struct Channel {
    req_tx: mpsc::Sender<Request>,
    pending: Pending,
}

impl Channel {
    fn is_open(&self) -> bool {
        !self.req_tx.is_closed() && self.pending.lock().is_some()
    }
}

#[derive(Debug)]
struct ClientInner {
    addr: String,
    tier: PeerTier,
    throttle: Option<Arc<TokenBucket>>,
    metrics: Option<Arc<MetricsRegistry>>,
    policy: RetryPolicy,
    next_id: AtomicU64,
    /// The current channel; swapped atomically on reconnection.
    chan: Mutex<Arc<Channel>>,
    /// Serializes redials so concurrent callers heal the connection once.
    redial: tokio::sync::Mutex<()>,
}

impl RpcClient {
    /// Connects to `addr` and performs the `Hello` handshake declaring
    /// `tier`.
    ///
    /// # Errors
    ///
    /// Returns an error if the dial or the handshake fails.
    pub async fn connect(
        addr: &str,
        tier: PeerTier,
        throttle: Option<Arc<TokenBucket>>,
    ) -> GliderResult<Self> {
        RpcClient::connect_with_metrics(addr, tier, throttle, None).await
    }

    /// Like [`RpcClient::connect`], but also records client-side transport
    /// indicators (writer batch occupancy, flush latency, retry and
    /// reconnect counts) into `metrics`.
    ///
    /// # Errors
    ///
    /// See [`RpcClient::connect`].
    pub async fn connect_with_metrics(
        addr: &str,
        tier: PeerTier,
        throttle: Option<Arc<TokenBucket>>,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> GliderResult<Self> {
        RpcClient::connect_with_options(addr, tier, throttle, metrics, RetryPolicy::default()).await
    }

    /// Fully parameterized connect: custom [`RetryPolicy`] for deadlines,
    /// retry budget, and reconnection behavior.
    ///
    /// # Errors
    ///
    /// See [`RpcClient::connect`]. The *initial* dial is not retried, so
    /// misconfigured addresses fail fast with their real error.
    pub async fn connect_with_options(
        addr: &str,
        tier: PeerTier,
        throttle: Option<Arc<TokenBucket>>,
        metrics: Option<Arc<MetricsRegistry>>,
        policy: RetryPolicy,
    ) -> GliderResult<Self> {
        let next_id = AtomicU64::new(1);
        let handshake_deadline = policy.metadata_deadline;
        let chan = dial_channel(addr, tier, &metrics, &next_id, handshake_deadline).await?;
        Ok(RpcClient {
            inner: Arc::new(ClientInner {
                addr: addr.to_string(),
                tier,
                throttle,
                metrics,
                policy,
                next_id,
                chan: Mutex::new(Arc::new(chan)),
                redial: tokio::sync::Mutex::new(()),
            }),
        })
    }

    /// Connects from inside the storage tier (actions, servers). Intra-
    /// storage connections are never throttled and are metered as
    /// storage→storage traffic by the receiving server.
    ///
    /// # Errors
    ///
    /// See [`RpcClient::connect`].
    pub async fn connect_intra_storage(addr: &str) -> GliderResult<Self> {
        RpcClient::connect(addr, PeerTier::Storage, None).await
    }

    /// The address this client dialed.
    pub fn addr(&self) -> &str {
        &self.inner.addr
    }

    /// The client's fault-tolerance policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.inner.policy
    }

    /// Issues one RPC and awaits its response. Error responses from the
    /// server are converted back into [`GliderError`]s.
    ///
    /// The call runs in a fresh `client.call` root span whose trace id
    /// rides the request header, so the server-side spans of this
    /// operation join the same trace.
    ///
    /// # Errors
    ///
    /// Returns the server-reported error, [`ErrorCode::Timeout`] when the
    /// per-class deadline elapsed, or [`ErrorCode::Closed`] when the
    /// connection dropped and could not be healed. Idempotent operations
    /// have transient failures retried within the policy's budget first.
    pub async fn call(&self, body: RequestBody) -> GliderResult<ResponseBody> {
        self.call_traced(SpanContext::NONE, body).await
    }

    /// Like [`RpcClient::call`], but the `client.call` span becomes a
    /// child of `parent` (pass [`SpanContext::NONE`] to start a fresh
    /// trace). This is how intra-storage hops — an action reading blocks
    /// on behalf of a client request — keep the originating trace id.
    ///
    /// # Errors
    ///
    /// See [`RpcClient::call`].
    pub async fn call_traced(
        &self,
        parent: SpanContext,
        body: RequestBody,
    ) -> GliderResult<ResponseBody> {
        // child_of(NONE) degenerates to a root, so both entry points share
        // this path; the span closes (and reports) when the call returns.
        let span = Span::child_of(parent, "client.call");
        let trace_id = span.trace_id();
        // Throttle pacing is intentional latency and therefore sits
        // outside the deadline window, once per call (retried idempotent
        // ops never carry outbound payloads).
        if let Some(bucket) = &self.inner.throttle {
            let out = body.payload_len();
            if out > 0 {
                bucket.acquire(out).await;
            }
        }
        let policy = &self.inner.policy;
        let deadline = policy.deadline(op_class(&body));
        let idempotent = body.is_idempotent();
        let mut rng = JitterRng::seeded(trace_id ^ self.inner.next_id.load(Ordering::Relaxed));
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let err = match self.ensure_channel().await {
                Ok(chan) => {
                    let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
                    match channel_call(
                        &chan,
                        id,
                        trace_id,
                        body.clone(),
                        deadline,
                        &self.inner.addr,
                    )
                    .await
                    {
                        Ok(resp) => {
                            if let Some(bucket) = &self.inner.throttle {
                                let inn = resp.payload_len();
                                if inn > 0 {
                                    bucket.acquire(inn).await;
                                }
                            }
                            // Server-reported errors surface here; they
                            // never trigger a redial (the transport is
                            // fine) but retryable ones re-enter the loop.
                            match resp.into_result() {
                                Ok(body) => return Ok(body),
                                Err(e) => e,
                            }
                        }
                        Err(e) => e,
                    }
                }
                Err(e) => e,
            };
            if !idempotent || !err.is_retryable() || !policy.allows(attempts) {
                return Err(err);
            }
            if let Some(m) = &self.inner.metrics {
                m.rpc_retry();
            }
            // A short-lived span per retry, so the trace tree shows how
            // often (and why) a call was re-issued.
            drop(Span::child_of(span.context(), "client.retry"));
            tokio::time::sleep(policy.backoff(attempts, &mut rng)).await;
        }
    }

    /// Issues an RPC that must answer [`ResponseBody::Ok`].
    ///
    /// # Errors
    ///
    /// Returns [`ErrorCode::Protocol`] for any other success body, or the
    /// server's error.
    pub async fn call_ok(&self, body: RequestBody) -> GliderResult<()> {
        match self.call(body).await? {
            ResponseBody::Ok => Ok(()),
            other => Err(GliderError::protocol(format!(
                "expected Ok response, got {other:?}"
            ))),
        }
    }

    /// Returns a healthy channel, redialing (with backoff and a fresh
    /// handshake) if the current one died. Redials are serialized so a
    /// burst of concurrent calls heals the connection exactly once.
    async fn ensure_channel(&self) -> GliderResult<Arc<Channel>> {
        {
            let chan = Arc::clone(&self.inner.chan.lock());
            if chan.is_open() {
                return Ok(chan);
            }
        }
        let _guard = self.inner.redial.lock().await;
        let chan = Arc::clone(&self.inner.chan.lock());
        if chan.is_open() {
            return Ok(chan); // another caller already healed it
        }
        let policy = &self.inner.policy;
        let mut rng =
            JitterRng::seeded(self.inner.next_id.fetch_add(1, Ordering::Relaxed) ^ 0x9E37_79B9);
        let mut last = GliderError::closed(format!("rpc to {}", self.inner.addr));
        for attempt in 1..=policy.reconnect_attempts.max(1) {
            match dial_channel(
                &self.inner.addr,
                self.inner.tier,
                &self.inner.metrics,
                &self.inner.next_id,
                policy.metadata_deadline,
            )
            .await
            {
                Ok(chan) => {
                    let chan = Arc::new(chan);
                    *self.inner.chan.lock() = Arc::clone(&chan);
                    if let Some(m) = &self.inner.metrics {
                        m.rpc_reconnect();
                    }
                    return Ok(chan);
                }
                Err(e) => last = e,
            }
            if attempt < policy.reconnect_attempts {
                tokio::time::sleep(policy.backoff(attempt, &mut rng)).await;
            }
        }
        Err(GliderError::new(
            ErrorCode::Closed,
            format!(
                "rpc to {} closed; reconnect failed: {last}",
                self.inner.addr
            ),
        ))
    }
}

/// Dials `addr`, spawns the connection's writer/reader tasks, and performs
/// the `Hello` handshake. Used for the initial connect and every redial.
async fn dial_channel(
    addr: &str,
    tier: PeerTier,
    metrics: &Option<Arc<MetricsRegistry>>,
    next_id: &AtomicU64,
    handshake_deadline: Duration,
) -> GliderResult<Channel> {
    let (tx, rx) = connect(addr).await?;
    let pending: Pending = Arc::new(Mutex::new(Some(HashMap::new())));
    let (req_tx, req_rx) = mpsc::channel::<Request>(256);

    tokio::spawn(writer_task(tx, req_rx, metrics.clone()));
    tokio::spawn(reader_task(rx, Arc::clone(&pending)));

    let chan = Channel { req_tx, pending };
    let id = next_id.fetch_add(1, Ordering::Relaxed);
    let resp = channel_call(
        &chan,
        id,
        0,
        RequestBody::Hello { tier },
        handshake_deadline,
        addr,
    )
    .await?;
    match resp.into_result()? {
        ResponseBody::Ok => Ok(chan),
        other => Err(GliderError::protocol(format!(
            "unexpected handshake response: {other:?}"
        ))),
    }
}

/// One attempt of one RPC on one channel, bounded by `deadline`. Returns
/// the raw response body — converting server-reported errors is left to
/// the caller so transport failures and semantic failures stay distinct.
async fn channel_call(
    chan: &Channel,
    id: u64,
    trace_id: u64,
    body: RequestBody,
    deadline: Duration,
    addr: &str,
) -> GliderResult<ResponseBody> {
    let op = body.op_name();
    let (done_tx, done_rx) = oneshot::channel();
    {
        let mut guard = chan.pending.lock();
        match guard.as_mut() {
            Some(map) => {
                map.insert(id, done_tx);
            }
            None => return Err(GliderError::closed(format!("rpc to {addr}"))),
        }
    }
    if chan
        .req_tx
        .send(Request { id, trace_id, body })
        .await
        .is_err()
    {
        chan.pending.lock().as_mut().map(|m| m.remove(&id));
        return Err(GliderError::closed(format!("rpc to {addr}")));
    }
    match tokio::time::timeout(deadline, done_rx).await {
        Err(_) => {
            // Deadline elapsed: withdraw the waiter so a straggling
            // response cannot leak a pending-table entry.
            chan.pending.lock().as_mut().map(|m| m.remove(&id));
            Err(GliderError::timeout(format!(
                "{op} rpc to {addr} after {deadline:?}"
            )))
        }
        Ok(Err(_)) => Err(GliderError::closed(format!("rpc to {addr}"))),
        Ok(Ok(res)) => res,
    }
}

/// Most frames coalesced into one vectored write by the writer loops.
///
/// The paper's batched-async-operations window (§7.2) makes clients keep
/// many small data operations in flight, so the writer's queue regularly
/// holds bursts; draining them into a single write amortizes the syscall.
const WRITE_BATCH_FRAMES: usize = 32;

/// Payload-byte bound for one coalesced write, so batching never delays a
/// bulk transfer behind an ever-growing vectored write.
const WRITE_BATCH_BYTES: u64 = 1024 * 1024;

/// Starting from `first` (obtained by a blocking `recv`), opportunistically
/// drains already-queued items into `batch` with `try_recv`, stopping at
/// the frame-count and payload-byte bounds so one vectored write stays a
/// bounded unit of work.
fn collect_batch<T: Into<Frame>>(first: T, rx: &mut mpsc::Receiver<T>, batch: &mut Vec<Frame>) {
    let first = first.into();
    let mut bytes = first.payload_len();
    batch.push(first);
    while batch.len() < WRITE_BATCH_FRAMES && bytes < WRITE_BATCH_BYTES {
        match rx.try_recv() {
            Ok(item) => {
                let frame = item.into();
                bytes += frame.payload_len();
                batch.push(frame);
            }
            Err(_) => break,
        }
    }
}

async fn writer_task(
    mut tx: FrameTx,
    mut req_rx: mpsc::Receiver<Request>,
    metrics: Option<Arc<MetricsRegistry>>,
) {
    let mut batch: Vec<Frame> = Vec::with_capacity(WRITE_BATCH_FRAMES);
    while let Some(req) = req_rx.recv().await {
        collect_batch(req, &mut req_rx, &mut batch);
        let frames = batch.len() as u64;
        let start = Instant::now();
        if tx.send_batch(&mut batch).await.is_err() {
            break;
        }
        if let Some(m) = &metrics {
            m.record_batch_occupancy(frames);
            m.record_latency(OpKind::WriterFlush, start.elapsed());
        }
    }
}

async fn reader_task(mut rx: FrameRx, pending: Pending) {
    loop {
        match rx.recv().await {
            Ok(Some(Frame::Response(resp))) => {
                let waiter = pending.lock().as_mut().and_then(|m| m.remove(&resp.id));
                if let Some(w) = waiter {
                    let _ = w.send(Ok(resp.body));
                }
            }
            Ok(Some(Frame::Request(_))) => {
                // Servers never send requests; drop and keep reading.
            }
            Ok(None) | Err(_) => break,
        }
    }
    // Fail everything still in flight and refuse new calls.
    let map = pending.lock().take();
    if let Some(map) = map {
        for (_, w) in map {
            let _ = w.send(Err(GliderError::new(
                ErrorCode::Closed,
                "connection closed with request in flight",
            )));
        }
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Per-request context passed to handlers.
#[derive(Debug, Clone, Copy)]
pub struct ConnCtx {
    /// The tier the peer declared in its handshake.
    pub peer: PeerTier,
    /// A server-unique id for the connection.
    pub conn_id: u64,
    /// The end-to-end trace id of this request (0 when untraced).
    pub trace_id: u64,
    /// The span id of the server's `rpc.dispatch` span, for handlers to
    /// parent their own spans under.
    pub parent_span: u64,
}

impl ConnCtx {
    /// The dispatch span's context, for building handler child spans.
    pub fn span_context(&self) -> SpanContext {
        SpanContext {
            trace_id: self.trace_id,
            span_id: self.parent_span,
        }
    }
}

/// The latency class a request is recorded under; `None` for requests
/// that are not measured (handshake, stats introspection).
fn op_kind(body: &RequestBody) -> Option<OpKind> {
    Some(match body {
        RequestBody::CreateNode { .. } => OpKind::MetaCreateNode,
        RequestBody::LookupNode { .. } => OpKind::MetaLookupNode,
        RequestBody::DeleteNode { .. } => OpKind::MetaDeleteNode,
        RequestBody::ListChildren { .. } => OpKind::MetaListChildren,
        RequestBody::AddBlock { .. } => OpKind::MetaAddBlock,
        RequestBody::AddBlocks { .. } => OpKind::MetaAddBlocks,
        // Replacement is an allocation with a swap; it shares the
        // add-block latency class rather than growing the OpKind set.
        RequestBody::ReplaceBlock { .. } => OpKind::MetaAddBlock,
        RequestBody::CommitBlock { .. } => OpKind::MetaCommitBlock,
        RequestBody::CommitBlocks { .. } => OpKind::MetaCommitBlocks,
        RequestBody::RegisterServer { .. } => OpKind::MetaRegisterServer,
        RequestBody::WriteBlock { .. } => OpKind::BlockWrite,
        RequestBody::ReadBlock { .. } => OpKind::BlockRead,
        RequestBody::FreeBlocks { .. } => OpKind::BlockFree,
        RequestBody::ActionCreate { .. }
        | RequestBody::ActionDelete { .. }
        | RequestBody::StreamOpen { .. }
        | RequestBody::StreamChunk { .. }
        | RequestBody::StreamFetch { .. }
        | RequestBody::StreamClose { .. } => OpKind::ActionInvoke,
        // Handshake, introspection, and liveness beacons are not measured
        // as operations (heartbeats would drown real metadata latencies).
        RequestBody::Hello { .. } | RequestBody::Stats | RequestBody::Heartbeat { .. } => {
            return None
        }
    })
}

/// Server-side request dispatch.
///
/// `handle` is given an owned `Arc<Self>` so the returned future can be
/// `'static` and run on its own task (long-blocking operations such as
/// action stream fetches must not stall the connection).
pub trait RpcHandler: Send + Sync + 'static {
    /// Handles one request and produces a response body.
    fn handle(
        self: Arc<Self>,
        ctx: ConnCtx,
        body: RequestBody,
    ) -> BoxFuture<'static, GliderResult<ResponseBody>>;
}

/// Handle to a running RPC server. Aborts the accept loop (and through it
/// every connection task) when shut down or dropped.
#[derive(Debug)]
pub struct ServerHandle {
    addr: String,
    accept_task: tokio::task::JoinHandle<()>,
}

impl ServerHandle {
    /// The dialable address of the server.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stops accepting and tears down all connection tasks.
    pub fn shutdown(&self) {
        self.accept_task.abort();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.accept_task.abort();
    }
}

/// Starts serving `listener` with `handler`.
///
/// `server_tier` is the tier of this server for transfer metering (always
/// [`Tier::Storage`] for Glider servers); payload bytes of inbound requests
/// and outbound responses are recorded against the peer's declared tier.
pub fn serve(
    listener: BoundListener,
    handler: Arc<dyn RpcHandler>,
    metrics: Arc<MetricsRegistry>,
    server_tier: Tier,
) -> ServerHandle {
    let addr = listener.local_addr().to_string();
    let accept_task = tokio::spawn(accept_loop(listener, handler, metrics, server_tier));
    ServerHandle { addr, accept_task }
}

async fn accept_loop(
    mut listener: BoundListener,
    handler: Arc<dyn RpcHandler>,
    metrics: Arc<MetricsRegistry>,
    server_tier: Tier,
) {
    let mut conns = JoinSet::new();
    let conn_ids = AtomicU64::new(1);
    loop {
        tokio::select! {
            accepted = listener.accept() => {
                match accepted {
                    Ok((tx, rx)) => {
                        let conn_id = conn_ids.fetch_add(1, Ordering::Relaxed);
                        conns.spawn(connection_task(
                            tx,
                            rx,
                            Arc::clone(&handler),
                            Arc::clone(&metrics),
                            server_tier,
                            conn_id,
                        ));
                    }
                    Err(_) => break,
                }
            }
            // Reap finished connection tasks so the set does not grow.
            Some(_) = conns.join_next(), if !conns.is_empty() => {}
        }
    }
}

async fn connection_task(
    tx: FrameTx,
    mut rx: FrameRx,
    handler: Arc<dyn RpcHandler>,
    metrics: Arc<MetricsRegistry>,
    server_tier: Tier,
    conn_id: u64,
) {
    // Handshake: the first request must be Hello.
    let (hello_id, peer) = match rx.recv().await {
        Ok(Some(Frame::Request(Request {
            id,
            body: RequestBody::Hello { tier },
            ..
        }))) => (id, tier),
        _ => return,
    };

    let (resp_tx, resp_rx) = mpsc::channel::<Response>(256);
    let writer = tokio::spawn(response_writer(
        tx,
        resp_rx,
        Arc::clone(&metrics),
        server_tier,
        tier_of(peer),
    ));

    let _ = resp_tx
        .send(Response {
            id: hello_id,
            body: ResponseBody::Ok,
        })
        .await;

    let peer_tier = tier_of(peer);
    let mut requests = JoinSet::new();
    loop {
        tokio::select! {
            frame = rx.recv() => {
                match frame {
                    Ok(Some(Frame::Request(req))) => {
                        let inbound = req.body.payload_len();
                        if inbound > 0 {
                            metrics.record_transfer(peer_tier, server_tier, inbound);
                        }
                        // Stats is answered here, uniformly for every
                        // server, from the connection's own registry;
                        // handlers never see it.
                        if matches!(req.body, RequestBody::Stats) {
                            let resp_tx = resp_tx.clone();
                            let metrics = Arc::clone(&metrics);
                            requests.spawn(async move {
                                let body =
                                    ResponseBody::Stats(build_stats(&metrics.snapshot()));
                                let _ = resp_tx.send(Response { id: req.id, body }).await;
                            });
                            continue;
                        }
                        let handler = Arc::clone(&handler);
                        let resp_tx = resp_tx.clone();
                        let metrics = Arc::clone(&metrics);
                        let kind = op_kind(&req.body);
                        requests.spawn(async move {
                            // The server half of the trace: continues the
                            // trace id carried in the request header.
                            let span = Span::remote("rpc.dispatch", req.trace_id);
                            let ctx = ConnCtx {
                                peer,
                                conn_id,
                                trace_id: span.trace_id(),
                                parent_span: span.context().span_id,
                            };
                            let start = Instant::now();
                            let body = match handler.handle(ctx, req.body).await {
                                Ok(body) => body,
                                Err(err) => ResponseBody::from_error(&err),
                            };
                            // Latency is recorded server-side only, so
                            // in-process setups sharing one registry do
                            // not double-count an op per hop.
                            if let Some(kind) = kind {
                                metrics.record_latency(kind, start.elapsed());
                            }
                            drop(span);
                            let _ = resp_tx.send(Response { id: req.id, body }).await;
                        });
                    }
                    Ok(Some(Frame::Response(_))) => {
                        // Clients never send responses; ignore.
                    }
                    Ok(None) | Err(_) => break,
                }
            }
            Some(_) = requests.join_next(), if !requests.is_empty() => {}
        }
    }
    drop(resp_tx);
    // Let in-flight requests finish before closing the writer.
    while requests.join_next().await.is_some() {}
    let _ = writer.await;
}

async fn response_writer(
    mut tx: FrameTx,
    mut resp_rx: mpsc::Receiver<Response>,
    metrics: Arc<MetricsRegistry>,
    server_tier: Tier,
    peer_tier: Tier,
) {
    let mut batch: Vec<Frame> = Vec::with_capacity(WRITE_BATCH_FRAMES);
    while let Some(resp) = resp_rx.recv().await {
        collect_batch(resp, &mut resp_rx, &mut batch);
        for frame in &batch {
            let outbound = frame.payload_len();
            if outbound > 0 {
                metrics.record_transfer(server_tier, peer_tier, outbound);
            }
        }
        let frames = batch.len() as u64;
        let start = Instant::now();
        if tx.send_batch(&mut batch).await.is_err() {
            break;
        }
        metrics.record_batch_occupancy(frames);
        metrics.record_latency(OpKind::WriterFlush, start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use glider_proto::types::BlockId;

    /// Echo-style handler: Writes report their length, Reads return zeros,
    /// everything else gets Ok.
    struct TestHandler;

    impl RpcHandler for TestHandler {
        fn handle(
            self: Arc<Self>,
            _ctx: ConnCtx,
            body: RequestBody,
        ) -> BoxFuture<'static, GliderResult<ResponseBody>> {
            Box::pin(async move {
                match body {
                    RequestBody::WriteBlock { data, .. } => Ok(ResponseBody::Written {
                        n: data.len() as u64,
                    }),
                    RequestBody::ReadBlock { len, .. } => Ok(ResponseBody::Data {
                        seq: 0,
                        bytes: Bytes::from(vec![0u8; len as usize]),
                        eof: true,
                    }),
                    RequestBody::LookupNode { path } => {
                        Err(GliderError::not_found(format!("node {path}")))
                    }
                    _ => Ok(ResponseBody::Ok),
                }
            })
        }
    }

    async fn start(addr: &str) -> (ServerHandle, Arc<MetricsRegistry>) {
        let metrics = MetricsRegistry::new();
        let listener = crate::conn::bind(addr).await.unwrap();
        let handle = serve(
            listener,
            Arc::new(TestHandler),
            Arc::clone(&metrics),
            Tier::Storage,
        );
        (handle, metrics)
    }

    #[tokio::test]
    async fn call_round_trip_over_tcp() {
        let (server, metrics) = start("127.0.0.1:0").await;
        let client = RpcClient::connect(server.addr(), PeerTier::Compute, None)
            .await
            .unwrap();
        let resp = client
            .call(RequestBody::WriteBlock {
                block_id: BlockId(1),
                offset: 0,
                data: Bytes::from_static(b"hello world"),
            })
            .await
            .unwrap();
        assert_eq!(resp, ResponseBody::Written { n: 11 });
        let snap = metrics.snapshot();
        assert_eq!(snap.transferred(Tier::Compute, Tier::Storage), 11);
    }

    #[tokio::test]
    async fn call_round_trip_over_mem() {
        let (server, metrics) = start("mem://rpc-test-mem").await;
        let client = RpcClient::connect_intra_storage(server.addr())
            .await
            .unwrap();
        let resp = client
            .call(RequestBody::ReadBlock {
                block_id: BlockId(1),
                offset: 0,
                len: 100,
            })
            .await
            .unwrap();
        match resp {
            ResponseBody::Data { bytes, eof, .. } => {
                assert_eq!(bytes.len(), 100);
                assert!(eof);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Intra-storage traffic is metered storage->storage.
        let snap = metrics.snapshot();
        assert_eq!(snap.intra_storage_bytes(), 100);
        assert_eq!(snap.tier_crossing_bytes(), 0);
    }

    #[tokio::test]
    async fn server_errors_surface_as_glider_errors() {
        let (server, _metrics) = start("127.0.0.1:0").await;
        let client = RpcClient::connect(server.addr(), PeerTier::Compute, None)
            .await
            .unwrap();
        let err = client
            .call(RequestBody::LookupNode {
                path: "/missing".to_string(),
            })
            .await
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::NotFound);
    }

    #[tokio::test]
    async fn many_concurrent_calls_multiplex() {
        let (server, _metrics) = start("127.0.0.1:0").await;
        let client = RpcClient::connect(server.addr(), PeerTier::Compute, None)
            .await
            .unwrap();
        let mut joins = Vec::new();
        for i in 0..64u64 {
            let c = client.clone();
            joins.push(tokio::spawn(async move {
                let resp = c
                    .call(RequestBody::ReadBlock {
                        block_id: BlockId(i),
                        offset: 0,
                        len: i,
                    })
                    .await
                    .unwrap();
                match resp {
                    ResponseBody::Data { bytes, .. } => assert_eq!(bytes.len() as u64, i),
                    other => panic!("unexpected {other:?}"),
                }
            }));
        }
        for j in joins {
            j.await.unwrap();
        }
    }

    #[tokio::test]
    async fn bursty_writes_batch_without_loss() {
        let (server, metrics) = start("127.0.0.1:0").await;
        let client = RpcClient::connect(server.addr(), PeerTier::Compute, None)
            .await
            .unwrap();
        // 256 concurrent 1 KiB writes: far more than one writer batch, so
        // the loops must coalesce correctly without dropping or double-
        // counting frames.
        let mut joins = Vec::new();
        for i in 0..256u64 {
            let c = client.clone();
            joins.push(tokio::spawn(async move {
                let resp = c
                    .call(RequestBody::WriteBlock {
                        block_id: BlockId(i),
                        offset: 0,
                        data: Bytes::from(vec![i as u8; 1024]),
                    })
                    .await
                    .unwrap();
                assert_eq!(resp, ResponseBody::Written { n: 1024 });
            }));
        }
        for j in joins {
            j.await.unwrap();
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.transferred(Tier::Compute, Tier::Storage), 256 * 1024);
    }

    #[tokio::test]
    async fn shutdown_closes_connections() {
        let (server, _metrics) = start("127.0.0.1:0").await;
        let client = RpcClient::connect(server.addr(), PeerTier::Compute, None)
            .await
            .unwrap();
        client
            .call(RequestBody::AddBlock { node_id: 1.into() })
            .await
            .unwrap();
        server.shutdown();
        // The abort propagates asynchronously: poll until the connection
        // observably fails instead of sleeping a fixed (flaky) interval.
        let mut last = None;
        for _ in 0..200 {
            match client
                .call(RequestBody::AddBlock { node_id: 1.into() })
                .await
            {
                Ok(_) => tokio::time::sleep(std::time::Duration::from_millis(5)).await,
                Err(err) => {
                    last = Some(err);
                    break;
                }
            }
        }
        let err = last.expect("server kept answering after shutdown");
        assert_eq!(err.code(), ErrorCode::Closed);
    }

    #[tokio::test]
    async fn bounced_server_heals_transparently() {
        // Bounce a mem:// server: the dropped connection must fail fast,
        // then the next calls redial, re-handshake, and succeed — without
        // rebuilding the client.
        let addr = "mem://rpc-test-bounce";
        let (server, _metrics) = start(addr).await;
        let client_metrics = MetricsRegistry::new();
        let client = RpcClient::connect_with_metrics(
            addr,
            PeerTier::Compute,
            None,
            Some(Arc::clone(&client_metrics)),
        )
        .await
        .unwrap();
        client
            .call(RequestBody::AddBlock { node_id: 1.into() })
            .await
            .unwrap();
        server.shutdown();
        drop(server);
        // Wait until the old connection observably died.
        for _ in 0..200 {
            if client
                .call(RequestBody::AddBlock { node_id: 1.into() })
                .await
                .is_err()
            {
                break;
            }
            tokio::time::sleep(Duration::from_millis(5)).await;
        }
        // Server comes back on the same address.
        let (server2, _metrics2) = start(addr).await;
        // The poll above may leave the client mid-backoff; give the dial a
        // few chances (each call redials internally).
        let mut healed = false;
        for _ in 0..50 {
            if client
                .call(RequestBody::AddBlock { node_id: 1.into() })
                .await
                .is_ok()
            {
                healed = true;
                break;
            }
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        assert!(healed, "client did not heal after the server came back");
        assert!(
            client_metrics.snapshot().rpc_reconnects > 0,
            "reconnect was not counted"
        );
        drop(server2);
    }

    #[tokio::test]
    async fn idempotent_calls_retry_within_budget() {
        // A handler that fails the first two lookups with a retryable
        // error, then succeeds: the client must absorb the failures.
        struct Flaky(AtomicU64);
        impl RpcHandler for Flaky {
            fn handle(
                self: Arc<Self>,
                _ctx: ConnCtx,
                body: RequestBody,
            ) -> BoxFuture<'static, GliderResult<ResponseBody>> {
                Box::pin(async move {
                    match body {
                        RequestBody::LookupNode { .. } => {
                            if self.0.fetch_add(1, Ordering::Relaxed) < 2 {
                                Err(GliderError::unavailable("lookup shard"))
                            } else {
                                Ok(ResponseBody::Ok)
                            }
                        }
                        // Non-idempotent ops surface the error untouched.
                        RequestBody::CommitBlock { .. } => {
                            Err(GliderError::unavailable("commit path"))
                        }
                        _ => Ok(ResponseBody::Ok),
                    }
                })
            }
        }
        let metrics = MetricsRegistry::new();
        let listener = crate::conn::bind("127.0.0.1:0").await.unwrap();
        let server = serve(
            listener,
            Arc::new(Flaky(AtomicU64::new(0))),
            Arc::clone(&metrics),
            Tier::Storage,
        );
        let client_metrics = MetricsRegistry::new();
        let client = RpcClient::connect_with_metrics(
            server.addr(),
            PeerTier::Compute,
            None,
            Some(Arc::clone(&client_metrics)),
        )
        .await
        .unwrap();
        client
            .call(RequestBody::LookupNode { path: "/x".into() })
            .await
            .expect("idempotent lookup should retry past transient errors");
        assert_eq!(client_metrics.snapshot().rpc_retries, 2);
        // Non-idempotent: the typed retryable error reaches the caller.
        let err = client
            .call(RequestBody::CommitBlock {
                node_id: 1.into(),
                block_id: BlockId(1),
                len: 1,
            })
            .await
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::Unavailable);
        assert!(err.is_retryable(), "caller keeps the retryable signal");
        assert_eq!(client_metrics.snapshot().rpc_retries, 2, "no auto-retry");
    }

    #[tokio::test]
    async fn deadline_times_out_stalled_calls() {
        // A handler that never answers reads: the per-class deadline must
        // convert the stall into ErrorCode::Timeout.
        struct Stall;
        impl RpcHandler for Stall {
            fn handle(
                self: Arc<Self>,
                _ctx: ConnCtx,
                body: RequestBody,
            ) -> BoxFuture<'static, GliderResult<ResponseBody>> {
                Box::pin(async move {
                    if matches!(body, RequestBody::ReadBlock { .. }) {
                        futures::future::pending::<()>().await;
                    }
                    Ok(ResponseBody::Ok)
                })
            }
        }
        let metrics = MetricsRegistry::new();
        let listener = crate::conn::bind("127.0.0.1:0").await.unwrap();
        let server = serve(
            listener,
            Arc::new(Stall),
            Arc::clone(&metrics),
            Tier::Storage,
        );
        let policy = RetryPolicy {
            data_deadline: Duration::from_millis(50),
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let client =
            RpcClient::connect_with_options(server.addr(), PeerTier::Compute, None, None, policy)
                .await
                .unwrap();
        let start = Instant::now();
        let err = client
            .call(RequestBody::ReadBlock {
                block_id: BlockId(1),
                offset: 0,
                len: 1,
            })
            .await
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::Timeout);
        // Two attempts of 50ms plus one bounded backoff.
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[tokio::test]
    async fn stats_rpc_reports_server_histograms() {
        let (server, metrics) = start("127.0.0.1:0").await;
        let client = RpcClient::connect(server.addr(), PeerTier::Compute, None)
            .await
            .unwrap();
        for i in 0..10u64 {
            client
                .call(RequestBody::WriteBlock {
                    block_id: BlockId(i),
                    offset: 0,
                    data: Bytes::from_static(b"x"),
                })
                .await
                .unwrap();
        }
        let resp = client.call(RequestBody::Stats).await.unwrap();
        let payload = match resp {
            ResponseBody::Stats(p) => p,
            other => panic!("unexpected {other:?}"),
        };
        let write = payload
            .ops
            .iter()
            .find(|o| o.name == OpKind::BlockWrite.name())
            .unwrap();
        assert_eq!(write.buckets.iter().sum::<u64>(), 10);
        // The write latencies also landed in the server registry directly.
        let snap = metrics.snapshot();
        assert_eq!(snap.op_latency(OpKind::BlockWrite).count(), 10);
        assert!(snap.op_latency(OpKind::BlockWrite).p50() > 0);
        // Hello and Stats themselves are not measured as ops.
        assert_eq!(snap.op_latency(OpKind::BlockRead).count(), 0);
        // Response flushes were batched and timed.
        assert!(snap.batch_occupancy.count() > 0);
        assert!(snap.op_latency(OpKind::WriterFlush).count() > 0);
    }

    #[tokio::test]
    async fn client_metrics_observe_writer_batches() {
        let (server, _metrics) = start("127.0.0.1:0").await;
        let client_metrics = MetricsRegistry::new();
        let client = RpcClient::connect_with_metrics(
            server.addr(),
            PeerTier::Compute,
            None,
            Some(Arc::clone(&client_metrics)),
        )
        .await
        .unwrap();
        client
            .call(RequestBody::AddBlock { node_id: 1.into() })
            .await
            .unwrap();
        let snap = client_metrics.snapshot();
        assert!(snap.batch_occupancy.count() > 0);
        assert!(snap.op_latency(OpKind::WriterFlush).count() > 0);
        // The client does not record op latency; servers do.
        assert_eq!(snap.op_latency(OpKind::MetaAddBlock).count(), 0);
    }

    #[tokio::test]
    async fn dispatch_spans_continue_the_client_trace() {
        // The subscriber registry is process-global; give this test its
        // own server so other tests' spans cannot interleave ids we
        // assert on (they may still add unrelated records).
        let sub = glider_trace::CapturingSubscriber::install();
        let (server, _metrics) = start("127.0.0.1:0").await;
        let client = RpcClient::connect(server.addr(), PeerTier::Compute, None)
            .await
            .unwrap();
        client
            .call(RequestBody::AddBlock { node_id: 9.into() })
            .await
            .unwrap();
        glider_trace::set_subscriber(None);
        let spans = sub.spans();
        // Find a client.call whose trace also has an rpc.dispatch.
        let linked = spans.iter().filter(|s| s.name == "client.call").any(|c| {
            spans
                .iter()
                .any(|d| d.name == "rpc.dispatch" && d.trace_id == c.trace_id && d.remote)
        });
        assert!(linked, "no linked client.call/rpc.dispatch pair: {spans:?}");
    }

    #[tokio::test]
    async fn throttled_client_is_paced() {
        let (server, _metrics) = start("127.0.0.1:0").await;
        // 1 MiB/s with 64 KiB burst; sending 256 KiB should take >= ~180ms.
        let bucket = Arc::new(TokenBucket::new(1024 * 1024, 64 * 1024));
        let client = RpcClient::connect(server.addr(), PeerTier::Compute, Some(bucket))
            .await
            .unwrap();
        let start = std::time::Instant::now();
        let data = Bytes::from(vec![7u8; 256 * 1024]);
        client
            .call(RequestBody::WriteBlock {
                block_id: BlockId(1),
                offset: 0,
                data,
            })
            .await
            .unwrap();
        // One more tiny call to pay the debt.
        client
            .call(RequestBody::WriteBlock {
                block_id: BlockId(1),
                offset: 0,
                data: Bytes::from_static(b"x"),
            })
            .await
            .unwrap();
        assert!(start.elapsed() >= std::time::Duration::from_millis(150));
    }
}
