//! Multiplexing RPC client and server over framed connections.
//!
//! Two multiplexing mechanisms stack here:
//!
//! - **Request ids** let any number of calls share one connection;
//!   responses are matched by id regardless of arrival order.
//! - **Logical streams** ([`RpcClient::open_stream`]) add per-stream
//!   flow control on top: every call on a stream consumes one *credit*
//!   from the stream's window, and the server grants a credit back when
//!   it admits the request ([`Frame::Credit`]). A slow consumer
//!   backpressures only its own stream — bulk block writes cannot starve
//!   a neighbouring metadata stream of the shared connection. Stream 0
//!   is the un-flow-controlled legacy stream every plain call uses.

use crate::conn::{connect, BoundListener, FrameRx, FrameTx, TaggedFrame};
use crate::retry::{op_class, JitterRng, RetryPolicy};
use crate::stats::{build_series, build_span_dump, build_stats};
use futures::future::BoxFuture;
use glider_metrics::{MetricsRegistry, OpKind, Tier};
use glider_proto::frame::{Frame, LEGACY_STREAM};
use glider_proto::message::{Request, RequestBody, Response, ResponseBody};
use glider_proto::types::PeerTier;
use glider_proto::{ErrorCode, GliderError, GliderResult};
use glider_trace::{Span, SpanContext};
use glider_util::TokenBucket;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tokio::sync::{mpsc, oneshot, Semaphore};
use tokio::task::JoinSet;

/// Maps the wire-level peer tier to the metrics tier.
pub fn tier_of(peer: PeerTier) -> Tier {
    match peer {
        PeerTier::Compute => Tier::Compute,
        PeerTier::Storage => Tier::Storage,
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

type Pending = Arc<Mutex<Option<HashMap<u64, oneshot::Sender<GliderResult<ResponseBody>>>>>>;

/// A multiplexing, self-healing RPC client.
///
/// Cloning is cheap; all clones share one *supervised* connection. Any
/// number of [`RpcClient::call`]s may be in flight concurrently —
/// responses are matched by request id. This is what lets the client
/// library keep a window of data operations outstanding ("batched async
/// operations", paper §7.2).
///
/// Fault tolerance (DESIGN.md §10):
/// - every call runs under a per-class deadline from the client's
///   [`RetryPolicy`];
/// - idempotent calls that fail with a transient error are retried with
///   full-jitter backoff up to the retry budget;
/// - a dropped connection fails its in-flight calls with
///   [`ErrorCode::Closed`], then the next call redials with backoff and
///   re-runs the `Hello` handshake — a bounced server is a blip, not a
///   poisoned client.
///
/// An optional [`TokenBucket`] throttles bulk payload bytes in both
/// directions, modelling the limited bandwidth of serverless workers.
#[derive(Debug, Clone)]
pub struct RpcClient {
    inner: Arc<ClientInner>,
}

/// One live connection: the writer queue plus the in-flight table. The
/// table is set to `None` permanently when the reader exits, which is how
/// callers detect a dead channel.
#[derive(Debug)]
struct Channel {
    req_tx: mpsc::Sender<(u32, Request)>,
    pending: Pending,
}

impl Channel {
    fn is_open(&self) -> bool {
        !self.req_tx.is_closed() && self.pending.lock().is_some()
    }
}

/// Client-side flow-control state of one logical stream. Lives in the
/// client's stream table (not the channel), so a reconnect keeps the
/// stream and its window.
#[derive(Debug)]
struct StreamState {
    /// Available credits. Calls `forget` acquired permits; permits come
    /// back via server [`Frame::Credit`] grants (or refunds below).
    sem: Semaphore,
    /// Credits consumed but not yet granted back. The refund paths
    /// (reader death, send-on-dead-channel) drain this instead of
    /// guessing, so a permit is never restored twice.
    outstanding: AtomicU32,
}

impl StreamState {
    /// Waits up to `deadline` for one credit and consumes it.
    async fn acquire_credit(&self, deadline: Duration, addr: &str) -> GliderResult<()> {
        match tokio::time::timeout(deadline, self.sem.acquire()).await {
            Ok(Ok(permit)) => {
                permit.forget();
                self.outstanding.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Ok(Err(_)) => Err(GliderError::closed(format!("stream to {addr}"))),
            Err(_) => {
                // The stream's whole credit window sat exhausted for a
                // full op deadline: the flight-recorder event is how a
                // post-hoc dump distinguishes a slow server from a
                // starved window.
                glider_trace::structured_event("credit.exhausted", "stream", addr, 0, 0);
                Err(GliderError::timeout(format!(
                    "stream credit to {addr} after {deadline:?}"
                )))
            }
        }
    }

    /// Applies a server grant: the server admitted `credits` requests.
    fn grant(&self, credits: u32) {
        let _ = self
            .outstanding
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(credits))
            });
        self.sem.add_permits(credits as usize);
    }

    /// Refunds one credit whose request provably never reached the
    /// server (send on a dead channel). A no-op when the credit was
    /// already restored by [`StreamState::refund_all`].
    fn refund_one(&self) {
        let taken = self
            .outstanding
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .is_ok();
        if taken {
            self.sem.add_permits(1);
        }
    }

    /// Refunds every outstanding credit. Called when a connection's
    /// reader dies: no more grants can arrive on that channel, and
    /// without the refund a failed-over stream would start with a
    /// permanently shrunken window (or deadlock at zero).
    fn refund_all(&self) {
        let n = self.outstanding.swap(0, Ordering::Relaxed);
        if n > 0 {
            self.sem.add_permits(n as usize);
        }
    }
}

/// The client's logical streams, shared with each generation's reader
/// task (which applies credit grants and refunds on death).
type StreamMap = Arc<Mutex<HashMap<u32, Arc<StreamState>>>>;

#[derive(Debug)]
struct ClientInner {
    addr: String,
    tier: PeerTier,
    throttle: Option<Arc<TokenBucket>>,
    metrics: Option<Arc<MetricsRegistry>>,
    policy: RetryPolicy,
    next_id: AtomicU64,
    /// The current channel; swapped atomically on reconnection.
    chan: Mutex<Arc<Channel>>,
    /// Serializes redials so concurrent callers heal the connection once.
    redial: tokio::sync::Mutex<()>,
    /// Open logical streams (flow-control state outlives reconnects).
    streams: StreamMap,
    /// Stream ids are client-unique; 0 is the legacy stream.
    next_stream_id: AtomicU32,
}

impl RpcClient {
    /// Connects to `addr` and performs the `Hello` handshake declaring
    /// `tier`.
    ///
    /// # Errors
    ///
    /// Returns an error if the dial or the handshake fails.
    pub async fn connect(
        addr: &str,
        tier: PeerTier,
        throttle: Option<Arc<TokenBucket>>,
    ) -> GliderResult<Self> {
        RpcClient::connect_with_metrics(addr, tier, throttle, None).await
    }

    /// Like [`RpcClient::connect`], but also records client-side transport
    /// indicators (writer batch occupancy, flush latency, retry and
    /// reconnect counts) into `metrics`.
    ///
    /// # Errors
    ///
    /// See [`RpcClient::connect`].
    pub async fn connect_with_metrics(
        addr: &str,
        tier: PeerTier,
        throttle: Option<Arc<TokenBucket>>,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> GliderResult<Self> {
        RpcClient::connect_with_options(addr, tier, throttle, metrics, RetryPolicy::default()).await
    }

    /// Fully parameterized connect: custom [`RetryPolicy`] for deadlines,
    /// retry budget, and reconnection behavior.
    ///
    /// # Errors
    ///
    /// See [`RpcClient::connect`]. The *initial* dial is not retried, so
    /// misconfigured addresses fail fast with their real error.
    pub async fn connect_with_options(
        addr: &str,
        tier: PeerTier,
        throttle: Option<Arc<TokenBucket>>,
        metrics: Option<Arc<MetricsRegistry>>,
        policy: RetryPolicy,
    ) -> GliderResult<Self> {
        let next_id = AtomicU64::new(1);
        let streams: StreamMap = Arc::new(Mutex::new(HashMap::new()));
        let handshake_deadline = policy.metadata_deadline;
        let chan =
            dial_channel(addr, tier, &metrics, &next_id, &streams, handshake_deadline).await?;
        Ok(RpcClient {
            inner: Arc::new(ClientInner {
                addr: addr.to_string(),
                tier,
                throttle,
                metrics,
                policy,
                next_id,
                chan: Mutex::new(Arc::new(chan)),
                redial: tokio::sync::Mutex::new(()),
                streams,
                next_stream_id: AtomicU32::new(1),
            }),
        })
    }

    /// Connects from inside the storage tier (actions, servers). Intra-
    /// storage connections are never throttled and are metered as
    /// storage→storage traffic by the receiving server.
    ///
    /// # Errors
    ///
    /// See [`RpcClient::connect`].
    pub async fn connect_intra_storage(addr: &str) -> GliderResult<Self> {
        RpcClient::connect(addr, PeerTier::Storage, None).await
    }

    /// The address this client dialed.
    pub fn addr(&self) -> &str {
        &self.inner.addr
    }

    /// The client's fault-tolerance policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.inner.policy
    }

    /// Issues one RPC and awaits its response. Error responses from the
    /// server are converted back into [`GliderError`]s.
    ///
    /// The call runs in a fresh `client.call` root span whose trace id
    /// rides the request header, so the server-side spans of this
    /// operation join the same trace.
    ///
    /// # Errors
    ///
    /// Returns the server-reported error, [`ErrorCode::Timeout`] when the
    /// per-class deadline elapsed, or [`ErrorCode::Closed`] when the
    /// connection dropped and could not be healed. Idempotent operations
    /// have transient failures retried within the policy's budget first.
    pub async fn call(&self, body: RequestBody) -> GliderResult<ResponseBody> {
        self.call_traced(SpanContext::NONE, body).await
    }

    /// Like [`RpcClient::call`], but the `client.call` span becomes a
    /// child of `parent` (pass [`SpanContext::NONE`] to start a fresh
    /// trace). This is how intra-storage hops — an action reading blocks
    /// on behalf of a client request — keep the originating trace id.
    ///
    /// # Errors
    ///
    /// See [`RpcClient::call`].
    pub async fn call_traced(
        &self,
        parent: SpanContext,
        body: RequestBody,
    ) -> GliderResult<ResponseBody> {
        self.call_inner(parent, LEGACY_STREAM, None, body).await
    }

    /// Opens a new logical stream with `window` credits (clamped to at
    /// least 1) over this client's connection. Calls on the stream are
    /// flow-controlled: at most `window` of them can be awaiting server
    /// admission at once, independently of other streams. The stream
    /// survives reconnects — its window travels with the client, not the
    /// connection.
    pub fn open_stream(&self, window: u32) -> RpcStream {
        let window = window.max(1);
        let id = self.inner.next_stream_id.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(StreamState {
            sem: Semaphore::new(window as usize),
            outstanding: AtomicU32::new(0),
        });
        self.inner.streams.lock().insert(id, Arc::clone(&state));
        if let Some(m) = &self.inner.metrics {
            m.stream_opened();
        }
        RpcStream {
            client: self.clone(),
            id,
            state,
        }
    }

    async fn call_inner(
        &self,
        parent: SpanContext,
        stream: u32,
        flow: Option<&StreamState>,
        body: RequestBody,
    ) -> GliderResult<ResponseBody> {
        // child_of(NONE) degenerates to a root, so both entry points share
        // this path; the span closes (and reports) when the call returns.
        let span = Span::child_of(parent, "client.call");
        let trace_id = span.trace_id();
        let op = body.op_name();
        // Throttle pacing is intentional latency and therefore sits
        // outside the deadline window, once per call (retried idempotent
        // ops never carry outbound payloads).
        if let Some(bucket) = &self.inner.throttle {
            let out = body.payload_len();
            if out > 0 {
                bucket.acquire(out).await;
            }
        }
        let policy = &self.inner.policy;
        let deadline = policy.deadline(op_class(&body));
        let idempotent = body.is_idempotent();
        let mut rng = JitterRng::seeded(trace_id ^ self.inner.next_id.load(Ordering::Relaxed));
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let err = match self.ensure_channel().await {
                Ok(chan) => {
                    // One credit per attempt on flow-controlled streams;
                    // the server grants it back at admission. Credits
                    // whose request never left (dead channel) are
                    // refunded below, the rest on reader death.
                    if let Some(state) = flow {
                        state.acquire_credit(deadline, &self.inner.addr).await?;
                    }
                    let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
                    let attempt_res = channel_call(
                        &chan,
                        id,
                        trace_id,
                        stream,
                        body.clone(),
                        deadline,
                        &self.inner.addr,
                    )
                    .await;
                    if let (Some(state), Err(e)) = (flow, &attempt_res) {
                        if e.code() == ErrorCode::Closed {
                            state.refund_one();
                        }
                    }
                    match attempt_res {
                        Ok(resp) => {
                            if let Some(bucket) = &self.inner.throttle {
                                let inn = resp.payload_len();
                                if inn > 0 {
                                    bucket.acquire(inn).await;
                                }
                            }
                            // Server-reported errors surface here; they
                            // never trigger a redial (the transport is
                            // fine) but retryable ones re-enter the loop.
                            match resp.into_result() {
                                Ok(body) => return Ok(body),
                                Err(e) => e,
                            }
                        }
                        Err(e) => e,
                    }
                }
                Err(e) => e,
            };
            if !idempotent || !err.is_retryable() || !policy.allows(attempts) {
                return Err(err);
            }
            if let Some(m) = &self.inner.metrics {
                m.rpc_retry();
            }
            // Feed the flight recorder's event log so a post-hoc dump
            // shows which op was re-issued, against whom, how many times.
            glider_trace::structured_event(
                "rpc.retry",
                op,
                &self.inner.addr,
                u64::from(attempts),
                trace_id,
            );
            // A short-lived span per retry, so the trace tree shows how
            // often (and why) a call was re-issued.
            drop(Span::child_of(span.context(), "client.retry"));
            tokio::time::sleep(policy.backoff(attempts, &mut rng)).await;
        }
    }

    /// Issues an RPC that must answer [`ResponseBody::Ok`].
    ///
    /// # Errors
    ///
    /// Returns [`ErrorCode::Protocol`] for any other success body, or the
    /// server's error.
    pub async fn call_ok(&self, body: RequestBody) -> GliderResult<()> {
        match self.call(body).await? {
            ResponseBody::Ok => Ok(()),
            other => Err(GliderError::protocol(format!(
                "expected Ok response, got {other:?}"
            ))),
        }
    }

    /// Returns a healthy channel, redialing (with backoff and a fresh
    /// handshake) if the current one died. Redials are serialized so a
    /// burst of concurrent calls heals the connection exactly once.
    async fn ensure_channel(&self) -> GliderResult<Arc<Channel>> {
        {
            let chan = Arc::clone(&self.inner.chan.lock());
            if chan.is_open() {
                return Ok(chan);
            }
        }
        let _guard = self.inner.redial.lock().await;
        let chan = Arc::clone(&self.inner.chan.lock());
        if chan.is_open() {
            return Ok(chan); // another caller already healed it
        }
        let policy = &self.inner.policy;
        let mut rng =
            JitterRng::seeded(self.inner.next_id.fetch_add(1, Ordering::Relaxed) ^ 0x9E37_79B9);
        let mut last = GliderError::closed(format!("rpc to {}", self.inner.addr));
        for attempt in 1..=policy.reconnect_attempts.max(1) {
            match dial_channel(
                &self.inner.addr,
                self.inner.tier,
                &self.inner.metrics,
                &self.inner.next_id,
                &self.inner.streams,
                policy.metadata_deadline,
            )
            .await
            {
                Ok(chan) => {
                    let chan = Arc::new(chan);
                    *self.inner.chan.lock() = Arc::clone(&chan);
                    if let Some(m) = &self.inner.metrics {
                        m.rpc_reconnect();
                    }
                    glider_trace::structured_event(
                        "rpc.reconnect",
                        "dial",
                        &self.inner.addr,
                        u64::from(attempt),
                        0,
                    );
                    return Ok(chan);
                }
                Err(e) => last = e,
            }
            if attempt < policy.reconnect_attempts {
                tokio::time::sleep(policy.backoff(attempt, &mut rng)).await;
            }
        }
        Err(GliderError::new(
            ErrorCode::Closed,
            format!(
                "rpc to {} closed; reconnect failed: {last}",
                self.inner.addr
            ),
        ))
    }
}

/// A flow-controlled logical stream over an [`RpcClient`]'s connection.
/// Created by [`RpcClient::open_stream`]; dropping it closes the stream.
///
/// Calls behave exactly like [`RpcClient::call`] (same deadlines,
/// retries, transparent reconnection) plus the credit window: a call
/// first waits — within the op deadline — for one of the stream's
/// credits, and the server returns the credit when it admits the
/// request. The stream id rides the frame header (wire format v2).
#[derive(Debug)]
pub struct RpcStream {
    client: RpcClient,
    id: u32,
    state: Arc<StreamState>,
}

impl RpcStream {
    /// This stream's wire id (never 0 — that is the legacy stream).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Issues one RPC on this stream. See [`RpcClient::call`].
    ///
    /// # Errors
    ///
    /// As [`RpcClient::call`], plus [`ErrorCode::Timeout`] when no
    /// stream credit became available within the op deadline.
    pub async fn call(&self, body: RequestBody) -> GliderResult<ResponseBody> {
        self.call_traced(SpanContext::NONE, body).await
    }

    /// Issues one traced RPC on this stream. See [`RpcClient::call_traced`].
    ///
    /// # Errors
    ///
    /// See [`RpcStream::call`].
    pub async fn call_traced(
        &self,
        parent: SpanContext,
        body: RequestBody,
    ) -> GliderResult<ResponseBody> {
        self.client
            .call_inner(parent, self.id, Some(&self.state), body)
            .await
    }
}

impl Drop for RpcStream {
    fn drop(&mut self) {
        self.client.inner.streams.lock().remove(&self.id);
        if let Some(m) = &self.client.inner.metrics {
            m.stream_closed();
        }
    }
}

/// Dials `addr`, spawns the connection's writer/reader tasks, and performs
/// the `Hello` handshake. Used for the initial connect and every redial.
async fn dial_channel(
    addr: &str,
    tier: PeerTier,
    metrics: &Option<Arc<MetricsRegistry>>,
    next_id: &AtomicU64,
    streams: &StreamMap,
    handshake_deadline: Duration,
) -> GliderResult<Channel> {
    let (tx, rx) = connect(addr).await?;
    let pending: Pending = Arc::new(Mutex::new(Some(HashMap::new())));
    let (req_tx, req_rx) = mpsc::channel::<(u32, Request)>(256);

    tokio::spawn(writer_task(tx, req_rx, metrics.clone()));
    tokio::spawn(reader_task(rx, Arc::clone(&pending), Arc::clone(streams)));

    let chan = Channel { req_tx, pending };
    let id = next_id.fetch_add(1, Ordering::Relaxed);
    let resp = channel_call(
        &chan,
        id,
        0,
        LEGACY_STREAM,
        RequestBody::Hello { tier },
        handshake_deadline,
        addr,
    )
    .await?;
    match resp.into_result()? {
        ResponseBody::Ok => Ok(chan),
        other => Err(GliderError::protocol(format!(
            "unexpected handshake response: {other:?}"
        ))),
    }
}

/// One attempt of one RPC on one channel, bounded by `deadline`. Returns
/// the raw response body — converting server-reported errors is left to
/// the caller so transport failures and semantic failures stay distinct.
async fn channel_call(
    chan: &Channel,
    id: u64,
    trace_id: u64,
    stream: u32,
    body: RequestBody,
    deadline: Duration,
    addr: &str,
) -> GliderResult<ResponseBody> {
    let op = body.op_name();
    let (done_tx, done_rx) = oneshot::channel();
    {
        let mut guard = chan.pending.lock();
        match guard.as_mut() {
            Some(map) => {
                map.insert(id, done_tx);
            }
            None => return Err(GliderError::closed(format!("rpc to {addr}"))),
        }
    }
    if chan
        .req_tx
        .send((stream, Request { id, trace_id, body }))
        .await
        .is_err()
    {
        chan.pending.lock().as_mut().map(|m| m.remove(&id));
        return Err(GliderError::closed(format!("rpc to {addr}")));
    }
    match tokio::time::timeout(deadline, done_rx).await {
        Err(_) => {
            // Deadline elapsed: withdraw the waiter so a straggling
            // response cannot leak a pending-table entry.
            chan.pending.lock().as_mut().map(|m| m.remove(&id));
            Err(GliderError::timeout(format!(
                "{op} rpc to {addr} after {deadline:?}"
            )))
        }
        Ok(Err(_)) => Err(GliderError::closed(format!("rpc to {addr}"))),
        Ok(Ok(res)) => res,
    }
}

/// Most frames coalesced into one vectored write by the writer loops.
///
/// The paper's batched-async-operations window (§7.2) makes clients keep
/// many small data operations in flight, so the writer's queue regularly
/// holds bursts; draining them into a single write amortizes the syscall.
const WRITE_BATCH_FRAMES: usize = 32;

/// Payload-byte bound for one coalesced write, so batching never delays a
/// bulk transfer behind an ever-growing vectored write.
const WRITE_BATCH_BYTES: u64 = 1024 * 1024;

/// Starting from `first` (obtained by a blocking `recv`), opportunistically
/// drains already-queued items into `batch` with `try_recv`, stopping at
/// the frame-count and payload-byte bounds so one vectored write stays a
/// bounded unit of work.
fn collect_batch<T: Into<Frame>>(
    first: (u32, T),
    rx: &mut mpsc::Receiver<(u32, T)>,
    batch: &mut Vec<TaggedFrame>,
) {
    let (stream, first) = first;
    let first = first.into();
    let mut bytes = first.payload_len();
    batch.push((stream, first));
    while batch.len() < WRITE_BATCH_FRAMES && bytes < WRITE_BATCH_BYTES {
        match rx.try_recv() {
            Ok((stream, item)) => {
                let frame = item.into();
                bytes += frame.payload_len();
                batch.push((stream, frame));
            }
            Err(_) => break,
        }
    }
}

async fn writer_task(
    mut tx: FrameTx,
    mut req_rx: mpsc::Receiver<(u32, Request)>,
    metrics: Option<Arc<MetricsRegistry>>,
) {
    let mut batch: Vec<TaggedFrame> = Vec::with_capacity(WRITE_BATCH_FRAMES);
    while let Some(req) = req_rx.recv().await {
        collect_batch(req, &mut req_rx, &mut batch);
        let frames = batch.len() as u64;
        let start = Instant::now();
        if tx.send_batch(&mut batch).await.is_err() {
            break;
        }
        if let Some(m) = &metrics {
            m.record_batch_occupancy(frames);
            m.record_latency(OpKind::WriterFlush, start.elapsed());
        }
    }
}

async fn reader_task(mut rx: FrameRx, pending: Pending, streams: StreamMap) {
    loop {
        match rx.recv_tagged().await {
            Ok(Some((_stream, Frame::Response(resp)))) => {
                let waiter = pending.lock().as_mut().and_then(|m| m.remove(&resp.id));
                if let Some(w) = waiter {
                    let _ = w.send(Ok(resp.body));
                }
            }
            Ok(Some((_stream, Frame::Credit { stream_id, credits }))) => {
                let state = streams.lock().get(&stream_id).cloned();
                if let Some(state) = state {
                    state.grant(credits);
                }
                // Grants for already-closed streams just vanish.
            }
            Ok(Some((_stream, Frame::Request(_)))) => {
                // Servers never send requests; drop and keep reading.
            }
            Ok(None) | Err(_) => break,
        }
    }
    // Fail everything still in flight and refuse new calls.
    let map = pending.lock().take();
    if let Some(map) = map {
        for (_, w) in map {
            let _ = w.send(Err(GliderError::new(
                ErrorCode::Closed,
                "connection closed with request in flight",
            )));
        }
    }
    // No further grants can arrive on this connection: refund every
    // outstanding credit so streams fail over with their full window
    // instead of deadlocking at zero.
    for state in streams.lock().values() {
        state.refund_all();
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Per-request context passed to handlers.
#[derive(Debug, Clone, Copy)]
pub struct ConnCtx {
    /// The tier the peer declared in its handshake.
    pub peer: PeerTier,
    /// A server-unique id for the connection.
    pub conn_id: u64,
    /// The end-to-end trace id of this request (0 when untraced).
    pub trace_id: u64,
    /// The span id of the server's `rpc.dispatch` span, for handlers to
    /// parent their own spans under.
    pub parent_span: u64,
}

impl ConnCtx {
    /// The dispatch span's context, for building handler child spans.
    pub fn span_context(&self) -> SpanContext {
        SpanContext {
            trace_id: self.trace_id,
            span_id: self.parent_span,
        }
    }
}

/// The latency class a request is recorded under; `None` for requests
/// that are not measured (handshake, stats introspection).
fn op_kind(body: &RequestBody) -> Option<OpKind> {
    Some(match body {
        RequestBody::CreateNode { .. } => OpKind::MetaCreateNode,
        RequestBody::LookupNode { .. } => OpKind::MetaLookupNode,
        RequestBody::DeleteNode { .. } => OpKind::MetaDeleteNode,
        RequestBody::ListChildren { .. } => OpKind::MetaListChildren,
        RequestBody::AddBlock { .. } => OpKind::MetaAddBlock,
        RequestBody::AddBlocks { .. } => OpKind::MetaAddBlocks,
        // Replacement is an allocation with a swap; it shares the
        // add-block latency class rather than growing the OpKind set.
        RequestBody::ReplaceBlock { .. } => OpKind::MetaAddBlock,
        RequestBody::CommitBlock { .. } => OpKind::MetaCommitBlock,
        RequestBody::CommitBlocks { .. } => OpKind::MetaCommitBlocks,
        RequestBody::RegisterServer { .. } => OpKind::MetaRegisterServer,
        RequestBody::WriteBlock { .. } => OpKind::BlockWrite,
        RequestBody::ReadBlock { .. } => OpKind::BlockRead,
        RequestBody::FreeBlocks { .. } => OpKind::BlockFree,
        // Replication writes are block writes with a forwarding hop; the
        // repair/introspection pair ride the metadata classes they extend.
        RequestBody::ForwardChunk { .. } | RequestBody::ReplicateBlock { .. } => OpKind::BlockWrite,
        RequestBody::NodeReplicas { .. } => OpKind::MetaLookupNode,
        RequestBody::RepairNode { .. } => OpKind::MetaAddBlock,
        RequestBody::ActionCreate { .. }
        | RequestBody::ActionDelete { .. }
        | RequestBody::StreamOpen { .. }
        | RequestBody::StreamClose { .. } => OpKind::ActionInvoke,
        // The streaming hot path is split out from action control so the
        // sweep can see record-push and fetch latencies on their own.
        RequestBody::StreamChunk { .. } | RequestBody::StreamChunkBatch { .. } => {
            OpKind::ActionStreamWrite
        }
        RequestBody::StreamFetch { .. } => OpKind::ActionStreamRead,
        // Handshake, introspection (Stats, DumpSpans, MetricsSeries), and
        // liveness beacons are not measured as operations (heartbeats
        // would drown real metadata latencies, and the observability
        // plane must not perturb the histograms it reports).
        RequestBody::Hello { .. }
        | RequestBody::Stats
        | RequestBody::DumpSpans { .. }
        | RequestBody::MetricsSeries
        | RequestBody::Heartbeat { .. } => return None,
    })
}

/// Server-side request dispatch.
///
/// `handle` is given an owned `Arc<Self>` so the returned future can be
/// `'static` and run on its own task (long-blocking operations such as
/// action stream fetches must not stall the connection).
pub trait RpcHandler: Send + Sync + 'static {
    /// Handles one request and produces a response body.
    fn handle(
        self: Arc<Self>,
        ctx: ConnCtx,
        body: RequestBody,
    ) -> BoxFuture<'static, GliderResult<ResponseBody>>;

    /// Shared-nothing fast path: handle `body` synchronously on the
    /// connection task, skipping the per-request spawn. Return
    /// `Ok(result)` to answer immediately, or give `body` back with
    /// `Err(body)` to fall through to [`RpcHandler::handle`].
    ///
    /// Implementations must not block or await: this runs on the
    /// connection's read loop, so only lock-free or short-critical-
    /// section work belongs here (DRAM-tier block reads/writes against a
    /// sharded map, say). The default declines everything.
    fn try_handle_sync(
        self: Arc<Self>,
        _ctx: ConnCtx,
        body: RequestBody,
    ) -> Result<GliderResult<ResponseBody>, RequestBody> {
        Err(body)
    }
}

/// Handle to a running RPC server. Aborts the accept loop (and through it
/// every connection task) when shut down or dropped.
#[derive(Debug)]
pub struct ServerHandle {
    addr: String,
    accept_task: tokio::task::JoinHandle<()>,
}

impl ServerHandle {
    /// The dialable address of the server.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stops accepting and tears down all connection tasks.
    pub fn shutdown(&self) {
        self.accept_task.abort();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.accept_task.abort();
    }
}

/// Starts serving `listener` with `handler`.
///
/// `server_tier` is the tier of this server for transfer metering (always
/// [`Tier::Storage`] for Glider servers); payload bytes of inbound requests
/// and outbound responses are recorded against the peer's declared tier.
pub fn serve(
    listener: BoundListener,
    handler: Arc<dyn RpcHandler>,
    metrics: Arc<MetricsRegistry>,
    server_tier: Tier,
) -> ServerHandle {
    let addr = listener.local_addr().to_string();
    let source: Arc<str> = Arc::from(addr.as_str());
    let accept_task = tokio::spawn(accept_loop(listener, handler, metrics, server_tier, source));
    ServerHandle { addr, accept_task }
}

async fn accept_loop(
    mut listener: BoundListener,
    handler: Arc<dyn RpcHandler>,
    metrics: Arc<MetricsRegistry>,
    server_tier: Tier,
    source: Arc<str>,
) {
    let mut conns = JoinSet::new();
    let conn_ids = AtomicU64::new(1);
    loop {
        tokio::select! {
            accepted = listener.accept() => {
                match accepted {
                    Ok((tx, rx)) => {
                        let conn_id = conn_ids.fetch_add(1, Ordering::Relaxed);
                        conns.spawn(connection_task(
                            tx,
                            rx,
                            Arc::clone(&handler),
                            Arc::clone(&metrics),
                            server_tier,
                            conn_id,
                            Arc::clone(&source),
                        ));
                    }
                    Err(_) => break,
                }
            }
            // Reap finished connection tasks so the set does not grow.
            Some(_) = conns.join_next(), if !conns.is_empty() => {}
        }
    }
}

/// Whether `body` is an introspection request every server answers
/// uniformly from its own registry and flight recorder (handlers never
/// see these).
fn is_introspection(body: &RequestBody) -> bool {
    matches!(
        body,
        RequestBody::Stats | RequestBody::DumpSpans { .. } | RequestBody::MetricsSeries
    )
}

/// Answers one introspection request. `DumpSpans` is idempotent by
/// construction: it reads a snapshot keyed by `(trace_id, since_seq)`
/// and mutates nothing, so a retried dump returns the same (or a
/// strictly newer) view.
fn introspect(body: &RequestBody, metrics: &MetricsRegistry, source: &str) -> ResponseBody {
    match body {
        RequestBody::Stats => ResponseBody::Stats(build_stats(&metrics.snapshot())),
        RequestBody::DumpSpans {
            trace_id,
            since_seq,
        } => ResponseBody::Spans(build_span_dump(source, *trace_id, *since_seq)),
        RequestBody::MetricsSeries => ResponseBody::Series(build_series(source, metrics)),
        // Guarded by is_introspection; answering with a protocol error
        // (not a panic) keeps the connection task total.
        other => ResponseBody::from_error(&GliderError::protocol(format!(
            "{} is not an introspection request",
            other.op_name()
        ))),
    }
}

async fn connection_task(
    tx: FrameTx,
    mut rx: FrameRx,
    handler: Arc<dyn RpcHandler>,
    metrics: Arc<MetricsRegistry>,
    server_tier: Tier,
    conn_id: u64,
    source: Arc<str>,
) {
    // Every request on this connection arrived over the same transport.
    let transport = rx.scheme();

    // Handshake: the first request must be Hello.
    let (hello_id, peer) = match rx.recv_tagged().await {
        Ok(Some((
            _,
            Frame::Request(Request {
                id,
                body: RequestBody::Hello { tier },
                ..
            }),
        ))) => (id, tier),
        _ => return,
    };

    let (resp_tx, resp_rx) = mpsc::channel::<(u32, Frame)>(256);
    let writer = tokio::spawn(response_writer(
        tx,
        resp_rx,
        Arc::clone(&metrics),
        server_tier,
        tier_of(peer),
    ));

    let _ = resp_tx
        .send((
            LEGACY_STREAM,
            Frame::Response(Response {
                id: hello_id,
                body: ResponseBody::Ok,
            }),
        ))
        .await;

    let peer_tier = tier_of(peer);
    let mut requests = JoinSet::new();
    loop {
        tokio::select! {
            frame = rx.recv_tagged() => {
                match frame {
                    Ok(Some((stream, Frame::Request(req)))) => {
                        metrics.transport_request(transport);
                        let inbound = req.body.payload_len();
                        if inbound > 0 {
                            metrics.record_transfer(peer_tier, server_tier, inbound);
                        }
                        // Flow control: replenish the stream's window as
                        // soon as the request is admitted — the credit
                        // bounds queued requests, not their execution.
                        if stream != LEGACY_STREAM {
                            let _ = resp_tx
                                .send((stream, Frame::Credit { stream_id: stream, credits: 1 }))
                                .await;
                        }
                        // Introspection (Stats, DumpSpans, MetricsSeries)
                        // is answered here, uniformly for every server,
                        // from the connection's own registry and the
                        // process flight recorder; handlers never see it.
                        if is_introspection(&req.body) {
                            let resp_tx = resp_tx.clone();
                            let metrics = Arc::clone(&metrics);
                            let source = Arc::clone(&source);
                            requests.spawn(async move {
                                let body = introspect(&req.body, &metrics, &source);
                                let frame = Frame::Response(Response { id: req.id, body });
                                let _ = resp_tx.send((stream, frame)).await;
                            });
                            continue;
                        }
                        let kind = op_kind(&req.body);
                        metrics.rpc_start();
                        // Shared-nothing fast path: let the handler answer
                        // on the connection task when it can do so without
                        // blocking. Skipped while tracing is on — the slow
                        // path owns the rpc.dispatch span, and the fast
                        // path must not emit a duplicate.
                        let req = if glider_trace::tracing_enabled() {
                            req
                        } else {
                            let Request { id, trace_id, body } = req;
                            let ctx = ConnCtx {
                                peer,
                                conn_id,
                                trace_id,
                                parent_span: 0,
                            };
                            let start = Instant::now();
                            match Arc::clone(&handler).try_handle_sync(ctx, body) {
                                Ok(result) => {
                                    let body = match result {
                                        Ok(body) => body,
                                        Err(err) => ResponseBody::from_error(&err),
                                    };
                                    if let Some(kind) = kind {
                                        metrics.record_latency_traced(
                                            kind,
                                            start.elapsed(),
                                            trace_id,
                                        );
                                    }
                                    metrics.rpc_end();
                                    let frame = Frame::Response(Response { id, body });
                                    let _ = resp_tx.send((stream, frame)).await;
                                    continue;
                                }
                                // Declined: dispatch below with the body
                                // handed back.
                                Err(body) => Request { id, trace_id, body },
                            }
                        };
                        spawn_dispatch(
                            &mut requests,
                            Arc::clone(&handler),
                            resp_tx.clone(),
                            Arc::clone(&metrics),
                            stream,
                            req,
                            kind,
                            peer,
                            conn_id,
                        );
                    }
                    Ok(Some((_, Frame::Response(_)))) | Ok(Some((_, Frame::Credit { .. }))) => {
                        // Clients never send responses, and servers do not
                        // consume credit; ignore.
                    }
                    Ok(None) | Err(_) => break,
                }
            }
            Some(_) = requests.join_next(), if !requests.is_empty() => {}
        }
    }
    drop(resp_tx);
    // Let in-flight requests finish before closing the writer.
    while requests.join_next().await.is_some() {}
    let _ = writer.await;
}

/// Slow-path dispatch: one spawned task per request, with the server half
/// of the trace span created inside the task (so span lifetime matches
/// handler execution exactly).
#[allow(clippy::too_many_arguments)]
fn spawn_dispatch(
    requests: &mut JoinSet<()>,
    handler: Arc<dyn RpcHandler>,
    resp_tx: mpsc::Sender<(u32, Frame)>,
    metrics: Arc<MetricsRegistry>,
    stream: u32,
    req: Request,
    kind: Option<OpKind>,
    peer: PeerTier,
    conn_id: u64,
) {
    requests.spawn(async move {
        // The server half of the trace: continues the trace id carried
        // in the request header.
        let span = Span::remote("rpc.dispatch", req.trace_id);
        let ctx = ConnCtx {
            peer,
            conn_id,
            trace_id: span.trace_id(),
            parent_span: span.context().span_id,
        };
        let start = Instant::now();
        let body = match handler.handle(ctx, req.body).await {
            Ok(body) => body,
            Err(err) => ResponseBody::from_error(&err),
        };
        // Latency is recorded server-side only, so in-process setups
        // sharing one registry do not double-count an op per hop. The
        // trace id rides along as the histogram bucket's exemplar.
        if let Some(kind) = kind {
            metrics.record_latency_traced(kind, start.elapsed(), ctx.trace_id);
        }
        metrics.rpc_end();
        drop(span);
        let frame = Frame::Response(Response { id: req.id, body });
        let _ = resp_tx.send((stream, frame)).await;
    });
}

async fn response_writer(
    mut tx: FrameTx,
    mut resp_rx: mpsc::Receiver<(u32, Frame)>,
    metrics: Arc<MetricsRegistry>,
    server_tier: Tier,
    peer_tier: Tier,
) {
    let mut batch: Vec<TaggedFrame> = Vec::with_capacity(WRITE_BATCH_FRAMES);
    while let Some(resp) = resp_rx.recv().await {
        collect_batch(resp, &mut resp_rx, &mut batch);
        for (_, frame) in &batch {
            let outbound = frame.payload_len();
            if outbound > 0 {
                metrics.record_transfer(server_tier, peer_tier, outbound);
            }
        }
        let frames = batch.len() as u64;
        let start = Instant::now();
        if tx.send_batch(&mut batch).await.is_err() {
            break;
        }
        metrics.record_batch_occupancy(frames);
        metrics.record_latency(OpKind::WriterFlush, start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use glider_proto::types::BlockId;

    /// Echo-style handler: Writes report their length, Reads return zeros,
    /// everything else gets Ok.
    struct TestHandler;

    impl RpcHandler for TestHandler {
        fn handle(
            self: Arc<Self>,
            _ctx: ConnCtx,
            body: RequestBody,
        ) -> BoxFuture<'static, GliderResult<ResponseBody>> {
            Box::pin(async move {
                match body {
                    RequestBody::WriteBlock { data, .. } => Ok(ResponseBody::Written {
                        n: data.len() as u64,
                    }),
                    RequestBody::ReadBlock { len, .. } => Ok(ResponseBody::Data {
                        seq: 0,
                        bytes: Bytes::from(vec![0u8; len as usize]),
                        eof: true,
                    }),
                    RequestBody::LookupNode { path } => {
                        Err(GliderError::not_found(format!("node {path}")))
                    }
                    _ => Ok(ResponseBody::Ok),
                }
            })
        }
    }

    async fn start(addr: &str) -> (ServerHandle, Arc<MetricsRegistry>) {
        let metrics = MetricsRegistry::new();
        let listener = crate::conn::bind(addr).await.unwrap();
        let handle = serve(
            listener,
            Arc::new(TestHandler),
            Arc::clone(&metrics),
            Tier::Storage,
        );
        (handle, metrics)
    }

    #[tokio::test]
    async fn call_round_trip_over_tcp() {
        let (server, metrics) = start("127.0.0.1:0").await;
        let client = RpcClient::connect(server.addr(), PeerTier::Compute, None)
            .await
            .unwrap();
        let resp = client
            .call(RequestBody::WriteBlock {
                block_id: BlockId(1),
                offset: 0,
                data: Bytes::from_static(b"hello world"),
            })
            .await
            .unwrap();
        assert_eq!(resp, ResponseBody::Written { n: 11 });
        let snap = metrics.snapshot();
        assert_eq!(snap.transferred(Tier::Compute, Tier::Storage), 11);
    }

    #[tokio::test]
    async fn call_round_trip_over_mem() {
        let (server, metrics) = start("mem://rpc-test-mem").await;
        let client = RpcClient::connect_intra_storage(server.addr())
            .await
            .unwrap();
        let resp = client
            .call(RequestBody::ReadBlock {
                block_id: BlockId(1),
                offset: 0,
                len: 100,
            })
            .await
            .unwrap();
        match resp {
            ResponseBody::Data { bytes, eof, .. } => {
                assert_eq!(bytes.len(), 100);
                assert!(eof);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Intra-storage traffic is metered storage->storage.
        let snap = metrics.snapshot();
        assert_eq!(snap.intra_storage_bytes(), 100);
        assert_eq!(snap.tier_crossing_bytes(), 0);
    }

    #[tokio::test]
    async fn server_errors_surface_as_glider_errors() {
        let (server, _metrics) = start("127.0.0.1:0").await;
        let client = RpcClient::connect(server.addr(), PeerTier::Compute, None)
            .await
            .unwrap();
        let err = client
            .call(RequestBody::LookupNode {
                path: "/missing".to_string(),
            })
            .await
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::NotFound);
    }

    #[tokio::test]
    async fn many_concurrent_calls_multiplex() {
        let (server, _metrics) = start("127.0.0.1:0").await;
        let client = RpcClient::connect(server.addr(), PeerTier::Compute, None)
            .await
            .unwrap();
        let mut joins = Vec::new();
        for i in 0..64u64 {
            let c = client.clone();
            joins.push(tokio::spawn(async move {
                let resp = c
                    .call(RequestBody::ReadBlock {
                        block_id: BlockId(i),
                        offset: 0,
                        len: i,
                    })
                    .await
                    .unwrap();
                match resp {
                    ResponseBody::Data { bytes, .. } => assert_eq!(bytes.len() as u64, i),
                    other => panic!("unexpected {other:?}"),
                }
            }));
        }
        for j in joins {
            j.await.unwrap();
        }
    }

    #[tokio::test]
    async fn bursty_writes_batch_without_loss() {
        let (server, metrics) = start("127.0.0.1:0").await;
        let client = RpcClient::connect(server.addr(), PeerTier::Compute, None)
            .await
            .unwrap();
        // 256 concurrent 1 KiB writes: far more than one writer batch, so
        // the loops must coalesce correctly without dropping or double-
        // counting frames.
        let mut joins = Vec::new();
        for i in 0..256u64 {
            let c = client.clone();
            joins.push(tokio::spawn(async move {
                let resp = c
                    .call(RequestBody::WriteBlock {
                        block_id: BlockId(i),
                        offset: 0,
                        data: Bytes::from(vec![i as u8; 1024]),
                    })
                    .await
                    .unwrap();
                assert_eq!(resp, ResponseBody::Written { n: 1024 });
            }));
        }
        for j in joins {
            j.await.unwrap();
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.transferred(Tier::Compute, Tier::Storage), 256 * 1024);
    }

    #[tokio::test]
    async fn shutdown_closes_connections() {
        let (server, _metrics) = start("127.0.0.1:0").await;
        let client = RpcClient::connect(server.addr(), PeerTier::Compute, None)
            .await
            .unwrap();
        client
            .call(RequestBody::AddBlock { node_id: 1.into() })
            .await
            .unwrap();
        server.shutdown();
        // The abort propagates asynchronously: poll until the connection
        // observably fails instead of sleeping a fixed (flaky) interval.
        let mut last = None;
        for _ in 0..200 {
            match client
                .call(RequestBody::AddBlock { node_id: 1.into() })
                .await
            {
                Ok(_) => tokio::time::sleep(std::time::Duration::from_millis(5)).await,
                Err(err) => {
                    last = Some(err);
                    break;
                }
            }
        }
        let err = last.expect("server kept answering after shutdown");
        assert_eq!(err.code(), ErrorCode::Closed);
    }

    #[tokio::test]
    async fn bounced_server_heals_transparently() {
        // Bounce a mem:// server: the dropped connection must fail fast,
        // then the next calls redial, re-handshake, and succeed — without
        // rebuilding the client.
        let addr = "mem://rpc-test-bounce";
        let (server, _metrics) = start(addr).await;
        let client_metrics = MetricsRegistry::new();
        let client = RpcClient::connect_with_metrics(
            addr,
            PeerTier::Compute,
            None,
            Some(Arc::clone(&client_metrics)),
        )
        .await
        .unwrap();
        client
            .call(RequestBody::AddBlock { node_id: 1.into() })
            .await
            .unwrap();
        server.shutdown();
        drop(server);
        // Wait until the old connection observably died.
        for _ in 0..200 {
            if client
                .call(RequestBody::AddBlock { node_id: 1.into() })
                .await
                .is_err()
            {
                break;
            }
            tokio::time::sleep(Duration::from_millis(5)).await;
        }
        // Server comes back on the same address.
        let (server2, _metrics2) = start(addr).await;
        // The poll above may leave the client mid-backoff; give the dial a
        // few chances (each call redials internally).
        let mut healed = false;
        for _ in 0..50 {
            if client
                .call(RequestBody::AddBlock { node_id: 1.into() })
                .await
                .is_ok()
            {
                healed = true;
                break;
            }
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        assert!(healed, "client did not heal after the server came back");
        assert!(
            client_metrics.snapshot().rpc_reconnects > 0,
            "reconnect was not counted"
        );
        drop(server2);
    }

    #[tokio::test]
    async fn idempotent_calls_retry_within_budget() {
        // A handler that fails the first two lookups with a retryable
        // error, then succeeds: the client must absorb the failures.
        struct Flaky(AtomicU64);
        impl RpcHandler for Flaky {
            fn handle(
                self: Arc<Self>,
                _ctx: ConnCtx,
                body: RequestBody,
            ) -> BoxFuture<'static, GliderResult<ResponseBody>> {
                Box::pin(async move {
                    match body {
                        RequestBody::LookupNode { .. } => {
                            if self.0.fetch_add(1, Ordering::Relaxed) < 2 {
                                Err(GliderError::unavailable("lookup shard"))
                            } else {
                                Ok(ResponseBody::Ok)
                            }
                        }
                        // Non-idempotent ops surface the error untouched.
                        RequestBody::CommitBlock { .. } => {
                            Err(GliderError::unavailable("commit path"))
                        }
                        _ => Ok(ResponseBody::Ok),
                    }
                })
            }
        }
        let metrics = MetricsRegistry::new();
        let listener = crate::conn::bind("127.0.0.1:0").await.unwrap();
        let server = serve(
            listener,
            Arc::new(Flaky(AtomicU64::new(0))),
            Arc::clone(&metrics),
            Tier::Storage,
        );
        let client_metrics = MetricsRegistry::new();
        let client = RpcClient::connect_with_metrics(
            server.addr(),
            PeerTier::Compute,
            None,
            Some(Arc::clone(&client_metrics)),
        )
        .await
        .unwrap();
        client
            .call(RequestBody::LookupNode { path: "/x".into() })
            .await
            .expect("idempotent lookup should retry past transient errors");
        assert_eq!(client_metrics.snapshot().rpc_retries, 2);
        // Non-idempotent: the typed retryable error reaches the caller.
        let err = client
            .call(RequestBody::CommitBlock {
                node_id: 1.into(),
                block_id: BlockId(1),
                len: 1,
            })
            .await
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::Unavailable);
        assert!(err.is_retryable(), "caller keeps the retryable signal");
        assert_eq!(client_metrics.snapshot().rpc_retries, 2, "no auto-retry");
    }

    #[tokio::test]
    async fn deadline_times_out_stalled_calls() {
        // A handler that never answers reads: the per-class deadline must
        // convert the stall into ErrorCode::Timeout.
        struct Stall;
        impl RpcHandler for Stall {
            fn handle(
                self: Arc<Self>,
                _ctx: ConnCtx,
                body: RequestBody,
            ) -> BoxFuture<'static, GliderResult<ResponseBody>> {
                Box::pin(async move {
                    if matches!(body, RequestBody::ReadBlock { .. }) {
                        futures::future::pending::<()>().await;
                    }
                    Ok(ResponseBody::Ok)
                })
            }
        }
        let metrics = MetricsRegistry::new();
        let listener = crate::conn::bind("127.0.0.1:0").await.unwrap();
        let server = serve(
            listener,
            Arc::new(Stall),
            Arc::clone(&metrics),
            Tier::Storage,
        );
        let policy = RetryPolicy {
            data_deadline: Duration::from_millis(50),
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let client =
            RpcClient::connect_with_options(server.addr(), PeerTier::Compute, None, None, policy)
                .await
                .unwrap();
        let start = Instant::now();
        let err = client
            .call(RequestBody::ReadBlock {
                block_id: BlockId(1),
                offset: 0,
                len: 1,
            })
            .await
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::Timeout);
        // Two attempts of 50ms plus one bounded backoff.
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[tokio::test]
    async fn stats_rpc_reports_server_histograms() {
        let (server, metrics) = start("127.0.0.1:0").await;
        let client = RpcClient::connect(server.addr(), PeerTier::Compute, None)
            .await
            .unwrap();
        for i in 0..10u64 {
            client
                .call(RequestBody::WriteBlock {
                    block_id: BlockId(i),
                    offset: 0,
                    data: Bytes::from_static(b"x"),
                })
                .await
                .unwrap();
        }
        let resp = client.call(RequestBody::Stats).await.unwrap();
        let payload = match resp {
            ResponseBody::Stats(p) => p,
            other => panic!("unexpected {other:?}"),
        };
        let write = payload
            .ops
            .iter()
            .find(|o| o.name == OpKind::BlockWrite.name())
            .unwrap();
        assert_eq!(write.buckets.iter().sum::<u64>(), 10);
        // The write latencies also landed in the server registry directly.
        let snap = metrics.snapshot();
        assert_eq!(snap.op_latency(OpKind::BlockWrite).count(), 10);
        assert!(snap.op_latency(OpKind::BlockWrite).p50() > 0);
        // Hello and Stats themselves are not measured as ops.
        assert_eq!(snap.op_latency(OpKind::BlockRead).count(), 0);
        // Response flushes were batched and timed.
        assert!(snap.batch_occupancy.count() > 0);
        assert!(snap.op_latency(OpKind::WriterFlush).count() > 0);
    }

    #[tokio::test]
    async fn client_metrics_observe_writer_batches() {
        let (server, _metrics) = start("127.0.0.1:0").await;
        let client_metrics = MetricsRegistry::new();
        let client = RpcClient::connect_with_metrics(
            server.addr(),
            PeerTier::Compute,
            None,
            Some(Arc::clone(&client_metrics)),
        )
        .await
        .unwrap();
        client
            .call(RequestBody::AddBlock { node_id: 1.into() })
            .await
            .unwrap();
        let snap = client_metrics.snapshot();
        assert!(snap.batch_occupancy.count() > 0);
        assert!(snap.op_latency(OpKind::WriterFlush).count() > 0);
        // The client does not record op latency; servers do.
        assert_eq!(snap.op_latency(OpKind::MetaAddBlock).count(), 0);
    }

    #[tokio::test]
    async fn dispatch_spans_continue_the_client_trace() {
        // The subscriber registry is process-global; give this test its
        // own server so other tests' spans cannot interleave ids we
        // assert on (they may still add unrelated records).
        let sub = glider_trace::CapturingSubscriber::install();
        let (server, _metrics) = start("127.0.0.1:0").await;
        let client = RpcClient::connect(server.addr(), PeerTier::Compute, None)
            .await
            .unwrap();
        client
            .call(RequestBody::AddBlock { node_id: 9.into() })
            .await
            .unwrap();
        glider_trace::set_subscriber(None);
        let spans = sub.spans();
        // Find a client.call whose trace also has an rpc.dispatch.
        let linked = spans.iter().filter(|s| s.name == "client.call").any(|c| {
            spans
                .iter()
                .any(|d| d.name == "rpc.dispatch" && d.trace_id == c.trace_id && d.remote)
        });
        assert!(linked, "no linked client.call/rpc.dispatch pair: {spans:?}");
    }

    #[tokio::test]
    async fn throttled_client_is_paced() {
        let (server, _metrics) = start("127.0.0.1:0").await;
        // 1 MiB/s with 64 KiB burst; sending 256 KiB should take >= ~180ms.
        let bucket = Arc::new(TokenBucket::new(1024 * 1024, 64 * 1024));
        let client = RpcClient::connect(server.addr(), PeerTier::Compute, Some(bucket))
            .await
            .unwrap();
        let start = std::time::Instant::now();
        let data = Bytes::from(vec![7u8; 256 * 1024]);
        client
            .call(RequestBody::WriteBlock {
                block_id: BlockId(1),
                offset: 0,
                data,
            })
            .await
            .unwrap();
        // One more tiny call to pay the debt.
        client
            .call(RequestBody::WriteBlock {
                block_id: BlockId(1),
                offset: 0,
                data: Bytes::from_static(b"x"),
            })
            .await
            .unwrap();
        assert!(start.elapsed() >= std::time::Duration::from_millis(150));
    }

    #[tokio::test]
    async fn stream_calls_round_trip_on_both_transports() {
        for addr in ["127.0.0.1:0", "mem://rpc-test-stream"] {
            let (server, _metrics) = start(addr).await;
            let client_metrics = MetricsRegistry::new();
            let client = RpcClient::connect_with_metrics(
                server.addr(),
                PeerTier::Compute,
                None,
                Some(Arc::clone(&client_metrics)),
            )
            .await
            .unwrap();
            let stream = client.open_stream(4);
            assert_ne!(stream.id(), 0, "stream ids never collide with legacy");
            for i in 0..16u64 {
                let resp = stream
                    .call(RequestBody::WriteBlock {
                        block_id: BlockId(i),
                        offset: 0,
                        data: Bytes::from(vec![i as u8; 64]),
                    })
                    .await
                    .unwrap();
                assert_eq!(resp, ResponseBody::Written { n: 64 });
            }
            let snap = client_metrics.snapshot();
            assert_eq!(snap.streams_opened, 1);
            assert_eq!(snap.streams_open_current, 1);
            drop(stream);
            assert_eq!(client_metrics.snapshot().streams_open_current, 0);
        }
    }

    #[tokio::test]
    async fn stream_window_replenishes_past_its_size() {
        // Window of 1: every call needs the credit from the previous one
        // back before it may send. 32 sequential calls prove the server
        // grants credit per admission (a lost grant would deadlock here,
        // caught by the data deadline).
        let (server, _metrics) = start("mem://rpc-test-window").await;
        let client = RpcClient::connect(server.addr(), PeerTier::Compute, None)
            .await
            .unwrap();
        let stream = client.open_stream(1);
        for i in 0..32u64 {
            stream
                .call(RequestBody::ReadBlock {
                    block_id: BlockId(i),
                    offset: 0,
                    len: 8,
                })
                .await
                .unwrap();
        }
    }

    #[tokio::test]
    async fn streams_and_legacy_calls_interleave() {
        let (server, _metrics) = start("127.0.0.1:0").await;
        let client = RpcClient::connect(server.addr(), PeerTier::Compute, None)
            .await
            .unwrap();
        let mut joins = Vec::new();
        for s in 0..4u64 {
            let stream = Arc::new(client.open_stream(2));
            for i in 0..16u64 {
                let stream = Arc::clone(&stream);
                joins.push(tokio::spawn(async move {
                    let resp = stream
                        .call(RequestBody::WriteBlock {
                            block_id: BlockId(s * 100 + i),
                            offset: 0,
                            data: Bytes::from(vec![s as u8; 32]),
                        })
                        .await
                        .unwrap();
                    assert_eq!(resp, ResponseBody::Written { n: 32 });
                }));
            }
        }
        // Legacy (stream 0) traffic rides the same connection unthrottled.
        for i in 0..16u64 {
            let c = client.clone();
            joins.push(tokio::spawn(async move {
                c.call(RequestBody::AddBlock {
                    node_id: (i + 1).into(),
                })
                .await
                .unwrap();
            }));
        }
        for j in joins {
            j.await.unwrap();
        }
    }

    #[tokio::test]
    async fn sync_fast_path_answers_without_spawning() {
        // A handler that answers writes synchronously and declines the
        // rest: both paths must produce correct responses, and the
        // inflight gauge must return to zero either way.
        struct SyncWrites;
        impl RpcHandler for SyncWrites {
            fn handle(
                self: Arc<Self>,
                _ctx: ConnCtx,
                body: RequestBody,
            ) -> BoxFuture<'static, GliderResult<ResponseBody>> {
                Box::pin(async move {
                    match body {
                        RequestBody::WriteBlock { .. } => {
                            panic!("writes must take the sync path")
                        }
                        _ => Ok(ResponseBody::Ok),
                    }
                })
            }
            fn try_handle_sync(
                self: Arc<Self>,
                _ctx: ConnCtx,
                body: RequestBody,
            ) -> Result<GliderResult<ResponseBody>, RequestBody> {
                match body {
                    RequestBody::WriteBlock { data, .. } => Ok(Ok(ResponseBody::Written {
                        n: data.len() as u64,
                    })),
                    other => Err(other),
                }
            }
        }
        let metrics = MetricsRegistry::new();
        let listener = crate::conn::bind("mem://rpc-test-sync").await.unwrap();
        let server = serve(
            listener,
            Arc::new(SyncWrites),
            Arc::clone(&metrics),
            Tier::Storage,
        );
        let client = RpcClient::connect(server.addr(), PeerTier::Compute, None)
            .await
            .unwrap();
        let resp = client
            .call(RequestBody::WriteBlock {
                block_id: BlockId(1),
                offset: 0,
                data: Bytes::from_static(b"sync"),
            })
            .await
            .unwrap();
        assert_eq!(resp, ResponseBody::Written { n: 4 });
        // Declined bodies fall through to the async handler.
        let resp = client
            .call(RequestBody::AddBlock { node_id: 1.into() })
            .await
            .unwrap();
        assert_eq!(resp, ResponseBody::Ok);
        let snap = metrics.snapshot();
        assert_eq!(snap.rpc_inflight_current, 0);
        assert!(snap.rpc_inflight_peak >= 1);
        assert_eq!(snap.transport_mem_requests, 2, "hello is not counted");
        assert_eq!(snap.op_latency(OpKind::BlockWrite).count(), 1);
    }

    #[tokio::test]
    async fn stream_window_survives_reconnect() {
        // Kill the server mid-stream: outstanding credit must be refunded
        // when the connection dies, so the stream still has its full
        // window against the replacement server.
        let addr = "mem://rpc-test-stream-bounce";
        let (server, _metrics) = start(addr).await;
        let client = RpcClient::connect(addr, PeerTier::Compute, None)
            .await
            .unwrap();
        let stream = client.open_stream(1);
        stream
            .call(RequestBody::AddBlock { node_id: 1.into() })
            .await
            .unwrap();
        server.shutdown();
        drop(server);
        // Drain the dying connection (legacy traffic, no credit at risk).
        for _ in 0..200 {
            if client
                .call(RequestBody::AddBlock { node_id: 1.into() })
                .await
                .is_err()
            {
                break;
            }
            tokio::time::sleep(Duration::from_millis(5)).await;
        }
        let (server2, _metrics2) = start(addr).await;
        // With a window of 1, a leaked credit would make every call here
        // time out. Several calls must succeed back-to-back.
        let mut healed = 0;
        for i in 0..50u64 {
            if stream
                .call(RequestBody::AddBlock {
                    node_id: (i + 1).into(),
                })
                .await
                .is_ok()
            {
                healed += 1;
                if healed >= 3 {
                    break;
                }
            } else {
                tokio::time::sleep(Duration::from_millis(10)).await;
            }
        }
        assert!(healed >= 3, "stream did not heal with its window intact");
        drop(server2);
    }
}
