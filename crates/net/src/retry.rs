//! Deadlines, retry budgets, and jittered backoff for the RPC plane.
//!
//! Every call carries a deadline chosen by its *operation class* (metadata,
//! data, or action — action streams legitimately block far longer than a
//! lookup). Failed calls are retried automatically only when the operation
//! is idempotent ([`RequestBody::is_idempotent`]) *and* the error is
//! transient ([`glider_proto::ErrorCode::is_retryable`]); everything else
//! surfaces the typed error so the caller can decide. Retry delays use
//! exponential backoff with *full jitter* (delay drawn uniformly from
//! `[0, min(cap, base·2^attempt)]`), the standard recipe for avoiding
//! synchronized retry storms from swarms of serverless workers.

use glider_proto::message::RequestBody;
use std::time::Duration;

/// The deadline class of an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Namespace and registry operations served by the metadata plane.
    Metadata,
    /// Block reads/writes/frees served by data servers.
    Data,
    /// Action lifecycle and stream operations served by active servers
    /// (these block on user code and get the longest deadline).
    Action,
}

/// Classifies a request body into its deadline class.
pub fn op_class(body: &RequestBody) -> OpClass {
    match body {
        RequestBody::Hello { .. }
        | RequestBody::CreateNode { .. }
        | RequestBody::LookupNode { .. }
        | RequestBody::DeleteNode { .. }
        | RequestBody::ListChildren { .. }
        | RequestBody::AddBlock { .. }
        | RequestBody::AddBlocks { .. }
        | RequestBody::CommitBlock { .. }
        | RequestBody::CommitBlocks { .. }
        | RequestBody::ReplaceBlock { .. }
        | RequestBody::RegisterServer { .. }
        | RequestBody::Stats
        | RequestBody::DumpSpans { .. }
        | RequestBody::MetricsSeries
        | RequestBody::NodeReplicas { .. }
        | RequestBody::RepairNode { .. }
        | RequestBody::Heartbeat { .. } => OpClass::Metadata,
        RequestBody::WriteBlock { .. }
        | RequestBody::ReadBlock { .. }
        | RequestBody::ForwardChunk { .. }
        | RequestBody::ReplicateBlock { .. }
        | RequestBody::FreeBlocks { .. } => OpClass::Data,
        RequestBody::ActionCreate { .. }
        | RequestBody::ActionDelete { .. }
        | RequestBody::StreamOpen { .. }
        | RequestBody::StreamChunk { .. }
        | RequestBody::StreamChunkBatch { .. }
        | RequestBody::StreamFetch { .. }
        | RequestBody::StreamClose { .. } => OpClass::Action,
    }
}

/// Per-connection fault-tolerance knobs: per-class deadlines, the retry
/// budget, and backoff shape. One policy instance is attached to each
/// [`crate::RpcClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per call (first try included). `1` disables retries.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_delay: Duration,
    /// Hard cap on any single backoff delay.
    pub max_delay: Duration,
    /// Deadline for metadata-plane calls.
    pub metadata_deadline: Duration,
    /// Deadline for data-plane calls.
    pub data_deadline: Duration,
    /// Deadline for action calls (streams block on user code).
    pub action_deadline: Duration,
    /// Dial attempts when healing a dropped connection.
    pub reconnect_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            metadata_deadline: Duration::from_secs(10),
            data_deadline: Duration::from_secs(30),
            action_deadline: Duration::from_secs(120),
            reconnect_attempts: 4,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never redials (deadlines still
    /// apply). Useful for tests asserting first-failure behavior.
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            reconnect_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The deadline for one attempt of an operation in `class`.
    pub fn deadline(&self, class: OpClass) -> Duration {
        match class {
            OpClass::Metadata => self.metadata_deadline,
            OpClass::Data => self.data_deadline,
            OpClass::Action => self.action_deadline,
        }
    }

    /// Whether the budget allows another attempt after `attempts_made`
    /// attempts have already run. The retry loops of this crate gate every
    /// retry on this, so the budget is a hard bound by construction.
    pub fn allows(&self, attempts_made: u32) -> bool {
        attempts_made < self.max_attempts
    }

    /// The full-jitter backoff delay before retry number `attempt`
    /// (1-based): uniform in `[0, min(max_delay, base_delay · 2^attempt)]`.
    pub fn backoff(&self, attempt: u32, rng: &mut JitterRng) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX));
        let cap = exp.min(self.max_delay);
        let nanos = cap.as_nanos().min(u128::from(u64::MAX)) as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(rng.next() % (nanos + 1))
    }
}

/// A tiny xorshift64* generator for backoff jitter. Not cryptographic —
/// it only has to decorrelate retry timings across callers, and taking a
/// dependency on a full RNG crate for that is not worth it.
#[derive(Debug)]
pub struct JitterRng(u64);

impl JitterRng {
    /// Seeds the generator (zero seeds are nudged to stay productive).
    pub fn seeded(seed: u64) -> Self {
        JitterRng(seed | 1)
    }

    /// The next pseudo-random `u64`.
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glider_proto::types::{BlockId, NodeId, ServerId};
    use proptest::prelude::*;

    #[test]
    fn classes_cover_both_planes() {
        assert_eq!(
            op_class(&RequestBody::LookupNode { path: "/a".into() }),
            OpClass::Metadata
        );
        assert_eq!(
            op_class(&RequestBody::Heartbeat {
                server_id: ServerId(1)
            }),
            OpClass::Metadata
        );
        assert_eq!(
            op_class(&RequestBody::ReadBlock {
                block_id: BlockId(1),
                offset: 0,
                len: 1
            }),
            OpClass::Data
        );
        assert_eq!(
            op_class(&RequestBody::ActionDelete { node_id: NodeId(1) }),
            OpClass::Action
        );
        let p = RetryPolicy::default();
        assert!(p.deadline(OpClass::Action) >= p.deadline(OpClass::Data));
        assert!(p.deadline(OpClass::Data) >= p.deadline(OpClass::Metadata));
    }

    proptest! {
        /// Satellite: jittered delays are always bounded by the cap AND by
        /// the exponential envelope, and they stay sane across seeds.
        #[test]
        fn backoff_is_bounded_by_cap_and_envelope(
            attempt in 1u32..64,
            seed in any::<u64>(),
            base_ms in 1u64..100,
            cap_ms in 1u64..2000,
        ) {
            let policy = RetryPolicy {
                base_delay: Duration::from_millis(base_ms),
                max_delay: Duration::from_millis(cap_ms),
                ..RetryPolicy::default()
            };
            let mut rng = JitterRng::seeded(seed);
            let delay = policy.backoff(attempt, &mut rng);
            prop_assert!(delay <= policy.max_delay);
            let envelope = policy
                .base_delay
                .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX));
            prop_assert!(delay <= envelope);
        }

        /// Satellite: the retry budget is a hard bound — a loop gated on
        /// `allows` (exactly how the RPC client gates retries) never runs
        /// more attempts than configured.
        #[test]
        fn budget_never_exceeds_configured_attempts(max_attempts in 1u32..32) {
            let policy = RetryPolicy { max_attempts, ..RetryPolicy::default() };
            let mut attempts = 0u32;
            loop {
                attempts += 1; // the attempt itself (always fails)
                if !policy.allows(attempts) {
                    break;
                }
            }
            prop_assert_eq!(attempts, max_attempts);
        }

        /// Successive delays for one attempt number are monotonically
        /// bounded: raising the cap never lowers the envelope guarantee.
        #[test]
        fn cap_is_monotone(seed in any::<u64>(), attempt in 1u32..32) {
            let small = RetryPolicy {
                max_delay: Duration::from_millis(50),
                ..RetryPolicy::default()
            };
            let mut rng = JitterRng::seeded(seed);
            let d = small.backoff(attempt, &mut rng);
            prop_assert!(d <= Duration::from_millis(50));
        }
    }
}
