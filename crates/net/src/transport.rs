//! The pluggable transport registry.
//!
//! A [`Transport`] turns addresses into framed connections: `dial` opens
//! the client side, `bind` the server side, both speaking the
//! [`FrameTx`]/[`FrameRx`] interface from [`crate::conn`]. Scheme
//! dispatch is data-driven — [`TRANSPORTS`] lists every implementation
//! and [`transport_for`] picks by address — so an RDMA-sim or io_uring
//! backend is one new impl plus one registry entry, with no call-site
//! changes. `cargo xtask lint` checks that every `impl Transport` in
//! this crate appears in the registry initializer.
//!
//! Fault injection deliberately lives *outside* the transports, as a
//! wrapper on the connection halves (see [`crate::conn`] and
//! [`crate::fault`]), so chaos tests exercise whichever backend carries
//! the traffic.

use crate::conn::{self, BoundListener, FrameRx, FrameTx, MEM_LABEL, MEM_SCHEME, TCP_LABEL};
use futures::future::BoxFuture;
use futures::FutureExt;
use glider_proto::{GliderError, GliderResult};
use std::fmt;

/// A connection-oriented transport: one way of turning an address into a
/// framed, bidirectional byte stream.
///
/// Implementations are stateless unit structs registered in
/// [`TRANSPORTS`]; per-connection state lives in the returned halves.
pub trait Transport: Send + Sync + fmt::Debug {
    /// Stable scheme label (metrics, diagnostics): `"tcp"`, `"mem"`, …
    fn scheme(&self) -> &'static str;

    /// Whether this transport claims `addr`. The registry is scanned in
    /// order, so claims should be prefix-exact (TCP, the schemeless
    /// fallback, is last).
    fn matches(&self, addr: &str) -> bool;

    /// Opens the client side of a connection to `addr`.
    fn dial<'a>(&'a self, addr: &'a str) -> BoxFuture<'a, GliderResult<(FrameTx, FrameRx)>>;

    /// Binds a listener at `addr`.
    fn bind<'a>(&'a self, addr: &'a str) -> BoxFuture<'a, GliderResult<BoundListener>>;
}

/// The in-process `mem://` transport (RDMA simulation): bounded channels
/// with a process-global name registry.
#[derive(Debug)]
pub struct MemTransport;

impl Transport for MemTransport {
    fn scheme(&self) -> &'static str {
        MEM_LABEL
    }

    fn matches(&self, addr: &str) -> bool {
        addr.starts_with(MEM_SCHEME)
    }

    fn dial<'a>(&'a self, addr: &'a str) -> BoxFuture<'a, GliderResult<(FrameTx, FrameRx)>> {
        conn::dial_mem(addr).boxed()
    }

    fn bind<'a>(&'a self, addr: &'a str) -> BoxFuture<'a, GliderResult<BoundListener>> {
        conn::bind_mem(addr).boxed()
    }
}

/// The TCP transport. Claims every schemeless `host:port` address, so it
/// must stay last in [`TRANSPORTS`].
#[derive(Debug)]
pub struct TcpTransport;

impl Transport for TcpTransport {
    fn scheme(&self) -> &'static str {
        TCP_LABEL
    }

    fn matches(&self, addr: &str) -> bool {
        !addr.contains("://")
    }

    fn dial<'a>(&'a self, addr: &'a str) -> BoxFuture<'a, GliderResult<(FrameTx, FrameRx)>> {
        conn::dial_tcp(addr).boxed()
    }

    fn bind<'a>(&'a self, addr: &'a str) -> BoxFuture<'a, GliderResult<BoundListener>> {
        conn::bind_tcp(addr).boxed()
    }
}

/// Every registered transport, in claim order. `cargo xtask lint`
/// cross-checks this list against the `impl Transport` blocks in the
/// crate, so adding a backend without registering it fails the build.
pub static TRANSPORTS: [&'static dyn Transport; 2] = [&MemTransport, &TcpTransport];

/// Resolves the transport claiming `addr`.
///
/// # Errors
///
/// Returns an invalid-argument error for an address whose scheme no
/// registered transport claims (e.g. `rdma://…` today).
pub fn transport_for(addr: &str) -> GliderResult<&'static dyn Transport> {
    TRANSPORTS
        .iter()
        .copied()
        .find(|t| t.matches(addr))
        .ok_or_else(|| GliderError::invalid(format!("no transport for address {addr:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_dispatches_by_scheme() {
        assert_eq!(transport_for("mem://x").unwrap().scheme(), MEM_LABEL);
        assert_eq!(transport_for("127.0.0.1:0").unwrap().scheme(), TCP_LABEL);
        assert_eq!(transport_for("node-3:7001").unwrap().scheme(), TCP_LABEL);
        assert!(transport_for("rdma://x").is_err());
        assert!(transport_for("iouring://x").is_err());
    }

    #[test]
    fn tcp_is_the_schemeless_fallback_and_stays_last() {
        let last = TRANSPORTS[TRANSPORTS.len() - 1];
        assert_eq!(last.scheme(), TCP_LABEL);
        // Every non-TCP transport must be scheme-prefixed, otherwise it
        // could shadow the fallback.
        for t in &TRANSPORTS[..TRANSPORTS.len() - 1] {
            assert!(!t.matches("127.0.0.1:0"), "{} claims raw TCP", t.scheme());
        }
    }

    #[tokio::test]
    async fn dial_through_trait_object_round_trips() {
        let t = transport_for("mem://transport-test-1").unwrap();
        let mut listener = t.bind("mem://transport-test-1").await.unwrap();
        let server = tokio::spawn(async move {
            let (mut tx, mut rx) = listener.accept().await.unwrap();
            let frame = rx.recv().await.unwrap().unwrap();
            tx.send(frame).await.unwrap();
        });
        let (mut tx, mut rx) = t.dial("mem://transport-test-1").await.unwrap();
        let frame = glider_proto::frame::Frame::Request(glider_proto::message::Request {
            id: 1,
            trace_id: 0,
            body: glider_proto::message::RequestBody::Stats,
        });
        tx.send(frame.clone()).await.unwrap();
        assert_eq!(rx.recv().await.unwrap().unwrap(), frame);
        server.await.unwrap();
    }
}
