//! Network substrate for the Glider reproduction.
//!
//! Two transports carry the framed protocol of `glider-proto`:
//!
//! - **TCP** (`"host:port"` addresses) — the normal cluster fabric. The
//!   paper's testbed reaches ~45 Gbps over TCP; we run over loopback.
//! - **`mem://` endpoints** — an in-process, zero-copy channel transport
//!   that models the paper's RDMA-enabled fast path ("Glider (RDMA)" in
//!   Table 2). Frames move as `Bytes` handles without serialization or
//!   syscalls. It is intended for storage-tier components, mirroring the
//!   paper's point that the high-performance network is *unavailable to
//!   serverless workers*.
//!
//! On top sits a small multiplexing RPC layer ([`rpc`]): a client may keep
//! many requests in flight (the paper's "asynchronous operations done in
//! batches to always keep data transfers in flight"), and the server spawns
//! one task per request so long-blocking operations (action stream fetches)
//! do not stall the connection.
//!
//! All servers meter bulk payload bytes into a
//! [`glider_metrics::MetricsRegistry`], tagged with the tier the peer
//! declared in its `Hello` handshake.

pub mod conn;
pub mod fault;
pub mod pool;
pub mod retry;
pub mod rpc;
pub mod stats;
pub mod transport;

pub use conn::{bind, connect, BoundListener, FrameRx, FrameTx, TaggedFrame};
pub use fault::{clear_faults, inject_faults, FaultConfig};
pub use pool::BytesPool;
pub use retry::{op_class, JitterRng, OpClass, RetryPolicy};
pub use rpc::{serve, ConnCtx, RpcClient, RpcHandler, RpcStream, ServerHandle};
pub use stats::{
    build_series, build_span_dump, build_stats, render_series, render_stats_json,
    render_stats_prom, render_stats_table, render_trace_tree,
};
pub use transport::{transport_for, MemTransport, TcpTransport, Transport, TRANSPORTS};
