//! Fault injection for the `mem://` transport (test harness).
//!
//! Chaos tests register a [`FaultConfig`] against a `mem://` endpoint name
//! *before or after* connections exist; every client-side connection to
//! that endpoint consults the shared config on each frame. Supported
//! faults mirror the classic network failure modes:
//!
//! - **drop frame** — the next N outbound (or inbound) frames vanish
//!   silently, as if lost in flight;
//! - **delay** — every outbound frame is held for a fixed duration;
//! - **error-on-nth-call** — the Nth outbound frame fails with an I/O
//!   error, exercising the typed `Retryable` path;
//! - **sever** — both directions fail with `Closed` until [`FaultConfig::heal`],
//!   exercising reconnection;
//! - **blackhole** — frames in both directions vanish without error, the
//!   server looks alive-but-silent, and only deadlines can save the call.
//!
//! TCP connections are never faulted — this harness exists to make the
//! in-process chaos tests deterministic.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;
use tokio::sync::Notify;

/// Shared fault state for one `mem://` endpoint. All methods are safe to
/// call concurrently with live traffic; changes apply to the next frame.
#[derive(Debug, Default)]
pub struct FaultConfig {
    drop_sends: AtomicU64,
    drop_recvs: AtomicU64,
    delay_send_nanos: AtomicU64,
    error_on_send: AtomicU64,
    sends_seen: AtomicU64,
    severed: AtomicBool,
    blackhole: AtomicBool,
    crashed: AtomicBool,
    sever_notify: Notify,
}

impl FaultConfig {
    /// Silently drops the next `n` outbound frames.
    pub fn drop_next_sends(&self, n: u64) {
        self.drop_sends.fetch_add(n, Ordering::Relaxed);
    }

    /// Silently drops the next `n` inbound frames.
    pub fn drop_next_recvs(&self, n: u64) {
        self.drop_recvs.fetch_add(n, Ordering::Relaxed);
    }

    /// Delays every outbound frame by `d` (zero disables).
    pub fn delay_sends(&self, d: Duration) {
        self.delay_send_nanos.store(
            d.as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// Fails the `n`th outbound frame (1-based, counted from connection
    /// birth) with an I/O error. `0` disables.
    pub fn error_on_nth_send(&self, n: u64) {
        self.error_on_send.store(n, Ordering::Relaxed);
    }

    /// Severs the endpoint: every send and receive fails with `Closed`
    /// until [`FaultConfig::heal`] is called. In-flight receivers are
    /// woken immediately.
    pub fn sever(&self) {
        self.severed.store(true, Ordering::SeqCst);
        self.sever_notify.notify_waiters();
    }

    /// Turns the endpoint into a blackhole (frames vanish silently in
    /// both directions) or back.
    pub fn blackhole(&self, on: bool) {
        self.blackhole.store(on, Ordering::SeqCst);
    }

    /// Simulates `kill -9` of the process behind the endpoint: every
    /// live connection fails with `Closed` immediately (like
    /// [`FaultConfig::sever`]) *and* new dials are refused until
    /// [`FaultConfig::restart`]. Unlike a sever, [`FaultConfig::heal`]
    /// does not undo a crash — a dead process stays dead until it is
    /// explicitly brought back.
    pub fn crash(&self) {
        self.crashed.store(true, Ordering::SeqCst);
        self.sever();
    }

    /// Brings a crashed endpoint back: new dials succeed again. The
    /// state the process lost stays lost — only what it persisted (WAL
    /// segments, snapshot) and re-registers survives, which is exactly
    /// what the durability tests assert.
    pub fn restart(&self) {
        self.crashed.store(false, Ordering::SeqCst);
        self.heal();
    }

    /// Whether the endpoint is currently crashed (refusing dials).
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Clears sever and blackhole states; counters keep running. Does
    /// not clear a crash (see [`FaultConfig::restart`]).
    pub fn heal(&self) {
        self.severed.store(false, Ordering::SeqCst);
        self.blackhole.store(false, Ordering::SeqCst);
    }

    /// Whether the endpoint is currently severed. A crashed endpoint is
    /// always severed: its connections cannot come back via `heal`.
    pub fn is_severed(&self) -> bool {
        self.severed.load(Ordering::SeqCst) || self.is_crashed()
    }

    /// Whether the endpoint currently swallows all frames.
    pub fn is_blackhole(&self) -> bool {
        self.blackhole.load(Ordering::SeqCst)
    }

    /// The configured per-send delay, if any.
    pub(crate) fn send_delay(&self) -> Option<Duration> {
        let nanos = self.delay_send_nanos.load(Ordering::Relaxed);
        (nanos > 0).then(|| Duration::from_nanos(nanos))
    }

    /// Counts one outbound frame; returns an error marker when this frame
    /// was configured to fail.
    pub(crate) fn count_send_and_check_error(&self) -> bool {
        let seen = self.sends_seen.fetch_add(1, Ordering::Relaxed) + 1;
        let nth = self.error_on_send.load(Ordering::Relaxed);
        nth != 0 && seen == nth
    }

    /// Consumes one outbound drop token, if any.
    pub(crate) fn take_drop_send(&self) -> bool {
        take_token(&self.drop_sends)
    }

    /// Consumes one inbound drop token, if any.
    pub(crate) fn take_drop_recv(&self) -> bool {
        take_token(&self.drop_recvs)
    }

    /// A future resolving when the endpoint is severed.
    pub(crate) async fn severed_wait(&self) {
        while !self.is_severed() {
            self.sever_notify.notified().await;
        }
    }
}

fn take_token(counter: &AtomicU64) -> bool {
    counter
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
        .is_ok()
}

type FaultRegistry = Mutex<HashMap<String, Arc<FaultConfig>>>;

fn fault_registry() -> &'static FaultRegistry {
    static REGISTRY: OnceLock<FaultRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns (creating if needed) the fault config for a `mem://` address.
/// Connections dialed before or after this call all share the config.
pub fn inject_faults(addr: &str) -> Arc<FaultConfig> {
    Arc::clone(fault_registry().lock().entry(addr.to_string()).or_default())
}

/// Stops faulting *new* connections to `addr`. Existing connections keep
/// their shared config; call [`FaultConfig::heal`] first to unblock them.
pub fn clear_faults(addr: &str) {
    fault_registry().lock().remove(addr);
}

/// The fault config new connections to `addr` will pick up, if any.
pub(crate) fn lookup_faults(addr: &str) -> Option<Arc<FaultConfig>> {
    fault_registry().lock().get(addr).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_tokens_are_consumed_once() {
        let f = FaultConfig::default();
        f.drop_next_sends(2);
        assert!(f.take_drop_send());
        assert!(f.take_drop_send());
        assert!(!f.take_drop_send());
        assert!(!f.take_drop_recv());
    }

    #[test]
    fn error_on_nth_counts_from_one() {
        let f = FaultConfig::default();
        f.error_on_nth_send(3);
        assert!(!f.count_send_and_check_error());
        assert!(!f.count_send_and_check_error());
        assert!(f.count_send_and_check_error());
        assert!(!f.count_send_and_check_error());
    }

    #[test]
    fn sever_and_heal_toggle() {
        let f = FaultConfig::default();
        assert!(!f.is_severed());
        f.sever();
        assert!(f.is_severed());
        f.heal();
        assert!(!f.is_severed());
        f.blackhole(true);
        assert!(f.is_blackhole());
        f.heal();
        assert!(!f.is_blackhole());
    }

    #[test]
    fn crash_survives_heal_until_restart() {
        let f = FaultConfig::default();
        f.crash();
        assert!(f.is_crashed());
        assert!(f.is_severed());
        // heal() is not enough to bring a killed process back.
        f.heal();
        assert!(f.is_crashed());
        assert!(f.is_severed());
        f.restart();
        assert!(!f.is_crashed());
        assert!(!f.is_severed());
    }

    #[test]
    fn registry_is_shared_and_clearable() {
        let a = inject_faults("mem://fault-reg-test");
        let b = inject_faults("mem://fault-reg-test");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(lookup_faults("mem://fault-reg-test").is_some());
        clear_faults("mem://fault-reg-test");
        assert!(lookup_faults("mem://fault-reg-test").is_none());
    }
}
