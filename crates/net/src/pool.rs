//! Registered buffer pool for the data path.
//!
//! RDMA NICs require transfer buffers to be *registered* (pinned and
//! mapped) ahead of time, which makes buffer reuse a first-class concern
//! rather than an optimization. [`BytesPool`] models that discipline for
//! the reproduction: a fixed-size-class freelist of [`BytesMut`] buffers
//! that the WriteBlock/ReadBlock fast path draws from instead of
//! allocating per frame.
//!
//! Lifecycle:
//!
//! 1. [`BytesPool::get`] hands out an empty buffer — from the freelist
//!    when possible (*hit*), freshly allocated otherwise (*miss*);
//! 2. the caller fills it, freezes it to [`Bytes`] and sends it; the
//!    frame layer moves the handle without copying;
//! 3. once every clone of the handle has dropped, [`BytesPool::recycle`]
//!    reclaims the allocation via [`Bytes::try_into_mut`] and returns it
//!    to the freelist.
//!
//! Step 3 is the aliasing guarantee: a buffer re-enters the pool only
//! when it is provably the *sole* handle to its allocation, so a pooled
//! buffer can never alias bytes still visible elsewhere. Reused buffers
//! are returned empty (length zero) but are **not** zeroed — exactly the
//! registered-buffer semantics, and the safe API cannot read past the
//! length anyway.
//!
//! Hit/miss counters feed the sweep's "zero per-frame allocations"
//! assertion and, when a [`MetricsRegistry`] is attached, the Stats RPC.
//! The freelist lock is [`LockRank::BufferPool`], the innermost rank in
//! the workspace hierarchy: recycling may happen while any other lock is
//! held, and nothing is ever acquired under it.

use bytes::{Bytes, BytesMut};
use glider_metrics::MetricsRegistry;
use glider_util::lockorder::{LockRank, OrderedMutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fixed-size-class pool of reusable byte buffers. Cheap to share via
/// `Arc`; all methods take `&self`.
#[derive(Debug)]
pub struct BytesPool {
    buf_size: usize,
    max_free: usize,
    free: OrderedMutex<Vec<BytesMut>>,
    hits: AtomicU64,
    misses: AtomicU64,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl BytesPool {
    /// Creates a pool of `buf_size`-byte buffers keeping at most
    /// `max_free` of them on the freelist (excess returns are dropped,
    /// bounding idle memory to `buf_size * max_free`).
    pub fn new(buf_size: usize, max_free: usize) -> Arc<Self> {
        Self::build(buf_size, max_free, None)
    }

    /// Like [`BytesPool::new`], additionally mirroring hit/miss counts
    /// into `metrics` for the Stats RPC.
    pub fn with_metrics(
        buf_size: usize,
        max_free: usize,
        metrics: Arc<MetricsRegistry>,
    ) -> Arc<Self> {
        Self::build(buf_size, max_free, Some(metrics))
    }

    fn build(buf_size: usize, max_free: usize, metrics: Option<Arc<MetricsRegistry>>) -> Arc<Self> {
        assert!(buf_size > 0, "pool buffer size must be non-zero");
        Arc::new(BytesPool {
            buf_size,
            max_free,
            free: OrderedMutex::new(LockRank::BufferPool, Vec::with_capacity(max_free)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            metrics,
        })
    }

    /// The size class of this pool's buffers, in bytes.
    pub fn buf_size(&self) -> usize {
        self.buf_size
    }

    /// Takes an empty buffer with at least [`BytesPool::buf_size`] bytes
    /// of capacity — recycled when the freelist has one, freshly
    /// allocated otherwise.
    // glider: hot-path (buffer pool get/put/recycle)
    pub fn get(&self) -> BytesMut {
        let reused = self.free.lock().pop();
        match reused {
            Some(mut buf) => {
                buf.clear();
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.pool_hit();
                }
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.pool_miss();
                }
                BytesMut::with_capacity(self.buf_size)
            }
        }
    }

    /// Returns a buffer to the freelist. Undersized buffers (capacity
    /// below the pool's size class) and returns beyond `max_free` are
    /// dropped instead; the return value says whether the buffer was
    /// actually kept.
    pub fn put(&self, buf: BytesMut) -> bool {
        if buf.capacity() < self.buf_size {
            return false;
        }
        let mut free = self.free.lock();
        if free.len() >= self.max_free {
            return false;
        }
        free.push(buf);
        true
    }

    /// Attempts to reclaim a frozen buffer. Succeeds only when `bytes`
    /// is the sole handle to its allocation ([`Bytes::try_into_mut`]) —
    /// the pool never takes back memory something else can still read —
    /// and the allocation fits the pool's size class.
    pub fn recycle(&self, bytes: Bytes) -> bool {
        match bytes.try_into_mut() {
            Ok(buf) => self.put(buf),
            Err(_still_shared) => false,
        }
    }
    // glider: end-hot-path

    /// Buffers currently parked on the freelist.
    pub fn free_len(&self) -> usize {
        self.free.lock().len()
    }

    /// Gets served from the freelist so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Gets that had to allocate so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of gets served from the freelist, in `[0.0, 1.0]`; 0.0
    /// before any get (so hit-rate assertions cannot pass vacuously).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits();
        let total = hits + self.misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn get_put_get_reuses_the_allocation() {
        let pool = BytesPool::new(4096, 8);
        let mut buf = pool.get();
        assert_eq!((pool.hits(), pool.misses()), (0, 1));
        assert!(buf.capacity() >= 4096);
        buf.extend_from_slice(b"scratch");
        assert!(pool.put(buf));
        let buf = pool.get();
        assert_eq!((pool.hits(), pool.misses()), (1, 1));
        assert!(buf.is_empty(), "reused buffers come back empty");
        assert!(buf.capacity() >= 4096, "capacity survives the round trip");
    }

    #[test]
    fn recycle_refuses_shared_handles() {
        let pool = BytesPool::new(64, 8);
        let mut buf = pool.get();
        buf.extend_from_slice(b"payload");
        let frozen = buf.freeze();
        let alias = frozen.clone();
        // Two handles alive: reclaiming now would alias `alias`.
        assert!(!pool.recycle(frozen));
        assert_eq!(pool.free_len(), 0);
        assert_eq!(&alias[..], b"payload", "shared handle stays intact");
        // Sole remaining handle: reclaim succeeds.
        assert!(pool.recycle(alias));
        assert_eq!(pool.free_len(), 1);
        assert_eq!(pool.get().len(), 0);
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn undersized_and_overflow_returns_are_dropped() {
        let pool = BytesPool::new(1024, 1);
        assert!(!pool.put(BytesMut::with_capacity(16)), "undersized");
        assert!(pool.put(BytesMut::with_capacity(1024)));
        assert!(
            !pool.put(BytesMut::with_capacity(1024)),
            "freelist is full at max_free"
        );
        assert_eq!(pool.free_len(), 1);
    }

    #[test]
    fn hit_rate_is_zero_before_traffic() {
        let pool = BytesPool::new(16, 4);
        assert_eq!(pool.hit_rate(), 0.0);
        drop(pool.get());
        assert_eq!(pool.hit_rate(), 0.0); // one miss
        pool.put(pool.get()); // second miss…
        drop(pool.get()); // …then a hit
        assert!((pool.hit_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_mirror_counts_hits_and_misses() {
        let metrics = MetricsRegistry::new();
        let pool = BytesPool::with_metrics(64, 4, Arc::clone(&metrics));
        pool.put(pool.get());
        drop(pool.get());
        let snap = metrics.snapshot();
        assert_eq!((snap.pool_hits, snap.pool_misses), (1, 1));
        assert!((snap.pool_hit_rate() - 0.5).abs() < 1e-9);
    }

    proptest! {
        /// Outstanding buffers never alias: each holds exactly the
        /// pattern written into it, no matter how gets and puts
        /// interleave.
        #[test]
        fn outstanding_buffers_are_independent(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
            let pool = BytesPool::new(32, 8);
            let mut outstanding: Vec<(u8, BytesMut)> = Vec::new();
            let mut next_tag: u8 = 0;
            for op in ops {
                if op || outstanding.is_empty() {
                    let mut buf = pool.get();
                    prop_assert!(buf.is_empty());
                    buf.extend_from_slice(&[next_tag; 32]);
                    outstanding.push((next_tag, buf));
                    next_tag = next_tag.wrapping_add(1);
                } else {
                    let (_, buf) = outstanding.swap_remove(outstanding.len() / 2);
                    pool.put(buf);
                }
                for (tag, buf) in &outstanding {
                    prop_assert_eq!(&buf[..], &[*tag; 32][..], "buffer contents clobbered");
                }
            }
            let gets = pool.hits() + pool.misses();
            prop_assert!(pool.hits() <= gets);
            prop_assert!(pool.free_len() <= 8);
        }

        /// Freeze/recycle round trips reclaim capacity: once the sole
        /// handle is recycled, the next get is a hit and keeps the size
        /// class.
        #[test]
        fn recycle_reclaims_capacity(len in 1usize..64, rounds in 1usize..20) {
            let pool = BytesPool::new(64, 4);
            let mut misses_seen = 0;
            for round in 0..rounds {
                let mut buf = pool.get();
                if round == 0 {
                    misses_seen = pool.misses();
                }
                buf.extend_from_slice(&vec![0xA5u8; len]);
                let frozen = buf.freeze();
                prop_assert!(pool.recycle(frozen), "sole handle must recycle");
            }
            // Only the first get may allocate; every later one is a hit.
            prop_assert_eq!(pool.misses(), misses_seen);
            prop_assert_eq!(pool.hits(), rounds as u64 - 1);
            let buf = pool.get();
            prop_assert!(buf.capacity() >= 64);
        }
    }
}
