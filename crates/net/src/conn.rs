//! Framed connections over the registered transports.
//!
//! Addresses are either `host:port` (TCP) or `mem://<name>` (the in-process
//! RDMA-simulation transport; see the [crate docs](crate)). Scheme
//! dispatch lives in [`crate::transport`]: [`bind`] and [`connect`] look
//! the address's transport up in the registry, so new backends (io_uring,
//! RDMA-sim) plug in without touching this module.
//!
//! Every frame travels with a logical *stream tag* (see
//! `glider_proto::frame`): [`FrameTx::send_tagged`] /
//! [`FrameRx::recv_tagged`] expose it, while the untagged [`FrameTx::send`]
//! / [`FrameRx::recv`] operate on the legacy stream 0. Fault injection is
//! a transport-layer wrapper here — the [`FaultConfig`] hooks apply
//! uniformly to whichever transport carries the connection, not to one
//! concrete backend.

use crate::fault::FaultConfig;
use bytes::{Bytes, BytesMut};
use glider_proto::frame::{decode_frame_tagged, encode_frame_header_tagged, Frame, LEGACY_STREAM};
use glider_proto::{ErrorCode, GliderError, GliderResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::IoSlice;
use std::ops::Range;
use std::sync::Arc;
use tokio::io::{AsyncReadExt, AsyncWrite, AsyncWriteExt};
use tokio::net::tcp::{OwnedReadHalf, OwnedWriteHalf};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::mpsc;

/// Scheme prefix selecting the in-memory transport.
pub const MEM_SCHEME: &str = "mem://";

/// Stable scheme label of the TCP transport (metrics, diagnostics).
pub const TCP_LABEL: &str = "tcp";

/// Stable scheme label of the in-memory transport (metrics, diagnostics).
pub const MEM_LABEL: &str = "mem";

/// A frame together with the logical stream it belongs to. Stream
/// [`LEGACY_STREAM`] (0) is un-multiplexed traffic.
pub type TaggedFrame = (u32, Frame);

/// Bounded depth of in-memory connections, providing backpressure roughly
/// equivalent to a TCP send window.
const MEM_CHANNEL_DEPTH: usize = 64;

/// Initial capacity of per-connection encode/receive buffers.
const IO_BUF_INIT: usize = 64 * 1024;

/// A receive buffer whose capacity outgrew this threshold is replaced with
/// a fresh [`IO_BUF_INIT`]-sized one as soon as it drains, so one large
/// frame does not pin its high-water allocation for the connection's
/// lifetime (decoded payloads keep the old allocation alive only as long
/// as the application holds them).
const RECV_BUF_RECLAIM: usize = 256 * 1024;

/// Sending half of a framed connection.
///
/// Fault injection wraps the transport: when a [`FaultConfig`] is
/// attached (the client side of `mem://` connections today), its send
/// faults are applied here before the inner transport sees the frame.
#[derive(Debug)]
pub struct FrameTx {
    pub(crate) inner: TxInner,
    pub(crate) faults: Option<Arc<FaultConfig>>,
}

#[derive(Debug)]
pub(crate) enum TxInner {
    Tcp {
        io: OwnedWriteHalf,
        buf: BytesMut,
        /// Reusable per-batch staging: `(header range into buf, payload)`.
        /// Cleared after every batch so payload refcounts drop promptly;
        /// kept allocated so the steady-state write path performs no
        /// per-batch `Vec` growth.
        parts: Vec<(Range<usize>, Option<Bytes>)>,
    },
    Mem {
        tx: mpsc::Sender<TaggedFrame>,
    },
}

/// Receiving half of a framed connection (see [`FrameTx`] on faults).
#[derive(Debug)]
pub struct FrameRx {
    pub(crate) inner: RxInner,
    pub(crate) faults: Option<Arc<FaultConfig>>,
}

#[derive(Debug)]
pub(crate) enum RxInner {
    Tcp { io: OwnedReadHalf, buf: BytesMut },
    Mem { rx: mpsc::Receiver<TaggedFrame> },
}

/// Outcome of applying send-side faults to one frame.
enum SendFault {
    /// No fault: hand the frame to the transport.
    Deliver,
    /// The frame vanishes without trace (blackhole / drop-next).
    Swallow,
}

/// Applies the send-side fault sequence (sever, injected error, delay,
/// blackhole/drop) shared by every transport.
async fn apply_send_faults(faults: &FaultConfig) -> GliderResult<SendFault> {
    if faults.is_severed() {
        return Err(GliderError::closed("connection (injected sever)"));
    }
    if faults.count_send_and_check_error() {
        return Err(GliderError::new(
            ErrorCode::Io,
            "injected fault: send error",
        ));
    }
    if let Some(delay) = faults.send_delay() {
        tokio::time::sleep(delay).await;
    }
    if faults.is_blackhole() || faults.take_drop_send() {
        return Ok(SendFault::Swallow);
    }
    Ok(SendFault::Deliver)
}

impl FrameTx {
    /// The scheme label of the transport carrying this connection.
    pub fn scheme(&self) -> &'static str {
        match &self.inner {
            TxInner::Tcp { .. } => TCP_LABEL,
            TxInner::Mem { .. } => MEM_LABEL,
        }
    }

    /// Sends one frame on the legacy stream 0.
    ///
    /// On TCP the header and any bulk payload are written as separate I/O
    /// slices in one vectored write — payload bytes are never copied into
    /// a staging buffer.
    ///
    /// # Errors
    ///
    /// Returns an error when the peer has closed the connection or the
    /// underlying I/O fails.
    pub async fn send(&mut self, frame: Frame) -> GliderResult<()> {
        self.send_tagged(LEGACY_STREAM, frame).await
    }

    /// Sends one frame tagged with logical stream `stream`.
    ///
    /// # Errors
    ///
    /// Returns an error when the peer has closed the connection or the
    /// underlying I/O fails.
    pub async fn send_tagged(&mut self, stream: u32, frame: Frame) -> GliderResult<()> {
        if let Some(faults) = self.faults.clone() {
            match apply_send_faults(&faults).await? {
                SendFault::Deliver => {}
                SendFault::Swallow => return Ok(()),
            }
        }
        self.inner.send_raw(stream, frame).await
    }

    /// Sends every frame in `frames` (draining the vector), coalescing the
    /// whole batch into a single vectored write on TCP so a burst of
    /// queued frames costs one syscall instead of one per frame.
    ///
    /// # Errors
    ///
    /// Returns an error when the peer has closed the connection or the
    /// underlying I/O fails; the batch may then be partially transmitted.
    pub async fn send_batch(&mut self, frames: &mut Vec<TaggedFrame>) -> GliderResult<()> {
        if self.faults.is_some() {
            // Faulted connections take the per-frame path so drop/error
            // faults keep their one-frame granularity.
            for (stream, frame) in frames.drain(..) {
                self.send_tagged(stream, frame).await?;
            }
            return Ok(());
        }
        self.inner.send_batch_raw(frames).await
    }
}

// glider: hot-path (frame send: header staging + vectored write)
impl TxInner {
    async fn send_raw(&mut self, stream: u32, frame: Frame) -> GliderResult<()> {
        match self {
            TxInner::Tcp { io, buf, .. } => {
                buf.clear();
                let payload = encode_frame_header_tagged(&frame, stream, buf);
                let header: &[u8] = buf;
                match &payload {
                    Some(p) if !p.is_empty() => {
                        write_all_vectored(io, &[header, p]).await?;
                    }
                    _ => io.write_all(header).await?,
                }
                Ok(())
            }
            TxInner::Mem { tx } => tx
                .send((stream, frame))
                .await
                .map_err(|_| GliderError::closed("connection")),
        }
    }

    async fn send_batch_raw(&mut self, frames: &mut Vec<TaggedFrame>) -> GliderResult<()> {
        match self {
            TxInner::Tcp { io, buf, parts } => {
                buf.clear();
                parts.clear();
                // All headers are staged contiguously in `buf`; payloads
                // ride out-of-band as reference-counted `Bytes`.
                for (stream, frame) in frames.drain(..) {
                    let start = buf.len();
                    let payload = encode_frame_header_tagged(&frame, stream, buf);
                    parts.push((start..buf.len(), payload));
                }
                let mut slices: Vec<&[u8]> = Vec::with_capacity(parts.len() * 2);
                for (header, payload) in parts.iter() {
                    // A Range<usize> clone, not a buffer copy:
                    let Some(header) = buf.get(header.clone()) else { // glider: alloc-ok (Range clone for slicing, no allocation)
                        return Err(GliderError::protocol("frame header range out of bounds"));
                    };
                    slices.push(header);
                    if let Some(p) = payload {
                        if !p.is_empty() {
                            slices.push(p);
                        }
                    }
                }
                let res = write_all_vectored(io, &slices).await;
                drop(slices);
                // Drop the payload refcounts now rather than at the next
                // batch: the receiver may want sole ownership (buffer
                // pools reclaim via `Bytes::try_into_mut`).
                parts.clear();
                res?;
                Ok(())
            }
            TxInner::Mem { tx } => {
                for tagged in frames.drain(..) {
                    tx.send(tagged)
                        .await
                        .map_err(|_| GliderError::closed("connection"))?;
                }
                Ok(())
            }
        }
    }
}

/// Writes every byte of `parts` to `io`, preferring one vectored write per
/// syscall and falling back to sequential [`AsyncWriteExt::write_all`]
/// when the transport does not support vectored I/O.
async fn write_all_vectored(io: &mut OwnedWriteHalf, parts: &[&[u8]]) -> std::io::Result<()> {
    if !io.is_write_vectored() {
        for part in parts {
            io.write_all(part).await?;
        }
        return Ok(());
    }
    // Index of the first unfinished part and the bytes of it already sent.
    let mut idx = 0;
    let mut offset = 0;
    let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(parts.len());
    while let Some(part) = parts.get(idx) {
        if part.len() == offset {
            idx += 1;
            offset = 0;
            continue;
        }
        let Some(unsent) = part.get(offset..) else {
            return Err(std::io::ErrorKind::InvalidInput.into());
        };
        slices.clear();
        slices.push(IoSlice::new(unsent));
        slices.extend(parts.iter().skip(idx + 1).map(|p| IoSlice::new(p)));
        let mut written = io.write_vectored(&slices).await?;
        if written == 0 {
            return Err(std::io::ErrorKind::WriteZero.into());
        }
        while written > 0 {
            let Some(part) = parts.get(idx) else {
                break;
            };
            let remaining = part.len() - offset;
            if written >= remaining {
                written -= remaining;
                idx += 1;
                offset = 0;
            } else {
                offset += written;
                written = 0;
            }
        }
    }
    Ok(())
}
// glider: end-hot-path

impl FrameRx {
    /// The scheme label of the transport carrying this connection.
    pub fn scheme(&self) -> &'static str {
        match &self.inner {
            RxInner::Tcp { .. } => TCP_LABEL,
            RxInner::Mem { .. } => MEM_LABEL,
        }
    }

    /// Receives the next frame, dropping its stream tag, or `None` when
    /// the peer closed cleanly.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed frames or transport failures.
    pub async fn recv(&mut self) -> GliderResult<Option<Frame>> {
        Ok(self.recv_tagged().await?.map(|(_, frame)| frame))
    }

    /// Receives the next frame together with its logical stream tag, or
    /// `None` when the peer closed cleanly.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed frames or transport failures.
    pub async fn recv_tagged(&mut self) -> GliderResult<Option<TaggedFrame>> {
        let FrameRx { inner, faults } = self;
        loop {
            let tagged = match faults {
                Some(f) => {
                    if f.is_severed() {
                        return Err(GliderError::closed("connection (injected sever)"));
                    }
                    tokio::select! {
                        tagged = inner.recv_raw() => tagged?,
                        _ = f.severed_wait() => {
                            return Err(GliderError::closed("connection (injected sever)"));
                        }
                    }
                }
                None => inner.recv_raw().await?,
            };
            match tagged {
                None => return Ok(None),
                Some(tagged) => {
                    if let Some(f) = faults {
                        if f.is_blackhole() || f.take_drop_recv() {
                            continue; // swallowed in flight
                        }
                    }
                    return Ok(Some(tagged));
                }
            }
        }
    }
}

impl RxInner {
    async fn recv_raw(&mut self) -> GliderResult<Option<TaggedFrame>> {
        match self {
            RxInner::Tcp { io, buf } => loop {
                if let Some(tagged) = decode_frame_tagged(buf).map_err(GliderError::from)? {
                    // Don't let one oversized frame pin its high-water
                    // capacity for the rest of the connection.
                    if buf.is_empty() && buf.capacity() > RECV_BUF_RECLAIM {
                        *buf = BytesMut::with_capacity(IO_BUF_INIT);
                    }
                    return Ok(Some(tagged));
                }
                let n = io.read_buf(buf).await?;
                if n == 0 {
                    if buf.is_empty() {
                        return Ok(None);
                    }
                    return Err(GliderError::new(
                        ErrorCode::Protocol,
                        "connection closed mid-frame",
                    ));
                }
            },
            RxInner::Mem { rx } => Ok(rx.recv().await),
        }
    }
}

pub(crate) fn tcp_pair(stream: TcpStream) -> (FrameTx, FrameRx) {
    stream.set_nodelay(true).ok();
    let (r, w) = stream.into_split();
    (
        FrameTx {
            inner: TxInner::Tcp {
                io: w,
                buf: BytesMut::with_capacity(IO_BUF_INIT),
                parts: Vec::new(),
            },
            faults: None,
        },
        FrameRx {
            inner: RxInner::Tcp {
                io: r,
                buf: BytesMut::with_capacity(IO_BUF_INIT),
            },
            faults: None,
        },
    )
}

pub(crate) struct MemConn {
    pub(crate) to_client: mpsc::Sender<TaggedFrame>,
    pub(crate) from_client: mpsc::Receiver<TaggedFrame>,
}

type MemRegistry = Mutex<HashMap<String, mpsc::UnboundedSender<MemConn>>>;

fn mem_registry() -> &'static MemRegistry {
    static REGISTRY: std::sync::OnceLock<Arc<MemRegistry>> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Arc::new(Mutex::new(HashMap::new())))
}

/// A bound listener on either transport.
#[derive(Debug)]
pub struct BoundListener(ListenerInner);

#[derive(Debug)]
enum ListenerInner {
    Tcp {
        listener: TcpListener,
        addr: String,
    },
    Mem {
        name: String,
        rx: mpsc::UnboundedReceiver<MemConn>,
    },
}

impl BoundListener {
    /// The dialable address of this listener (`host:port` or `mem://name`).
    pub fn local_addr(&self) -> &str {
        match &self.0 {
            ListenerInner::Tcp { addr, .. } => addr,
            ListenerInner::Mem { name, .. } => name,
        }
    }

    /// The scheme label of this listener's transport.
    pub fn scheme(&self) -> &'static str {
        match &self.0 {
            ListenerInner::Tcp { .. } => TCP_LABEL,
            ListenerInner::Mem { .. } => MEM_LABEL,
        }
    }

    /// Accepts the next inbound connection.
    ///
    /// # Errors
    ///
    /// Returns an error on socket failures or when a `mem://` listener has
    /// been removed from the registry.
    pub async fn accept(&mut self) -> GliderResult<(FrameTx, FrameRx)> {
        match &mut self.0 {
            ListenerInner::Tcp { listener, .. } => {
                let (stream, _) = listener.accept().await?;
                Ok(tcp_pair(stream))
            }
            ListenerInner::Mem { rx, name } => {
                let conn = rx
                    .recv()
                    .await
                    .ok_or_else(|| GliderError::closed(format!("mem listener {name}")))?;
                Ok((
                    FrameTx {
                        inner: TxInner::Mem { tx: conn.to_client },
                        faults: None,
                    },
                    FrameRx {
                        inner: RxInner::Mem {
                            rx: conn.from_client,
                        },
                        faults: None,
                    },
                ))
            }
        }
    }
}

impl Drop for BoundListener {
    fn drop(&mut self) {
        if let ListenerInner::Mem { name, .. } = &self.0 {
            mem_registry().lock().remove(name);
        }
    }
}

/// Binds a TCP listener (the `Transport` impl for TCP routes here).
pub(crate) async fn bind_tcp(addr: &str) -> GliderResult<BoundListener> {
    let listener = TcpListener::bind(addr).await?;
    let local = listener.local_addr()?;
    Ok(BoundListener(ListenerInner::Tcp {
        listener,
        addr: local.to_string(),
    }))
}

/// Registers a `mem://` listener (the `Transport` impl for mem routes
/// here).
pub(crate) async fn bind_mem(addr: &str) -> GliderResult<BoundListener> {
    let name = addr.strip_prefix(MEM_SCHEME).unwrap_or_default();
    if name.is_empty() {
        return Err(GliderError::invalid("mem:// address needs a name"));
    }
    let (tx, rx) = mpsc::unbounded_channel();
    let mut reg = mem_registry().lock();
    if reg.contains_key(addr) {
        return Err(GliderError::already_exists(format!("mem endpoint {addr}")));
    }
    reg.insert(addr.to_string(), tx);
    Ok(BoundListener(ListenerInner::Mem {
        name: addr.to_string(),
        rx,
    }))
}

/// Dials a TCP endpoint (the `Transport` impl for TCP routes here).
pub(crate) async fn dial_tcp(addr: &str) -> GliderResult<(FrameTx, FrameRx)> {
    let stream = TcpStream::connect(addr).await?;
    Ok(tcp_pair(stream))
}

/// Dials a `mem://` endpoint (the `Transport` impl for mem routes here),
/// attaching any registered fault configuration to the client-side
/// halves: outbound faults on the tx half, inbound on the rx half.
pub(crate) async fn dial_mem(addr: &str) -> GliderResult<(FrameTx, FrameRx)> {
    let faults = crate::fault::lookup_faults(addr);
    if faults
        .as_deref()
        .is_some_and(crate::fault::FaultConfig::is_crashed)
    {
        // The simulated process is dead (kill -9): refuse the dial like
        // a connection-refused socket would, until a restart.
        return Err(GliderError::unavailable(format!(
            "mem endpoint {addr} crashed"
        )));
    }
    let accept_tx = {
        let reg = mem_registry().lock();
        reg.get(addr)
            .cloned()
            .ok_or_else(|| GliderError::not_found(format!("mem endpoint {addr}")))?
    };
    let (c2s_tx, c2s_rx) = mpsc::channel(MEM_CHANNEL_DEPTH);
    let (s2c_tx, s2c_rx) = mpsc::channel(MEM_CHANNEL_DEPTH);
    accept_tx
        .send(MemConn {
            to_client: s2c_tx,
            from_client: c2s_rx,
        })
        .map_err(|_| GliderError::closed(format!("mem endpoint {addr}")))?;
    Ok((
        FrameTx {
            inner: TxInner::Mem { tx: c2s_tx },
            faults: faults.clone(),
        },
        FrameRx {
            inner: RxInner::Mem { rx: s2c_rx },
            faults,
        },
    ))
}

/// Binds a listener at `addr`, dispatching on the address scheme through
/// the transport registry (see [`crate::transport`]).
///
/// Use `"127.0.0.1:0"` for an ephemeral TCP port or `"mem://<name>"` for
/// the in-memory transport.
///
/// # Errors
///
/// Returns an error if the scheme is unknown, the TCP bind fails or the
/// `mem://` name is taken.
pub async fn bind(addr: &str) -> GliderResult<BoundListener> {
    crate::transport::transport_for(addr)?.bind(addr).await
}

/// Dials `addr` on the appropriate transport (scheme-dispatched through
/// the registry in [`crate::transport`]).
///
/// # Errors
///
/// Returns an error for unknown schemes, [`ErrorCode::NotFound`] for
/// unknown `mem://` endpoints and I/O errors for TCP failures.
pub async fn connect(addr: &str) -> GliderResult<(FrameTx, FrameRx)> {
    crate::transport::transport_for(addr)?.dial(addr).await
}

#[cfg(test)]
mod tests {
    use super::*;
    use glider_proto::message::{Request, RequestBody};
    use glider_proto::types::{BlockId, PeerTier};

    fn hello(id: u64) -> Frame {
        Frame::Request(Request {
            id,
            trace_id: 0,
            body: RequestBody::Hello {
                tier: PeerTier::Compute,
            },
        })
    }

    fn write_frame(id: u64, len: usize, fill: u8) -> Frame {
        Frame::Request(Request {
            id,
            trace_id: 0,
            body: RequestBody::WriteBlock {
                block_id: BlockId(id),
                offset: 0,
                data: Bytes::from(vec![fill; len]),
            },
        })
    }

    #[tokio::test]
    async fn tcp_round_trip() {
        let mut listener = bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().to_string();
        let server = tokio::spawn(async move {
            let (mut tx, mut rx) = listener.accept().await.unwrap();
            let frame = rx.recv().await.unwrap().unwrap();
            tx.send(frame).await.unwrap();
        });
        let (mut tx, mut rx) = connect(&addr).await.unwrap();
        assert_eq!(tx.scheme(), TCP_LABEL);
        assert_eq!(rx.scheme(), TCP_LABEL);
        tx.send(hello(1)).await.unwrap();
        let echoed = rx.recv().await.unwrap().unwrap();
        assert_eq!(echoed, hello(1));
        server.await.unwrap();
    }

    #[tokio::test]
    async fn mem_round_trip_and_name_cleanup() {
        let addr = "mem://conn-test-1";
        let mut listener = bind(addr).await.unwrap();
        assert_eq!(listener.local_addr(), addr);
        assert_eq!(listener.scheme(), MEM_LABEL);
        let server = tokio::spawn(async move {
            let (mut tx, mut rx) = listener.accept().await.unwrap();
            let frame = rx.recv().await.unwrap().unwrap();
            tx.send(frame).await.unwrap();
            listener // keep alive until client done
        });
        let (mut tx, mut rx) = connect(addr).await.unwrap();
        assert_eq!(tx.scheme(), MEM_LABEL);
        tx.send(hello(2)).await.unwrap();
        assert_eq!(rx.recv().await.unwrap().unwrap(), hello(2));
        let listener = server.await.unwrap();
        drop(listener);
        // Name is released on drop.
        assert!(connect(addr).await.is_err());
        let again = bind(addr).await.unwrap();
        drop(again);
    }

    #[tokio::test]
    async fn stream_tags_survive_both_transports() {
        for addr_spec in ["127.0.0.1:0", "mem://conn-test-tags"] {
            let mut listener = bind(addr_spec).await.unwrap();
            let addr = listener.local_addr().to_string();
            let server = tokio::spawn(async move {
                let (mut tx, mut rx) = listener.accept().await.unwrap();
                // Echo each frame back on its own stream tag.
                for _ in 0..3 {
                    let (stream, frame) = rx.recv_tagged().await.unwrap().unwrap();
                    tx.send_tagged(stream, frame).await.unwrap();
                }
            });
            let (mut tx, mut rx) = connect(&addr).await.unwrap();
            tx.send_tagged(0, hello(1)).await.unwrap();
            tx.send_tagged(7, hello(2)).await.unwrap();
            tx.send_tagged(u32::MAX, write_frame(3, 64, 0xAB))
                .await
                .unwrap();
            assert_eq!(rx.recv_tagged().await.unwrap().unwrap(), (0, hello(1)));
            assert_eq!(rx.recv_tagged().await.unwrap().unwrap(), (7, hello(2)));
            assert_eq!(
                rx.recv_tagged().await.unwrap().unwrap(),
                (u32::MAX, write_frame(3, 64, 0xAB))
            );
            server.await.unwrap();
        }
    }

    #[tokio::test]
    async fn credit_frames_cross_the_wire() {
        let mut listener = bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().to_string();
        let server = tokio::spawn(async move {
            let (mut tx, _rx) = listener.accept().await.unwrap();
            tx.send(Frame::Credit {
                stream_id: 5,
                credits: 8,
            })
            .await
            .unwrap();
        });
        let (_tx, mut rx) = connect(&addr).await.unwrap();
        let (stream, frame) = rx.recv_tagged().await.unwrap().unwrap();
        assert_eq!(stream, 5);
        assert_eq!(
            frame,
            Frame::Credit {
                stream_id: 5,
                credits: 8
            }
        );
        server.await.unwrap();
    }

    #[tokio::test]
    async fn tcp_batch_send_round_trips() {
        let mut listener = bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().to_string();
        let server = tokio::spawn(async move {
            let (_tx, mut rx) = listener.accept().await.unwrap();
            let mut got = Vec::new();
            for _ in 0..6 {
                got.push(rx.recv_tagged().await.unwrap().unwrap());
            }
            got
        });
        let (mut tx, _rx) = connect(&addr).await.unwrap();
        // Mix of payload-free, small- and large-payload frames — and both
        // legacy and tagged streams — in one batch.
        let mut batch: Vec<TaggedFrame> = vec![
            (0, hello(0)),
            (1, write_frame(1, 0, 0)),
            (0, write_frame(2, 1, 0xAA)),
            (3, write_frame(3, 64 * 1024, 0xBB)),
            (0, hello(4)),
            (9, write_frame(5, 1024 * 1024, 0xCC)),
        ];
        let expect = batch.clone();
        tx.send_batch(&mut batch).await.unwrap();
        assert!(batch.is_empty(), "send_batch drains the queue");
        assert_eq!(server.await.unwrap(), expect);
    }

    #[tokio::test]
    async fn mem_batch_send_round_trips() {
        let addr = "mem://conn-test-batch";
        let mut listener = bind(addr).await.unwrap();
        let server = tokio::spawn(async move {
            let (_tx, mut rx) = listener.accept().await.unwrap();
            let a = rx.recv().await.unwrap().unwrap();
            let b = rx.recv().await.unwrap().unwrap();
            (a, b)
        });
        let (mut tx, _rx) = connect(addr).await.unwrap();
        let mut batch = vec![(0, write_frame(1, 16, 1)), (0, hello(2))];
        let expect = (batch[0].1.clone(), batch[1].1.clone());
        tx.send_batch(&mut batch).await.unwrap();
        assert_eq!(server.await.unwrap(), expect);
    }

    #[tokio::test]
    async fn tcp_large_frame_round_trips_and_reclaims_capacity() {
        let mut listener = bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().to_string();
        // 8 MiB forces many partial vectored writes and grows the receive
        // buffer far past the reclaim threshold.
        let big = write_frame(9, 8 * 1024 * 1024, 0x5A);
        let expect = big.clone();
        let server = tokio::spawn(async move {
            let (mut tx, mut rx) = listener.accept().await.unwrap();
            let frame = rx.recv().await.unwrap().unwrap();
            tx.send(frame).await.unwrap();
            // After the oversized frame drained, the buffer was reset.
            match &rx.inner {
                RxInner::Tcp { buf, .. } => assert!(
                    buf.capacity() <= RECV_BUF_RECLAIM,
                    "receive buffer kept {} bytes of capacity",
                    buf.capacity()
                ),
                RxInner::Mem { .. } => unreachable!(),
            }
        });
        let (mut tx, mut rx) = connect(&addr).await.unwrap();
        tx.send(big).await.unwrap();
        let echoed = rx.recv().await.unwrap().unwrap();
        assert_eq!(echoed, expect);
        server.await.unwrap();
    }

    #[tokio::test]
    async fn mem_duplicate_bind_rejected() {
        let addr = "mem://conn-test-dup";
        let _l = bind(addr).await.unwrap();
        assert!(bind(addr).await.is_err());
    }

    #[tokio::test]
    async fn mem_bad_names_rejected() {
        assert!(bind("mem://").await.is_err());
        assert!(connect("mem://does-not-exist").await.is_err());
    }

    #[tokio::test]
    async fn unknown_schemes_are_rejected() {
        assert!(bind("rdma://nope").await.is_err());
        assert!(connect("rdma://nope").await.is_err());
    }

    #[tokio::test]
    async fn faults_apply_at_the_wrapper_layer() {
        // The fault hooks live on the connection halves, not inside a
        // transport: a drop token swallows a frame before the inner
        // transport sees it, and sever fails both directions.
        let addr = "mem://conn-test-faults";
        let faults = crate::fault::inject_faults(addr);
        let mut listener = bind(addr).await.unwrap();
        let server = tokio::spawn(async move {
            let (_tx, mut rx) = listener.accept().await.unwrap();
            rx.recv().await.unwrap().unwrap()
        });
        let (mut tx, mut rx) = connect(addr).await.unwrap();
        assert!(tx.faults.is_some(), "client tx carries the fault wrapper");
        faults.drop_next_sends(1);
        tx.send(hello(1)).await.unwrap(); // swallowed
        tx.send(hello(2)).await.unwrap(); // delivered
        assert_eq!(server.await.unwrap(), hello(2));
        faults.sever();
        assert!(tx.send(hello(3)).await.is_err());
        assert!(rx.recv().await.is_err());
        faults.heal();
        crate::fault::clear_faults(addr);
    }

    #[tokio::test]
    async fn clean_close_yields_none() {
        let mut listener = bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().to_string();
        let server = tokio::spawn(async move {
            let (_tx, mut rx) = listener.accept().await.unwrap();
            assert!(rx.recv().await.unwrap().is_none());
        });
        let (tx, _rx) = connect(&addr).await.unwrap();
        drop(tx);
        drop(_rx);
        server.await.unwrap();
    }
}
