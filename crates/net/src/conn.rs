//! Framed connections over TCP or in-memory channels.
//!
//! Addresses are either `host:port` (TCP) or `mem://<name>` (the in-process
//! RDMA-simulation transport; see the [crate docs](crate)).

use crate::fault::{lookup_faults, FaultConfig};
use bytes::{Bytes, BytesMut};
use glider_proto::frame::{decode_frame, encode_frame_header, Frame};
use glider_proto::{ErrorCode, GliderError, GliderResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::IoSlice;
use std::ops::Range;
use std::sync::Arc;
use tokio::io::{AsyncReadExt, AsyncWrite, AsyncWriteExt};
use tokio::net::tcp::{OwnedReadHalf, OwnedWriteHalf};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::mpsc;

/// Scheme prefix selecting the in-memory transport.
pub const MEM_SCHEME: &str = "mem://";

/// Bounded depth of in-memory connections, providing backpressure roughly
/// equivalent to a TCP send window.
const MEM_CHANNEL_DEPTH: usize = 64;

/// Initial capacity of per-connection encode/receive buffers.
const IO_BUF_INIT: usize = 64 * 1024;

/// A receive buffer whose capacity outgrew this threshold is replaced with
/// a fresh [`IO_BUF_INIT`]-sized one as soon as it drains, so one large
/// frame does not pin its high-water allocation for the connection's
/// lifetime (decoded payloads keep the old allocation alive only as long
/// as the application holds them).
const RECV_BUF_RECLAIM: usize = 256 * 1024;

/// Sending half of a framed connection.
#[derive(Debug)]
pub struct FrameTx(TxInner);

#[derive(Debug)]
enum TxInner {
    Tcp {
        io: OwnedWriteHalf,
        buf: BytesMut,
    },
    Mem {
        tx: mpsc::Sender<Frame>,
        faults: Option<Arc<FaultConfig>>,
    },
}

/// Receiving half of a framed connection.
#[derive(Debug)]
pub struct FrameRx(RxInner);

#[derive(Debug)]
enum RxInner {
    Tcp {
        io: OwnedReadHalf,
        buf: BytesMut,
    },
    Mem {
        rx: mpsc::Receiver<Frame>,
        faults: Option<Arc<FaultConfig>>,
    },
}

impl FrameTx {
    /// Sends one frame, waiting for transport backpressure as needed.
    ///
    /// On TCP the header and any bulk payload are written as separate I/O
    /// slices in one vectored write — payload bytes are never copied into
    /// a staging buffer.
    ///
    /// # Errors
    ///
    /// Returns an error when the peer has closed the connection or the
    /// underlying I/O fails.
    pub async fn send(&mut self, frame: Frame) -> GliderResult<()> {
        match &mut self.0 {
            TxInner::Tcp { io, buf } => {
                buf.clear();
                let payload = encode_frame_header(&frame, buf);
                let header: &[u8] = buf;
                match &payload {
                    Some(p) if !p.is_empty() => {
                        write_all_vectored(io, &[header, p]).await?;
                    }
                    _ => io.write_all(header).await?,
                }
                Ok(())
            }
            TxInner::Mem { tx, faults } => send_mem(tx, faults.as_deref(), frame).await,
        }
    }

    /// Sends every frame in `frames` (draining the vector), coalescing the
    /// whole batch into a single vectored write on TCP so a burst of
    /// queued frames costs one syscall instead of one per frame.
    ///
    /// # Errors
    ///
    /// Returns an error when the peer has closed the connection or the
    /// underlying I/O fails; the batch may then be partially transmitted.
    pub async fn send_batch(&mut self, frames: &mut Vec<Frame>) -> GliderResult<()> {
        match &mut self.0 {
            TxInner::Tcp { io, buf } => {
                buf.clear();
                // All headers are staged contiguously in `buf`; payloads
                // ride out-of-band as reference-counted `Bytes`.
                let mut parts: Vec<(Range<usize>, Option<Bytes>)> =
                    Vec::with_capacity(frames.len());
                for frame in frames.drain(..) {
                    let start = buf.len();
                    let payload = encode_frame_header(&frame, buf);
                    parts.push((start..buf.len(), payload));
                }
                let mut slices: Vec<&[u8]> = Vec::with_capacity(parts.len() * 2);
                for (header, payload) in &parts {
                    slices.push(&buf[header.clone()]);
                    if let Some(p) = payload {
                        if !p.is_empty() {
                            slices.push(p);
                        }
                    }
                }
                write_all_vectored(io, &slices).await?;
                Ok(())
            }
            TxInner::Mem { tx, faults } => {
                for frame in frames.drain(..) {
                    send_mem(tx, faults.as_deref(), frame).await?;
                }
                Ok(())
            }
        }
    }
}

/// One `mem://` frame delivery, with fault injection applied when the
/// endpoint has a registered [`FaultConfig`].
async fn send_mem(
    tx: &mpsc::Sender<Frame>,
    faults: Option<&FaultConfig>,
    frame: Frame,
) -> GliderResult<()> {
    if let Some(f) = faults {
        if f.is_severed() {
            return Err(GliderError::closed("connection (injected sever)"));
        }
        if f.count_send_and_check_error() {
            return Err(GliderError::new(
                ErrorCode::Io,
                "injected fault: send error",
            ));
        }
        if let Some(delay) = f.send_delay() {
            tokio::time::sleep(delay).await;
        }
        if f.is_blackhole() || f.take_drop_send() {
            return Ok(()); // the frame vanishes without trace
        }
    }
    tx.send(frame)
        .await
        .map_err(|_| GliderError::closed("connection"))
}

/// Writes every byte of `parts` to `io`, preferring one vectored write per
/// syscall and falling back to sequential [`AsyncWriteExt::write_all`]
/// when the transport does not support vectored I/O.
async fn write_all_vectored(io: &mut OwnedWriteHalf, parts: &[&[u8]]) -> std::io::Result<()> {
    if !io.is_write_vectored() {
        for part in parts {
            io.write_all(part).await?;
        }
        return Ok(());
    }
    // Index of the first unfinished part and the bytes of it already sent.
    let mut idx = 0;
    let mut offset = 0;
    let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(parts.len());
    while idx < parts.len() {
        if parts[idx].len() == offset {
            idx += 1;
            offset = 0;
            continue;
        }
        slices.clear();
        slices.push(IoSlice::new(&parts[idx][offset..]));
        slices.extend(parts[idx + 1..].iter().map(|p| IoSlice::new(p)));
        let mut written = io.write_vectored(&slices).await?;
        if written == 0 {
            return Err(std::io::ErrorKind::WriteZero.into());
        }
        while idx < parts.len() && written > 0 {
            let remaining = parts[idx].len() - offset;
            if written >= remaining {
                written -= remaining;
                idx += 1;
                offset = 0;
            } else {
                offset += written;
                written = 0;
            }
        }
    }
    Ok(())
}

impl FrameRx {
    /// Receives the next frame, or `None` when the peer closed cleanly.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed frames or transport failures.
    pub async fn recv(&mut self) -> GliderResult<Option<Frame>> {
        match &mut self.0 {
            RxInner::Tcp { io, buf } => loop {
                if let Some(frame) = decode_frame(buf).map_err(GliderError::from)? {
                    // Don't let one oversized frame pin its high-water
                    // capacity for the rest of the connection.
                    if buf.is_empty() && buf.capacity() > RECV_BUF_RECLAIM {
                        *buf = BytesMut::with_capacity(IO_BUF_INIT);
                    }
                    return Ok(Some(frame));
                }
                let n = io.read_buf(buf).await?;
                if n == 0 {
                    if buf.is_empty() {
                        return Ok(None);
                    }
                    return Err(GliderError::new(
                        ErrorCode::Protocol,
                        "connection closed mid-frame",
                    ));
                }
            },
            RxInner::Mem { rx, faults } => loop {
                let frame = match faults {
                    Some(f) => {
                        if f.is_severed() {
                            return Err(GliderError::closed("connection (injected sever)"));
                        }
                        tokio::select! {
                            frame = rx.recv() => frame,
                            _ = f.severed_wait() => {
                                return Err(GliderError::closed(
                                    "connection (injected sever)",
                                ));
                            }
                        }
                    }
                    None => rx.recv().await,
                };
                match frame {
                    None => return Ok(None),
                    Some(frame) => {
                        if let Some(f) = faults {
                            if f.is_blackhole() || f.take_drop_recv() {
                                continue; // swallowed in flight
                            }
                        }
                        return Ok(Some(frame));
                    }
                }
            },
        }
    }
}

fn tcp_pair(stream: TcpStream) -> (FrameTx, FrameRx) {
    stream.set_nodelay(true).ok();
    let (r, w) = stream.into_split();
    (
        FrameTx(TxInner::Tcp {
            io: w,
            buf: BytesMut::with_capacity(IO_BUF_INIT),
        }),
        FrameRx(RxInner::Tcp {
            io: r,
            buf: BytesMut::with_capacity(IO_BUF_INIT),
        }),
    )
}

struct MemConn {
    to_client: mpsc::Sender<Frame>,
    from_client: mpsc::Receiver<Frame>,
}

type MemRegistry = Mutex<HashMap<String, mpsc::UnboundedSender<MemConn>>>;

fn mem_registry() -> &'static MemRegistry {
    static REGISTRY: std::sync::OnceLock<Arc<MemRegistry>> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Arc::new(Mutex::new(HashMap::new())))
}

/// A bound listener on either transport.
#[derive(Debug)]
pub struct BoundListener(ListenerInner);

#[derive(Debug)]
enum ListenerInner {
    Tcp {
        listener: TcpListener,
        addr: String,
    },
    Mem {
        name: String,
        rx: mpsc::UnboundedReceiver<MemConn>,
    },
}

impl BoundListener {
    /// The dialable address of this listener (`host:port` or `mem://name`).
    pub fn local_addr(&self) -> &str {
        match &self.0 {
            ListenerInner::Tcp { addr, .. } => addr,
            ListenerInner::Mem { name, .. } => name,
        }
    }

    /// Accepts the next inbound connection.
    ///
    /// # Errors
    ///
    /// Returns an error on socket failures or when a `mem://` listener has
    /// been removed from the registry.
    pub async fn accept(&mut self) -> GliderResult<(FrameTx, FrameRx)> {
        match &mut self.0 {
            ListenerInner::Tcp { listener, .. } => {
                let (stream, _) = listener.accept().await?;
                Ok(tcp_pair(stream))
            }
            ListenerInner::Mem { rx, name } => {
                let conn = rx
                    .recv()
                    .await
                    .ok_or_else(|| GliderError::closed(format!("mem listener {name}")))?;
                Ok((
                    FrameTx(TxInner::Mem {
                        tx: conn.to_client,
                        faults: None,
                    }),
                    FrameRx(RxInner::Mem {
                        rx: conn.from_client,
                        faults: None,
                    }),
                ))
            }
        }
    }
}

impl Drop for BoundListener {
    fn drop(&mut self) {
        if let ListenerInner::Mem { name, .. } = &self.0 {
            mem_registry().lock().remove(name);
        }
    }
}

/// Binds a listener at `addr`.
///
/// Use `"127.0.0.1:0"` for an ephemeral TCP port or `"mem://<name>"` for
/// the in-memory transport.
///
/// # Errors
///
/// Returns an error if the TCP bind fails or the `mem://` name is taken.
pub async fn bind(addr: &str) -> GliderResult<BoundListener> {
    if let Some(name) = addr.strip_prefix(MEM_SCHEME) {
        if name.is_empty() {
            return Err(GliderError::invalid("mem:// address needs a name"));
        }
        let (tx, rx) = mpsc::unbounded_channel();
        let mut reg = mem_registry().lock();
        if reg.contains_key(addr) {
            return Err(GliderError::already_exists(format!("mem endpoint {addr}")));
        }
        reg.insert(addr.to_string(), tx);
        Ok(BoundListener(ListenerInner::Mem {
            name: addr.to_string(),
            rx,
        }))
    } else {
        let listener = TcpListener::bind(addr).await?;
        let local = listener.local_addr()?;
        Ok(BoundListener(ListenerInner::Tcp {
            listener,
            addr: local.to_string(),
        }))
    }
}

/// Dials `addr` on the appropriate transport.
///
/// # Errors
///
/// Returns [`ErrorCode::NotFound`] for unknown `mem://` endpoints and I/O
/// errors for TCP failures.
pub async fn connect(addr: &str) -> GliderResult<(FrameTx, FrameRx)> {
    if addr.starts_with(MEM_SCHEME) {
        let accept_tx = {
            let reg = mem_registry().lock();
            reg.get(addr)
                .cloned()
                .ok_or_else(|| GliderError::not_found(format!("mem endpoint {addr}")))?
        };
        let (c2s_tx, c2s_rx) = mpsc::channel(MEM_CHANNEL_DEPTH);
        let (s2c_tx, s2c_rx) = mpsc::channel(MEM_CHANNEL_DEPTH);
        accept_tx
            .send(MemConn {
                to_client: s2c_tx,
                from_client: c2s_rx,
            })
            .map_err(|_| GliderError::closed(format!("mem endpoint {addr}")))?;
        // Fault injection hooks into the client side of mem connections:
        // outbound faults on the tx half, inbound on the rx half.
        let faults = lookup_faults(addr);
        Ok((
            FrameTx(TxInner::Mem {
                tx: c2s_tx,
                faults: faults.clone(),
            }),
            FrameRx(RxInner::Mem { rx: s2c_rx, faults }),
        ))
    } else {
        let stream = TcpStream::connect(addr).await?;
        Ok(tcp_pair(stream))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glider_proto::message::{Request, RequestBody};
    use glider_proto::types::{BlockId, PeerTier};

    fn hello(id: u64) -> Frame {
        Frame::Request(Request {
            id,
            trace_id: 0,
            body: RequestBody::Hello {
                tier: PeerTier::Compute,
            },
        })
    }

    fn write_frame(id: u64, len: usize, fill: u8) -> Frame {
        Frame::Request(Request {
            id,
            trace_id: 0,
            body: RequestBody::WriteBlock {
                block_id: BlockId(id),
                offset: 0,
                data: Bytes::from(vec![fill; len]),
            },
        })
    }

    #[tokio::test]
    async fn tcp_round_trip() {
        let mut listener = bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().to_string();
        let server = tokio::spawn(async move {
            let (mut tx, mut rx) = listener.accept().await.unwrap();
            let frame = rx.recv().await.unwrap().unwrap();
            tx.send(frame).await.unwrap();
        });
        let (mut tx, mut rx) = connect(&addr).await.unwrap();
        tx.send(hello(1)).await.unwrap();
        let echoed = rx.recv().await.unwrap().unwrap();
        assert_eq!(echoed, hello(1));
        server.await.unwrap();
    }

    #[tokio::test]
    async fn mem_round_trip_and_name_cleanup() {
        let addr = "mem://conn-test-1";
        let mut listener = bind(addr).await.unwrap();
        assert_eq!(listener.local_addr(), addr);
        let server = tokio::spawn(async move {
            let (mut tx, mut rx) = listener.accept().await.unwrap();
            let frame = rx.recv().await.unwrap().unwrap();
            tx.send(frame).await.unwrap();
            listener // keep alive until client done
        });
        let (mut tx, mut rx) = connect(addr).await.unwrap();
        tx.send(hello(2)).await.unwrap();
        assert_eq!(rx.recv().await.unwrap().unwrap(), hello(2));
        let listener = server.await.unwrap();
        drop(listener);
        // Name is released on drop.
        assert!(connect(addr).await.is_err());
        let again = bind(addr).await.unwrap();
        drop(again);
    }

    #[tokio::test]
    async fn tcp_batch_send_round_trips() {
        let mut listener = bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().to_string();
        let server = tokio::spawn(async move {
            let (_tx, mut rx) = listener.accept().await.unwrap();
            let mut got = Vec::new();
            for _ in 0..6 {
                got.push(rx.recv().await.unwrap().unwrap());
            }
            got
        });
        let (mut tx, _rx) = connect(&addr).await.unwrap();
        // Mix of payload-free, small- and large-payload frames in one batch.
        let mut batch: Vec<Frame> = vec![
            hello(0),
            write_frame(1, 0, 0),
            write_frame(2, 1, 0xAA),
            write_frame(3, 64 * 1024, 0xBB),
            hello(4),
            write_frame(5, 1024 * 1024, 0xCC),
        ];
        let expect = batch.clone();
        tx.send_batch(&mut batch).await.unwrap();
        assert!(batch.is_empty(), "send_batch drains the queue");
        assert_eq!(server.await.unwrap(), expect);
    }

    #[tokio::test]
    async fn mem_batch_send_round_trips() {
        let addr = "mem://conn-test-batch";
        let mut listener = bind(addr).await.unwrap();
        let server = tokio::spawn(async move {
            let (_tx, mut rx) = listener.accept().await.unwrap();
            let a = rx.recv().await.unwrap().unwrap();
            let b = rx.recv().await.unwrap().unwrap();
            (a, b)
        });
        let (mut tx, _rx) = connect(addr).await.unwrap();
        let mut batch = vec![write_frame(1, 16, 1), hello(2)];
        let expect = (batch[0].clone(), batch[1].clone());
        tx.send_batch(&mut batch).await.unwrap();
        assert_eq!(server.await.unwrap(), expect);
    }

    #[tokio::test]
    async fn tcp_large_frame_round_trips_and_reclaims_capacity() {
        let mut listener = bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().to_string();
        // 8 MiB forces many partial vectored writes and grows the receive
        // buffer far past the reclaim threshold.
        let big = write_frame(9, 8 * 1024 * 1024, 0x5A);
        let expect = big.clone();
        let server = tokio::spawn(async move {
            let (mut tx, mut rx) = listener.accept().await.unwrap();
            let frame = rx.recv().await.unwrap().unwrap();
            tx.send(frame).await.unwrap();
            // After the oversized frame drained, the buffer was reset.
            match &rx.0 {
                RxInner::Tcp { buf, .. } => assert!(
                    buf.capacity() <= RECV_BUF_RECLAIM,
                    "receive buffer kept {} bytes of capacity",
                    buf.capacity()
                ),
                RxInner::Mem { .. } => unreachable!(),
            }
        });
        let (mut tx, mut rx) = connect(&addr).await.unwrap();
        tx.send(big).await.unwrap();
        let echoed = rx.recv().await.unwrap().unwrap();
        assert_eq!(echoed, expect);
        server.await.unwrap();
    }

    #[tokio::test]
    async fn mem_duplicate_bind_rejected() {
        let addr = "mem://conn-test-dup";
        let _l = bind(addr).await.unwrap();
        assert!(bind(addr).await.is_err());
    }

    #[tokio::test]
    async fn mem_bad_names_rejected() {
        assert!(bind("mem://").await.is_err());
        assert!(connect("mem://does-not-exist").await.is_err());
    }

    #[tokio::test]
    async fn clean_close_yields_none() {
        let mut listener = bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().to_string();
        let server = tokio::spawn(async move {
            let (_tx, mut rx) = listener.accept().await.unwrap();
            assert!(rx.recv().await.unwrap().is_none());
        });
        let (tx, _rx) = connect(&addr).await.unwrap();
        drop(tx);
        drop(_rx);
        server.await.unwrap();
    }
}
