//! Building and rendering the `Stats` RPC payload.
//!
//! Every Glider server answers [`RequestBody::Stats`] from its
//! [`MetricsRegistry`] via [`build_stats`]; clients merge the payloads of
//! many servers ([`glider_proto::stats::StatsPayload::merge`]) and render
//! them with [`render_stats_table`] (human) or [`render_stats_json`]
//! (the bench harness's `BENCH_latency.json`).
//!
//! [`RequestBody::Stats`]: glider_proto::message::RequestBody::Stats
//! [`MetricsRegistry`]: glider_metrics::MetricsRegistry

use glider_metrics::{AccessKind, HistogramSnapshot, MetricsSnapshot, OpKind};
use glider_proto::stats::{NamedValue, OpLatency, StatsPayload};
use std::fmt::Write as _;

/// Name of the pseudo-op carrying writer batch occupancy. Its histogram
/// counts *frames per flush*, not nanoseconds.
pub const BATCH_OCCUPANCY_OP: &str = "writer-batch-frames";

/// Builds the wire stats payload from a metrics snapshot.
pub fn build_stats(snap: &MetricsSnapshot) -> StatsPayload {
    let mut ops: Vec<OpLatency> = OpKind::ALL
        .iter()
        .map(|k| OpLatency {
            name: k.name().to_string(),
            buckets: snap.op_latency(*k).bucket_counts().to_vec(),
        })
        .collect();
    ops.push(OpLatency {
        name: BATCH_OCCUPANCY_OP.to_string(),
        buckets: snap.batch_occupancy.bucket_counts().to_vec(),
    });
    StatsPayload {
        ops,
        gauges: vec![
            named("queue-current", snap.queue_current),
            named("queue-peak", snap.queue_peak),
            named("storage-current", snap.storage_current),
            named("storage-peak", snap.storage_peak),
            named("servers-live", snap.servers_live),
            named("servers-suspect", snap.servers_suspect),
            named("servers-dead", snap.servers_dead),
            named("rpc-inflight-current", snap.rpc_inflight_current),
            named("rpc-inflight-peak", snap.rpc_inflight_peak),
            named("streams-open-current", snap.streams_open_current),
            named("streams-open-peak", snap.streams_open_peak),
        ],
        counters: vec![
            named("storage-accesses", snap.storage_accesses()),
            named("metadata-rpcs", snap.accesses(AccessKind::Metadata)),
            named("tier-crossing-bytes", snap.tier_crossing_bytes()),
            named("intra-storage-bytes", snap.intra_storage_bytes()),
            named("rpc-retries", snap.rpc_retries),
            named("rpc-reconnects", snap.rpc_reconnects),
            named("transport-tcp-requests", snap.transport_tcp_requests),
            named("transport-mem-requests", snap.transport_mem_requests),
            named("transport-other-requests", snap.transport_other_requests),
            named("pool-hits", snap.pool_hits),
            named("pool-misses", snap.pool_misses),
            named("streams-opened", snap.streams_opened),
        ],
    }
}

fn named(name: &str, value: u64) -> NamedValue {
    NamedValue {
        name: name.to_string(),
        value,
    }
}

/// Whether an op's histogram holds frame counts rather than nanoseconds.
fn is_frame_op(name: &str) -> bool {
    name == BATCH_OCCUPANCY_OP
}

/// Formats a nanosecond value with a readable unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders a stats payload as machine-readable JSON, one op per line.
///
/// Schema (version 1): `ops` is a list of
/// `{name, count, p50_ns, p90_ns, p99_ns, p999_ns, max_ns}` objects —
/// for `writer-batch-frames` the `_ns` fields hold frame counts —
/// followed by flat `gauges` and `counters` objects.
pub fn render_stats_json(payload: &StatsPayload) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema_version\": 1,\n  \"ops\": [\n");
    for (i, op) in payload.ops.iter().enumerate() {
        let h = HistogramSnapshot::from_bucket_counts(&op.buckets);
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"count\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \
             \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}",
            op.name,
            h.count(),
            h.p50(),
            h.p90(),
            h.p99(),
            h.p999(),
            h.max()
        );
        out.push_str(if i + 1 < payload.ops.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    for (key, values) in [("gauges", &payload.gauges), ("counters", &payload.counters)] {
        let _ = write!(out, "  \"{key}\": {{");
        for (i, v) in values.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{}\": {}", v.name, v.value);
        }
        out.push_str(if key == "gauges" { "},\n" } else { "}\n" });
    }
    out.push_str("}\n");
    out
}

/// Renders a stats payload as a human-readable table. Ops with no
/// recordings are omitted.
pub fn render_stats_table(payload: &StatsPayload) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "op", "count", "p50", "p90", "p99", "p999", "max"
    );
    for op in &payload.ops {
        let h = HistogramSnapshot::from_bucket_counts(&op.buckets);
        if h.is_empty() {
            continue;
        }
        let fmt = |v: u64| {
            if is_frame_op(&op.name) {
                v.to_string()
            } else {
                fmt_ns(v)
            }
        };
        let _ = writeln!(
            out,
            "{:<22} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            op.name,
            h.count(),
            fmt(h.p50()),
            fmt(h.p90()),
            fmt(h.p99()),
            fmt(h.p999()),
            fmt(h.max())
        );
    }
    for (title, values) in [("gauges", &payload.gauges), ("counters", &payload.counters)] {
        let interesting: Vec<&NamedValue> = values.iter().filter(|v| v.value > 0).collect();
        if interesting.is_empty() {
            continue;
        }
        let _ = writeln!(out, "{title}:");
        for v in interesting {
            let _ = writeln!(out, "  {:<22} {}", v.name, v.value);
        }
    }
    // Derived: buffer-pool hit rate, when the pool saw any traffic. JSON
    // output keeps the raw hit/miss counters instead (the ratio is
    // derivable and lossless there).
    let counter = |name: &str| {
        payload
            .counters
            .iter()
            .find(|v| v.name == name)
            .map_or(0, |v| v.value)
    };
    let (hits, misses) = (counter("pool-hits"), counter("pool-misses"));
    if hits + misses > 0 {
        let rate = 100.0 * hits as f64 / (hits + misses) as f64;
        let _ = writeln!(out, "  {:<22} {rate:.1}%", "pool-hit-rate");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use glider_metrics::{MetricsRegistry, Tier};
    use std::time::Duration;

    fn sample_payload() -> StatsPayload {
        let m = MetricsRegistry::new();
        m.record_latency(OpKind::BlockWrite, Duration::from_micros(100));
        m.record_latency(OpKind::BlockWrite, Duration::from_micros(200));
        m.record_latency(OpKind::MetaLookupNode, Duration::from_nanos(500));
        m.record_batch_occupancy(16);
        m.queue_enter();
        m.record_transfer(Tier::Compute, Tier::Storage, 4096);
        m.record_access(AccessKind::FileWrite);
        m.rpc_retry();
        m.rpc_reconnect();
        m.set_server_liveness(2, 0, 1);
        m.transport_request("tcp");
        m.transport_request("tcp");
        m.transport_request("mem");
        m.pool_hit();
        m.pool_miss();
        m.stream_opened();
        m.rpc_start();
        build_stats(&m.snapshot())
    }

    #[test]
    fn build_covers_every_op_kind_plus_batch() {
        let payload = sample_payload();
        assert_eq!(payload.ops.len(), OpKind::COUNT + 1);
        for kind in OpKind::ALL {
            assert!(
                payload.ops.iter().any(|o| o.name == kind.name()),
                "missing op {}",
                kind.name()
            );
        }
        assert!(payload.ops.iter().any(|o| o.name == BATCH_OCCUPANCY_OP));
        let write = payload
            .ops
            .iter()
            .find(|o| o.name == "block-write")
            .unwrap();
        assert_eq!(write.buckets.iter().sum::<u64>(), 2);
        let gauge = |n: &str| payload.gauges.iter().find(|v| v.name == n).unwrap().value;
        assert_eq!(gauge("queue-current"), 1);
        assert_eq!(gauge("queue-peak"), 1);
        let counter = |n: &str| payload.counters.iter().find(|v| v.name == n).unwrap().value;
        assert_eq!(counter("tier-crossing-bytes"), 4096);
        assert_eq!(counter("storage-accesses"), 1);
        assert_eq!(counter("rpc-retries"), 1);
        assert_eq!(counter("rpc-reconnects"), 1);
        assert_eq!(gauge("servers-live"), 2);
        assert_eq!(gauge("servers-dead"), 1);
        assert_eq!(counter("transport-tcp-requests"), 2);
        assert_eq!(counter("transport-mem-requests"), 1);
        assert_eq!(counter("transport-other-requests"), 0);
        assert_eq!(counter("pool-hits"), 1);
        assert_eq!(counter("pool-misses"), 1);
        assert_eq!(counter("streams-opened"), 1);
        assert_eq!(gauge("rpc-inflight-current"), 1);
        assert_eq!(gauge("rpc-inflight-peak"), 1);
        assert_eq!(gauge("streams-open-current"), 1);
        assert_eq!(gauge("streams-open-peak"), 1);
    }

    #[test]
    fn json_reports_percentiles_per_op() {
        let json = render_stats_json(&sample_payload());
        assert!(json.contains("\"schema_version\": 1"));
        // block-write saw two ~100-200us ops; its p50 must be non-zero.
        let line = json
            .lines()
            .find(|l| l.contains("\"block-write\""))
            .unwrap();
        assert!(line.contains("\"count\": 2"), "line: {line}");
        assert!(!line.contains("\"p50_ns\": 0"), "line: {line}");
        // Untouched ops are present with zero counts.
        let idle = json.lines().find(|l| l.contains("\"block-free\"")).unwrap();
        assert!(idle.contains("\"count\": 0"), "line: {idle}");
        assert!(json.contains("\"queue-peak\": 1"));
        assert!(json.contains("\"tier-crossing-bytes\": 4096"));
    }

    #[test]
    fn table_skips_empty_ops_and_scales_units() {
        let table = render_stats_table(&sample_payload());
        assert!(table.contains("block-write"));
        assert!(table.contains("meta-lookup-node"));
        assert!(!table.contains("block-free"), "empty ops are omitted");
        assert!(table.contains("us"), "microsecond ops print as us");
        assert!(table.contains(BATCH_OCCUPANCY_OP));
        assert!(table.contains("queue-peak"));
        assert!(table.contains("transport-tcp-requests"));
        assert!(table.contains("pool-hit-rate"));
        assert!(table.contains("50.0%"), "1 hit / 1 miss renders as 50%");
    }

    #[test]
    fn fmt_ns_picks_readable_units() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
