//! Building and rendering the introspection RPC payloads.
//!
//! Every Glider server answers [`RequestBody::Stats`] from its
//! [`MetricsRegistry`] via [`build_stats`]; clients merge the payloads of
//! many servers ([`glider_proto::stats::StatsPayload::merge`]) and render
//! them with [`render_stats_table`] (human), [`render_stats_json`]
//! (the bench harness's `BENCH_latency.json`), or [`render_stats_prom`]
//! (Prometheus-style text exposition with per-bucket trace exemplars).
//!
//! The same uniform path serves the flight-recorder plane:
//! [`build_span_dump`] snapshots the process [`FlightRecorder`] for
//! `DumpSpans`, [`build_series`] packages the registry's per-op
//! time-series rings and exemplar grid for `MetricsSeries`, and
//! [`render_trace_tree`] reassembles merged dumps from many servers into
//! one cross-process span tree with per-hop self-times and the critical
//! path highlighted.
//!
//! [`RequestBody::Stats`]: glider_proto::message::RequestBody::Stats
//! [`MetricsRegistry`]: glider_metrics::MetricsRegistry
//! [`FlightRecorder`]: glider_trace::FlightRecorder

use glider_metrics::{
    bucket_bounds, AccessKind, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, OpKind,
    HIST_BUCKETS,
};
use glider_proto::dump::{
    ExemplarEntry, OpSeriesPayload, SeriesPayload, SpanDump, WireEvent, WireSeriesPoint, WireSpan,
};
use glider_proto::stats::{NamedValue, OpLatency, StatsPayload};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

/// Name of the pseudo-op carrying writer batch occupancy. Its histogram
/// counts *frames per flush*, not nanoseconds.
pub const BATCH_OCCUPANCY_OP: &str = "writer-batch-frames";

/// Name of the pseudo-op carrying per-instance mailbox depths observed at
/// enqueue time. Its histogram counts *queued invocations*, not
/// nanoseconds.
pub const MAILBOX_DEPTH_OP: &str = "mailbox-depth";

/// Builds the wire stats payload from a metrics snapshot.
pub fn build_stats(snap: &MetricsSnapshot) -> StatsPayload {
    let mut ops: Vec<OpLatency> = OpKind::ALL
        .iter()
        .map(|k| OpLatency {
            name: k.name().to_string(),
            buckets: snap.op_latency(*k).bucket_counts().to_vec(),
        })
        .collect();
    ops.push(OpLatency {
        name: BATCH_OCCUPANCY_OP.to_string(),
        buckets: snap.batch_occupancy.bucket_counts().to_vec(),
    });
    ops.push(OpLatency {
        name: MAILBOX_DEPTH_OP.to_string(),
        buckets: snap.mailbox_depth.bucket_counts().to_vec(),
    });
    StatsPayload {
        ops,
        gauges: vec![
            named("queue-current", snap.queue_current),
            named("queue-peak", snap.queue_peak),
            named("actions-instances-current", snap.action_instances_current),
            named("actions-instances-peak", snap.action_instances_peak),
            named("storage-current", snap.storage_current),
            named("storage-peak", snap.storage_peak),
            named("servers-live", snap.servers_live),
            named("servers-suspect", snap.servers_suspect),
            named("servers-dead", snap.servers_dead),
            named("rpc-inflight-current", snap.rpc_inflight_current),
            named("rpc-inflight-peak", snap.rpc_inflight_peak),
            named("streams-open-current", snap.streams_open_current),
            named("streams-open-peak", snap.streams_open_peak),
            named("replication-lag", snap.replication_lag_current),
            named("replication-lag-peak", snap.replication_lag_peak),
            named("under-replicated-extents", snap.under_replicated),
        ],
        counters: vec![
            named("storage-accesses", snap.storage_accesses()),
            named("metadata-rpcs", snap.accesses(AccessKind::Metadata)),
            named("tier-crossing-bytes", snap.tier_crossing_bytes()),
            named("intra-storage-bytes", snap.intra_storage_bytes()),
            named("rpc-retries", snap.rpc_retries),
            named("rpc-reconnects", snap.rpc_reconnects),
            named("transport-tcp-requests", snap.transport_tcp_requests),
            named("transport-mem-requests", snap.transport_mem_requests),
            named("transport-other-requests", snap.transport_other_requests),
            named("pool-hits", snap.pool_hits),
            named("pool-misses", snap.pool_misses),
            named("streams-opened", snap.streams_opened),
            named("wal-fsyncs", snap.wal_fsyncs),
            named("wal-bytes", snap.wal_bytes),
        ],
    }
}

fn named(name: &str, value: u64) -> NamedValue {
    NamedValue {
        name: name.to_string(),
        value,
    }
}

/// Whether an op's histogram holds plain counts (frames per flush,
/// queued invocations) rather than nanoseconds.
fn is_frame_op(name: &str) -> bool {
    name == BATCH_OCCUPANCY_OP || name == MAILBOX_DEPTH_OP
}

/// Formats a nanosecond value with a readable unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders a stats payload as machine-readable JSON, one op per line.
///
/// Schema (version 1): `ops` is a list of
/// `{name, count, p50_ns, p90_ns, p99_ns, p999_ns, max_ns}` objects —
/// for `writer-batch-frames` the `_ns` fields hold frame counts —
/// followed by flat `gauges` and `counters` objects.
pub fn render_stats_json(payload: &StatsPayload) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema_version\": 1,\n  \"ops\": [\n");
    for (i, op) in payload.ops.iter().enumerate() {
        let h = HistogramSnapshot::from_bucket_counts(&op.buckets);
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"count\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \
             \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}",
            op.name,
            h.count(),
            h.p50(),
            h.p90(),
            h.p99(),
            h.p999(),
            h.max()
        );
        out.push_str(if i + 1 < payload.ops.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    for (key, values) in [("gauges", &payload.gauges), ("counters", &payload.counters)] {
        let _ = write!(out, "  \"{key}\": {{");
        for (i, v) in values.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{}\": {}", v.name, v.value);
        }
        out.push_str(if key == "gauges" { "},\n" } else { "}\n" });
    }
    out.push_str("}\n");
    out
}

/// Renders a stats payload as a human-readable table. Ops with no
/// recordings are omitted.
pub fn render_stats_table(payload: &StatsPayload) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "op", "count", "p50", "p90", "p99", "p999", "max"
    );
    for op in &payload.ops {
        let h = HistogramSnapshot::from_bucket_counts(&op.buckets);
        if h.is_empty() {
            continue;
        }
        let fmt = |v: u64| {
            if is_frame_op(&op.name) {
                v.to_string()
            } else {
                fmt_ns(v)
            }
        };
        let _ = writeln!(
            out,
            "{:<22} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            op.name,
            h.count(),
            fmt(h.p50()),
            fmt(h.p90()),
            fmt(h.p99()),
            fmt(h.p999()),
            fmt(h.max())
        );
    }
    for (title, values) in [("gauges", &payload.gauges), ("counters", &payload.counters)] {
        let interesting: Vec<&NamedValue> = values.iter().filter(|v| v.value > 0).collect();
        if interesting.is_empty() {
            continue;
        }
        let _ = writeln!(out, "{title}:");
        for v in interesting {
            let _ = writeln!(out, "  {:<22} {}", v.name, v.value);
        }
    }
    // Derived: buffer-pool hit rate, when the pool saw any traffic. JSON
    // output keeps the raw hit/miss counters instead (the ratio is
    // derivable and lossless there).
    let counter = |name: &str| {
        payload
            .counters
            .iter()
            .find(|v| v.name == name)
            .map_or(0, |v| v.value)
    };
    let (hits, misses) = (counter("pool-hits"), counter("pool-misses"));
    if hits + misses > 0 {
        let rate = 100.0 * hits as f64 / (hits + misses) as f64;
        let _ = writeln!(out, "  {:<22} {rate:.1}%", "pool-hit-rate");
    }
    out
}

/// Snapshots this process's flight recorder for a `DumpSpans` request.
///
/// `source` labels the dump with the answering server's address so a
/// merged cross-process dump can attribute every span. With no recorder
/// installed the dump is empty but still carries the source — the server
/// answered, it just retains nothing.
pub fn build_span_dump(source: &str, trace_id: u64, since_seq: u64) -> SpanDump {
    let mut dump = SpanDump {
        source: source.to_string(),
        spans: Vec::new(),
        events: Vec::new(),
        dropped_spans: 0,
        dropped_events: 0,
    };
    let Some(rec) = glider_trace::recorder() else {
        return dump;
    };
    let snap = rec.snapshot(trace_id, since_seq);
    dump.spans = snap
        .spans
        .iter()
        .map(|s| WireSpan {
            seq: s.seq,
            name: s.name.to_string(),
            trace_id: s.trace_id,
            span_id: s.span_id,
            parent_span: s.parent_span,
            remote: s.remote,
            duration_ns: s.duration.as_nanos().min(u128::from(u64::MAX)) as u64,
            err: s.err,
            pinned: s.pinned,
        })
        .collect();
    dump.events = snap
        .events
        .into_iter()
        .map(|e| WireEvent {
            seq: e.seq,
            kind: e.kind,
            op: e.op,
            addr: e.addr,
            attempt: e.attempt,
            trace_id: e.trace_id,
        })
        .collect();
    dump.dropped_spans = snap.dropped_spans;
    dump.dropped_events = snap.dropped_events;
    dump
}

/// Packages the registry's per-op time-series rings and the exemplar
/// grid for a `MetricsSeries` request. Only kinds that saw traffic ship
/// points; only non-zero exemplar cells ship entries.
pub fn build_series(source: &str, metrics: &MetricsRegistry) -> SeriesPayload {
    let series = metrics
        .series()
        .into_iter()
        .map(|s| OpSeriesPayload {
            name: s.kind.name().to_string(),
            points: s
                .points
                .into_iter()
                .map(|p| WireSeriesPoint {
                    seq: p.seq,
                    count: p.count,
                    p50_ns: p.p50_ns,
                    p99_ns: p.p99_ns,
                })
                .collect(),
        })
        .collect();
    let snap = metrics.snapshot();
    let mut exemplars = Vec::new();
    for kind in OpKind::ALL {
        for bucket in 0..HIST_BUCKETS {
            if let Some(trace_id) = snap.exemplar(kind, bucket) {
                exemplars.push(ExemplarEntry {
                    op: kind.name().to_string(),
                    bucket: bucket as u32,
                    trace_id,
                });
            }
        }
    }
    SeriesPayload {
        source: source.to_string(),
        series,
        exemplars,
    }
}

/// Renders a (usually merged) span dump as one cross-process tree.
///
/// Spans are indexed by id; spans whose parent id is 0 or absent from
/// the dump render as roots (a remote continuation whose parent aged out
/// still shows up instead of vanishing). Each line carries the span's
/// wall-clock duration and its **self time** — duration minus the summed
/// durations of its direct children, i.e. where inside the hop the time
/// actually went. The **critical path** (from the slowest root, always
/// descending into the slowest child) is marked with `*`.
pub fn render_trace_tree(dump: &SpanDump) -> String {
    let by_id: HashMap<u64, &WireSpan> = dump.spans.iter().map(|s| (s.span_id, s)).collect();
    let mut children: HashMap<u64, Vec<&WireSpan>> = HashMap::new();
    let mut roots: Vec<&WireSpan> = Vec::new();
    for s in &dump.spans {
        if s.parent_span != 0 && s.parent_span != s.span_id && by_id.contains_key(&s.parent_span) {
            children.entry(s.parent_span).or_default().push(s);
        } else {
            roots.push(s);
        }
    }
    for kids in children.values_mut() {
        kids.sort_by_key(|s| s.seq);
    }
    roots.sort_by_key(|s| s.seq);

    // Critical path: start at the slowest root, keep taking the slowest
    // child. The visited check makes corrupt parent links (cycles) a
    // rendering blemish instead of a hang.
    let mut critical: HashSet<u64> = HashSet::new();
    if let Some(root) = roots.iter().copied().max_by_key(|s| s.duration_ns) {
        let mut cur = root;
        while critical.insert(cur.span_id) {
            match children
                .get(&cur.span_id)
                .and_then(|kids| kids.iter().copied().max_by_key(|s| s.duration_ns))
            {
                Some(next) => cur = next,
                None => break,
            }
        }
    }

    let self_time = |s: &WireSpan| {
        let in_children: u64 = children
            .get(&s.span_id)
            .map_or(0, |kids| kids.iter().map(|k| k.duration_ns).sum());
        s.duration_ns.saturating_sub(in_children)
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "sources: {} ({} spans, {} events)",
        dump.source,
        dump.spans.len(),
        dump.events.len()
    );
    if dump.spans.is_empty() {
        out.push_str("no spans retained for this trace\n");
    }
    let mut rendered: HashSet<u64> = HashSet::new();
    let mut stack: Vec<(&WireSpan, usize)> = roots.iter().rev().map(|s| (*s, 0usize)).collect();
    while let Some((s, depth)) = stack.pop() {
        if !rendered.insert(s.span_id) {
            continue;
        }
        let marker = if critical.contains(&s.span_id) {
            "*"
        } else {
            " "
        };
        let mut tags = String::new();
        if s.remote {
            tags.push_str(" [remote]");
        }
        if s.err {
            tags.push_str(" [ERR]");
        }
        let label = format!("{}{}", "  ".repeat(depth), s.name);
        let _ = writeln!(
            out,
            "{marker} {label:<40} {:>10}  self {:>10}{tags}",
            fmt_ns(s.duration_ns),
            fmt_ns(self_time(s)),
        );
        if let Some(kids) = children.get(&s.span_id) {
            for k in kids.iter().rev() {
                stack.push((k, depth + 1));
            }
        }
    }
    if !dump.events.is_empty() {
        out.push_str("events:\n");
        for e in &dump.events {
            let _ = writeln!(
                out,
                "  seq={} {} op={} addr={} attempt={} trace=0x{:016x}",
                e.seq, e.kind, e.op, e.addr, e.attempt, e.trace_id
            );
        }
    }
    if dump.dropped_spans > 0 || dump.dropped_events > 0 {
        let _ = writeln!(
            out,
            "dropped before this dump: {} spans, {} events",
            dump.dropped_spans, dump.dropped_events
        );
    }
    out.push_str("* = critical path\n");
    out
}

/// Renders merged stats plus per-server series payloads as
/// Prometheus-style text exposition.
///
/// Latency histograms become one `glider_op_latency_ns` family with
/// cumulative `le` buckets taken from the log-histogram bounds (buckets
/// that saw no samples are elided — cumulative semantics make sparse
/// emission lossless); a bucket whose cell holds an exemplar gets an
/// OpenMetrics-style `# {trace_id="0x…"}` suffix, resolvable via
/// `glider-cli trace`. Gauges and counters ship as labelled
/// `glider_gauge` / `glider_counter` families. The `writer-batch-frames`
/// pseudo-op is included; its `le` values count frames, not ns.
pub fn render_stats_prom(stats: &StatsPayload, series: &[SeriesPayload]) -> String {
    let mut exemplars: HashMap<(&str, usize), u64> = HashMap::new();
    for payload in series {
        for e in &payload.exemplars {
            exemplars
                .entry((e.op.as_str(), e.bucket as usize))
                .or_insert(e.trace_id);
        }
    }
    let mut out = String::new();
    out.push_str("# TYPE glider_op_latency_ns histogram\n");
    for op in &stats.ops {
        let total: u64 = op.buckets.iter().sum();
        if total == 0 {
            continue;
        }
        let mut cumulative = 0u64;
        for (i, &c) in op.buckets.iter().enumerate() {
            cumulative += c;
            let last = i + 1 == op.buckets.len();
            if c == 0 && !last {
                continue;
            }
            let le = if last {
                "+Inf".to_string()
            } else {
                bucket_bounds(i).1.to_string()
            };
            let _ = write!(
                out,
                "glider_op_latency_ns_bucket{{op=\"{}\",le=\"{le}\"}} {cumulative}",
                op.name
            );
            if let Some(&trace) = exemplars.get(&(op.name.as_str(), i)) {
                let _ = write!(out, " # {{trace_id=\"0x{trace:016x}\"}}");
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "glider_op_latency_ns_count{{op=\"{}\"}} {total}",
            op.name
        );
    }
    out.push_str("# TYPE glider_gauge gauge\n");
    for g in &stats.gauges {
        let _ = writeln!(out, "glider_gauge{{name=\"{}\"}} {}", g.name, g.value);
    }
    out.push_str("# TYPE glider_counter counter\n");
    for c in &stats.counters {
        let _ = writeln!(out, "glider_counter{{name=\"{}\"}} {}", c.name, c.value);
    }
    out
}

/// Renders per-server `MetricsSeries` payloads as one live table
/// (`glider-cli stats --watch`).
///
/// For each op the *latest* point of every server is aggregated: counts
/// sum (cluster ops in the last tick), percentiles take the max (the
/// worst server is the one being debugged). A footer lists, per op, the
/// slowest bucket holding an exemplar and its trace id — paste that id
/// into `glider-cli trace` to pull the full cross-process tree.
pub fn render_series(payloads: &[SeriesPayload]) -> String {
    let mut out = String::new();
    let mut ops: BTreeMap<&str, (u64, u64, u64, usize)> = BTreeMap::new();
    for p in payloads {
        for s in &p.series {
            if let Some(pt) = s.points.last() {
                let agg = ops.entry(s.name.as_str()).or_insert((0, 0, 0, 0));
                agg.0 += pt.count;
                agg.1 = agg.1.max(pt.p50_ns);
                agg.2 = agg.2.max(pt.p99_ns);
                agg.3 += 1;
            }
        }
    }
    let _ = writeln!(
        out,
        "{:<22} {:>12} {:>10} {:>10} {:>6}",
        "op", "count/tick", "p50", "p99", "srcs"
    );
    for (name, (count, p50, p99, srcs)) in &ops {
        let _ = writeln!(
            out,
            "{name:<22} {count:>12} {:>10} {:>10} {srcs:>6}",
            fmt_ns(*p50),
            fmt_ns(*p99),
        );
    }
    let mut slowest: BTreeMap<&str, (u32, u64)> = BTreeMap::new();
    for p in payloads {
        for e in &p.exemplars {
            let entry = slowest
                .entry(e.op.as_str())
                .or_insert((e.bucket, e.trace_id));
            if e.bucket >= entry.0 {
                *entry = (e.bucket, e.trace_id);
            }
        }
    }
    if !slowest.is_empty() {
        out.push_str("exemplars (slowest bucket per op):\n");
        for (op, (bucket, trace)) in &slowest {
            let (_, hi) = bucket_bounds(*bucket as usize);
            let _ = writeln!(
                out,
                "  {op:<22} le<={:<10} trace 0x{trace:016x}",
                fmt_ns(hi)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use glider_metrics::{MetricsRegistry, Tier};
    use std::time::Duration;

    fn sample_payload() -> StatsPayload {
        let m = MetricsRegistry::new();
        m.record_latency(OpKind::BlockWrite, Duration::from_micros(100));
        m.record_latency(OpKind::BlockWrite, Duration::from_micros(200));
        m.record_latency(OpKind::MetaLookupNode, Duration::from_nanos(500));
        m.record_batch_occupancy(16);
        m.queue_enter();
        m.record_transfer(Tier::Compute, Tier::Storage, 4096);
        m.record_access(AccessKind::FileWrite);
        m.rpc_retry();
        m.rpc_reconnect();
        m.set_server_liveness(2, 0, 1);
        m.transport_request("tcp");
        m.transport_request("tcp");
        m.transport_request("mem");
        m.pool_hit();
        m.pool_miss();
        m.stream_opened();
        m.rpc_start();
        m.instance_started();
        m.record_mailbox_depth(3);
        m.set_wal_stats(5, 2048);
        m.replication_lag_enter(777);
        m.set_under_replicated(2);
        build_stats(&m.snapshot())
    }

    #[test]
    fn build_covers_every_op_kind_plus_batch() {
        let payload = sample_payload();
        assert_eq!(payload.ops.len(), OpKind::COUNT + 2);
        for kind in OpKind::ALL {
            assert!(
                payload.ops.iter().any(|o| o.name == kind.name()),
                "missing op {}",
                kind.name()
            );
        }
        assert!(payload.ops.iter().any(|o| o.name == BATCH_OCCUPANCY_OP));
        assert!(payload.ops.iter().any(|o| o.name == MAILBOX_DEPTH_OP));
        let write = payload
            .ops
            .iter()
            .find(|o| o.name == "block-write")
            .unwrap();
        assert_eq!(write.buckets.iter().sum::<u64>(), 2);
        let gauge = |n: &str| payload.gauges.iter().find(|v| v.name == n).unwrap().value;
        assert_eq!(gauge("queue-current"), 1);
        assert_eq!(gauge("queue-peak"), 1);
        let counter = |n: &str| payload.counters.iter().find(|v| v.name == n).unwrap().value;
        assert_eq!(counter("tier-crossing-bytes"), 4096);
        assert_eq!(counter("storage-accesses"), 1);
        assert_eq!(counter("rpc-retries"), 1);
        assert_eq!(counter("rpc-reconnects"), 1);
        assert_eq!(gauge("servers-live"), 2);
        assert_eq!(gauge("servers-dead"), 1);
        assert_eq!(counter("transport-tcp-requests"), 2);
        assert_eq!(counter("transport-mem-requests"), 1);
        assert_eq!(counter("transport-other-requests"), 0);
        assert_eq!(counter("pool-hits"), 1);
        assert_eq!(counter("pool-misses"), 1);
        assert_eq!(counter("streams-opened"), 1);
        assert_eq!(gauge("rpc-inflight-current"), 1);
        assert_eq!(gauge("rpc-inflight-peak"), 1);
        assert_eq!(gauge("streams-open-current"), 1);
        assert_eq!(gauge("streams-open-peak"), 1);
        assert_eq!(gauge("actions-instances-current"), 1);
        assert_eq!(gauge("actions-instances-peak"), 1);
        assert_eq!(counter("wal-fsyncs"), 5);
        assert_eq!(counter("wal-bytes"), 2048);
        assert_eq!(gauge("replication-lag"), 777);
        assert_eq!(gauge("replication-lag-peak"), 777);
        assert_eq!(gauge("under-replicated-extents"), 2);
        let depth = payload
            .ops
            .iter()
            .find(|o| o.name == MAILBOX_DEPTH_OP)
            .unwrap();
        assert_eq!(depth.buckets.iter().sum::<u64>(), 1);
    }

    #[test]
    fn json_reports_percentiles_per_op() {
        let json = render_stats_json(&sample_payload());
        assert!(json.contains("\"schema_version\": 1"));
        // block-write saw two ~100-200us ops; its p50 must be non-zero.
        let line = json
            .lines()
            .find(|l| l.contains("\"block-write\""))
            .unwrap();
        assert!(line.contains("\"count\": 2"), "line: {line}");
        assert!(!line.contains("\"p50_ns\": 0"), "line: {line}");
        // Untouched ops are present with zero counts.
        let idle = json.lines().find(|l| l.contains("\"block-free\"")).unwrap();
        assert!(idle.contains("\"count\": 0"), "line: {idle}");
        assert!(json.contains("\"queue-peak\": 1"));
        assert!(json.contains("\"tier-crossing-bytes\": 4096"));
    }

    #[test]
    fn table_skips_empty_ops_and_scales_units() {
        let table = render_stats_table(&sample_payload());
        assert!(table.contains("block-write"));
        assert!(table.contains("meta-lookup-node"));
        assert!(!table.contains("block-free"), "empty ops are omitted");
        assert!(table.contains("us"), "microsecond ops print as us");
        assert!(table.contains(BATCH_OCCUPANCY_OP));
        assert!(table.contains("queue-peak"));
        assert!(table.contains("transport-tcp-requests"));
        assert!(table.contains("pool-hit-rate"));
        assert!(table.contains("50.0%"), "1 hit / 1 miss renders as 50%");
    }

    #[test]
    fn fmt_ns_picks_readable_units() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }

    fn span(
        seq: u64,
        name: &str,
        trace: u64,
        id: u64,
        parent: u64,
        remote: bool,
        ms: u64,
        err: bool,
    ) -> WireSpan {
        WireSpan {
            seq,
            name: name.to_string(),
            trace_id: trace,
            span_id: id,
            parent_span: parent,
            remote,
            duration_ns: ms * 1_000_000,
            err,
            pinned: err,
        }
    }

    #[test]
    fn trace_tree_renders_hierarchy_self_time_and_critical_path() {
        let dump = SpanDump {
            source: "mem://m,mem://d".to_string(),
            spans: vec![
                span(1, "client.call", 7, 1, 0, false, 10, false),
                span(2, "rpc.dispatch", 7, 2, 1, true, 8, false),
                span(3, "data.handle", 7, 3, 2, false, 6, true),
                // Orphan: its parent aged out of every recorder; it must
                // render as a root, not vanish.
                span(4, "writer.recover", 7, 9, 100, false, 1, false),
            ],
            events: vec![WireEvent {
                seq: 5,
                kind: "rpc.retry".to_string(),
                op: "block-write".to_string(),
                addr: "mem://d".to_string(),
                attempt: 1,
                trace_id: 7,
            }],
            dropped_spans: 2,
            dropped_events: 0,
        };
        let tree = render_trace_tree(&dump);
        let pos = |name: &str| tree.lines().position(|l| l.contains(name)).unwrap();
        assert!(pos("client.call") < pos("rpc.dispatch"));
        assert!(pos("rpc.dispatch") < pos("data.handle"));
        assert!(tree.contains("  rpc.dispatch"), "children are indented");
        for name in ["client.call", "rpc.dispatch", "data.handle"] {
            let line = tree.lines().find(|l| l.contains(name)).unwrap();
            assert!(
                line.starts_with('*'),
                "{name} is on the critical path: {line}"
            );
        }
        let orphan = tree.lines().find(|l| l.contains("writer.recover")).unwrap();
        assert!(orphan.starts_with(' '), "orphan is off the critical path");
        // Self time subtracts direct children: 10ms total - 8ms child.
        let call = tree.lines().find(|l| l.contains("client.call")).unwrap();
        assert!(call.contains("self"), "line: {call}");
        assert!(call.contains("2.00ms"), "line: {call}");
        assert!(tree
            .lines()
            .any(|l| l.contains("rpc.dispatch") && l.contains("[remote]")));
        assert!(tree
            .lines()
            .any(|l| l.contains("data.handle") && l.contains("[ERR]")));
        assert!(tree.contains("rpc.retry"));
        assert!(tree.contains("dropped before this dump: 2 spans"));
    }

    #[test]
    fn trace_tree_survives_empty_and_cyclic_dumps() {
        let empty = SpanDump {
            source: "mem://m".to_string(),
            spans: vec![],
            events: vec![],
            dropped_spans: 0,
            dropped_events: 0,
        };
        let tree = render_trace_tree(&empty);
        assert!(tree.contains("no spans retained"));
        assert!(tree.contains("mem://m"));
        // A corrupt parent cycle (a↔b) must not hang the renderer.
        let cyclic = SpanDump {
            source: "mem://m".to_string(),
            spans: vec![
                span(1, "t.a", 7, 1, 2, false, 5, false),
                span(2, "t.b", 7, 2, 1, false, 5, false),
            ],
            events: vec![],
            dropped_spans: 0,
            dropped_events: 0,
        };
        let _ = render_trace_tree(&cyclic);
    }

    #[test]
    fn span_dump_reflects_recorder_state() {
        // No recorder installed yet (this is the only net test touching
        // the process-global): the dump is empty but names its source.
        let before = build_span_dump("mem://m", 0, 0);
        assert_eq!(before.source, "mem://m");
        assert!(before.spans.is_empty() && before.events.is_empty());

        let rec = glider_trace::install_recorder();
        rec.push_span(&glider_trace::SpanRecord {
            name: "t.stats.op",
            trace_id: 0xfeed_0001,
            span_id: glider_trace::next_id(),
            parent_span: 0,
            remote: false,
            duration: Duration::from_millis(1),
            err: false,
        });
        rec.record_event("t.stats.retry", "block-write", "mem://d", 2, 0xfeed_0001);
        let dump = build_span_dump("mem://m", 0xfeed_0001, 0);
        assert_eq!(dump.spans.len(), 1);
        assert_eq!(dump.spans[0].name, "t.stats.op");
        assert_eq!(dump.spans[0].duration_ns, 1_000_000);
        assert_eq!(dump.events.len(), 1);
        assert_eq!(dump.events[0].attempt, 2);
        // Unknown trace: nothing matches, dump stays well-formed.
        let none = build_span_dump("mem://m", 0xdead_beef, 0);
        assert!(none.spans.is_empty());
    }

    #[test]
    fn series_payload_carries_points_and_exemplars() {
        let m = MetricsRegistry::new();
        m.record_latency_traced(OpKind::BlockWrite, Duration::from_micros(100), 0xabc);
        m.sample_series_tick();
        let payload = build_series("mem://d", &m);
        assert_eq!(payload.source, "mem://d");
        let bw = payload
            .series
            .iter()
            .find(|s| s.name == "block-write")
            .expect("traffic produced a series");
        assert_eq!(bw.points.len(), 1);
        assert_eq!(bw.points[0].count, 1);
        assert!(payload
            .exemplars
            .iter()
            .any(|e| e.op == "block-write" && e.trace_id == 0xabc));
        // Untouched kinds ship neither points nor exemplars.
        assert!(payload.series.iter().all(|s| s.name != "block-free"));
    }

    #[test]
    fn prom_rendering_is_cumulative_and_carries_exemplars() {
        let m = MetricsRegistry::new();
        m.record_latency_traced(OpKind::BlockWrite, Duration::from_micros(100), 0xabc);
        m.record_latency(OpKind::BlockWrite, Duration::from_micros(200));
        m.set_server_liveness(2, 1, 0);
        m.rpc_retry();
        let stats = build_stats(&m.snapshot());
        let series = vec![build_series("mem://d", &m)];
        let prom = render_stats_prom(&stats, &series);
        assert!(prom.contains("# TYPE glider_op_latency_ns histogram"));
        assert!(prom.contains("glider_op_latency_ns_bucket{op=\"block-write\",le=\""));
        assert!(prom.contains("glider_op_latency_ns_bucket{op=\"block-write\",le=\"+Inf\"} 2"));
        assert!(prom.contains("glider_op_latency_ns_count{op=\"block-write\"} 2"));
        assert!(
            prom.contains("# {trace_id=\"0x0000000000000abc\"}"),
            "exemplar suffix present: {prom}"
        );
        assert!(prom.contains("glider_gauge{name=\"servers-live\"} 2"));
        assert!(prom.contains("glider_counter{name=\"rpc-retries\"} 1"));
        // Empty ops are elided entirely.
        assert!(!prom.contains("op=\"block-free\""));
        // Cumulative buckets never decrease.
        let mut last = 0u64;
        for line in prom
            .lines()
            .filter(|l| l.contains("op=\"block-write\",le="))
        {
            let v: u64 = line
                .split("} ")
                .nth(1)
                .unwrap()
                .split_whitespace()
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(v >= last, "cumulative count decreased: {line}");
            last = v;
        }
    }

    #[test]
    fn series_table_aggregates_latest_points_across_sources() {
        let point = |seq, count, p50, p99| WireSeriesPoint {
            seq,
            count,
            p50_ns: p50,
            p99_ns: p99,
        };
        let payloads = vec![
            SeriesPayload {
                source: "mem://d1".to_string(),
                series: vec![OpSeriesPayload {
                    name: "block-write".to_string(),
                    points: vec![point(1, 10, 1_000, 5_000), point(2, 3, 2_000, 9_000)],
                }],
                exemplars: vec![ExemplarEntry {
                    op: "block-write".to_string(),
                    bucket: 12,
                    trace_id: 0x77,
                }],
            },
            SeriesPayload {
                source: "mem://d2".to_string(),
                series: vec![OpSeriesPayload {
                    name: "block-write".to_string(),
                    points: vec![point(5, 4, 8_000, 6_000)],
                }],
                exemplars: vec![],
            },
        ];
        let table = render_series(&payloads);
        let line = table
            .lines()
            .find(|l| l.starts_with("block-write"))
            .unwrap();
        // Latest points only: 3 + 4 ops; worst p50 is 8us, worst p99 9us.
        assert!(line.contains(" 7 "), "summed latest counts: {line}");
        assert!(line.contains("8.00us"), "max p50: {line}");
        assert!(line.contains("9.00us"), "max p99: {line}");
        assert!(line.trim_end().ends_with('2'), "two sources: {line}");
        assert!(table.contains("trace 0x0000000000000077"));
    }
}
