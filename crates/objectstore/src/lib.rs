//! Cloud object storage emulation (the Amazon S3 + S3 SELECT stand-in).
//!
//! The paper's baselines ship intermediate data through cloud object
//! storage and use **S3 SELECT** to push simple SQL filters to the store
//! (genomics pipeline, §7.4). We have no AWS, so this crate provides an
//! in-process object service with the properties those baselines depend
//! on (see DESIGN.md §4):
//!
//! - per-request **latency** and a **bandwidth** model (object storage is
//!   markedly slower than a specialized ephemeral store — §2.1),
//! - **SELECT** with predicate scans over CSV-shaped objects, metering
//!   bytes *scanned* separately from bytes *returned*,
//! - full access/transfer/utilization metering through `glider-metrics`
//!   (GETs and PUTs cross the compute boundary; SELECT returns only the
//!   matching rows, like the real service).
//!
//! Workers talk to the store through [`ObjectClient`], which additionally
//! applies the invoking function's bandwidth throttle.

use bytes::Bytes;
use glider_metrics::{AccessKind, MetricsRegistry, Tier};
#[cfg(test)]
use glider_proto::ErrorCode;
use glider_proto::{GliderError, GliderResult};
use glider_util::TokenBucket;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Cost model of the emulated object service.
#[derive(Debug, Clone)]
pub struct ObjectStoreConfig {
    /// Fixed per-request latency (time to first byte).
    pub op_latency: Duration,
    /// Aggregate service bandwidth in MiB/s (`None` = uncapped).
    pub bandwidth_mibps: Option<u64>,
    /// Server-side scan rate for SELECT in MiB/s (`None` = uncapped).
    pub select_scan_mibps: Option<u64>,
}

impl Default for ObjectStoreConfig {
    /// S3-flavored defaults: 15 ms per request, 400 MiB/s aggregate
    /// bandwidth, 800 MiB/s SELECT scan rate. Scaled-down but with the
    /// orderings that matter (object store ≪ ephemeral store).
    fn default() -> Self {
        ObjectStoreConfig {
            op_latency: Duration::from_millis(15),
            bandwidth_mibps: Some(400),
            select_scan_mibps: Some(800),
        }
    }
}

impl ObjectStoreConfig {
    /// A free/instant model for unit tests.
    pub fn instant() -> Self {
        ObjectStoreConfig {
            op_latency: Duration::ZERO,
            bandwidth_mibps: None,
            select_scan_mibps: None,
        }
    }
}

/// A predicate for SELECT scans over line-oriented CSV objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Keep lines whose `col`-th comma-separated field equals `value`.
    ColEq {
        /// 0-based column index.
        col: usize,
        /// Exact string to match.
        value: String,
    },
    /// Keep lines whose `col`-th field parses as an integer in
    /// `[lo, hi)` — the genomics range shuffle (`WHERE pos BETWEEN ...`).
    ColI64Range {
        /// 0-based column index.
        col: usize,
        /// Inclusive lower bound.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
    },
    /// Keep lines containing the substring.
    Contains(String),
}

impl Predicate {
    /// Evaluates the predicate on one line.
    pub fn matches(&self, line: &str) -> bool {
        match self {
            Predicate::ColEq { col, value } => {
                line.split(',').nth(*col).map(str::trim) == Some(value.as_str())
            }
            Predicate::ColI64Range { col, lo, hi } => line
                .split(',')
                .nth(*col)
                .and_then(|f| f.trim().parse::<i64>().ok())
                .is_some_and(|v| (*lo..*hi).contains(&v)),
            Predicate::Contains(needle) => line.contains(needle),
        }
    }
}

#[derive(Debug)]
struct Inner {
    objects: RwLock<BTreeMap<String, Bytes>>,
    config: ObjectStoreConfig,
    bandwidth: Option<Arc<TokenBucket>>,
    scan_bw: Option<Arc<TokenBucket>>,
    metrics: Arc<MetricsRegistry>,
}

/// The emulated object service. Cheap to clone.
#[derive(Debug, Clone)]
pub struct ObjectStore {
    inner: Arc<Inner>,
}

impl ObjectStore {
    /// Creates an object store with the given cost model.
    pub fn new(config: ObjectStoreConfig, metrics: Arc<MetricsRegistry>) -> Self {
        ObjectStore {
            inner: Arc::new(Inner {
                objects: RwLock::new(BTreeMap::new()),
                bandwidth: config
                    .bandwidth_mibps
                    .map(|m| Arc::new(TokenBucket::from_mibps(m))),
                scan_bw: config
                    .select_scan_mibps
                    .map(|m| Arc::new(TokenBucket::from_mibps(m))),
                config,
                metrics,
            }),
        }
    }

    /// A client handle for a (possibly bandwidth-limited) worker.
    pub fn client(&self, throttle: Option<Arc<TokenBucket>>) -> ObjectClient {
        ObjectClient {
            store: self.clone(),
            throttle,
        }
    }

    /// Total bytes currently stored.
    pub fn total_bytes(&self) -> u64 {
        self.inner
            .objects
            .read()
            .values()
            .map(|v| v.len() as u64)
            .sum()
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.inner.objects.read().len()
    }

    async fn charge(&self, bytes: u64, throttle: &Option<Arc<TokenBucket>>) {
        if !self.inner.config.op_latency.is_zero() {
            tokio::time::sleep(self.inner.config.op_latency).await;
        }
        if let Some(bw) = &self.inner.bandwidth {
            bw.acquire(bytes).await;
        }
        if let Some(t) = throttle {
            t.acquire(bytes).await;
        }
    }
}

/// A worker's handle to the object store.
#[derive(Debug, Clone)]
pub struct ObjectClient {
    store: ObjectStore,
    throttle: Option<Arc<TokenBucket>>,
}

impl ObjectClient {
    /// Stores an object (PUT), overwriting any previous value.
    ///
    /// # Errors
    ///
    /// Currently infallible; fallible for API stability.
    pub async fn put(&self, key: &str, data: Bytes) -> GliderResult<()> {
        let inner = &self.store.inner;
        inner.metrics.record_access(AccessKind::ObjectPut);
        self.store.charge(data.len() as u64, &self.throttle).await;
        inner
            .metrics
            .record_transfer(Tier::Compute, Tier::ObjectStore, data.len() as u64);
        let old = inner.objects.write().insert(key.to_string(), data.clone());
        if let Some(old) = old {
            inner.metrics.object_free(old.len() as u64);
        }
        inner.metrics.object_alloc(data.len() as u64);
        Ok(())
    }

    /// Retrieves a whole object (GET).
    ///
    /// # Errors
    ///
    /// Returns [`glider_proto::ErrorCode::NotFound`] for missing keys.
    pub async fn get(&self, key: &str) -> GliderResult<Bytes> {
        self.get_range(key, 0, u64::MAX).await
    }

    /// Retrieves `[offset, offset+len)` of an object (ranged GET).
    ///
    /// # Errors
    ///
    /// Returns [`glider_proto::ErrorCode::NotFound`] for missing keys.
    pub async fn get_range(&self, key: &str, offset: u64, len: u64) -> GliderResult<Bytes> {
        let inner = &self.store.inner;
        inner.metrics.record_access(AccessKind::ObjectGet);
        let data = inner
            .objects
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| GliderError::not_found(format!("object {key}")))?;
        let start = offset.min(data.len() as u64) as usize;
        let end = offset.saturating_add(len).min(data.len() as u64) as usize;
        let slice = data.slice(start..end);
        self.store.charge(slice.len() as u64, &self.throttle).await;
        inner
            .metrics
            .record_transfer(Tier::ObjectStore, Tier::Compute, slice.len() as u64);
        Ok(slice)
    }

    /// Runs a SELECT: scans the object server-side line by line and
    /// returns only matching lines. The whole object is charged at the
    /// scan rate; only the result crosses the network.
    ///
    /// # Errors
    ///
    /// Returns [`glider_proto::ErrorCode::NotFound`] for missing keys.
    pub async fn select(&self, key: &str, predicate: &Predicate) -> GliderResult<Bytes> {
        let inner = &self.store.inner;
        inner.metrics.record_access(AccessKind::ObjectSelect);
        let data = inner
            .objects
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| GliderError::not_found(format!("object {key}")))?;
        // Server-side scan cost.
        if !inner.config.op_latency.is_zero() {
            tokio::time::sleep(inner.config.op_latency).await;
        }
        if let Some(scan) = &inner.scan_bw {
            scan.acquire(data.len() as u64).await;
        }
        inner.metrics.object_select_scanned(data.len() as u64);
        let mut out = Vec::new();
        for line in data.split(|&b| b == b'\n') {
            if line.is_empty() {
                continue;
            }
            let text = String::from_utf8_lossy(line);
            if predicate.matches(&text) {
                out.extend_from_slice(line);
                out.push(b'\n');
            }
        }
        let result = Bytes::from(out);
        // Only the matching rows travel to the worker.
        if let Some(bw) = &inner.bandwidth {
            bw.acquire(result.len() as u64).await;
        }
        if let Some(t) = &self.throttle {
            t.acquire(result.len() as u64).await;
        }
        inner
            .metrics
            .record_transfer(Tier::ObjectStore, Tier::Compute, result.len() as u64);
        Ok(result)
    }

    /// Deletes an object (no error when missing, like S3).
    ///
    /// # Errors
    ///
    /// Currently infallible.
    pub async fn delete(&self, key: &str) -> GliderResult<()> {
        let inner = &self.store.inner;
        if let Some(old) = inner.objects.write().remove(key) {
            inner.metrics.object_free(old.len() as u64);
        }
        Ok(())
    }

    /// Lists keys with the given prefix, sorted.
    ///
    /// # Errors
    ///
    /// Currently infallible.
    pub async fn list(&self, prefix: &str) -> GliderResult<Vec<String>> {
        Ok(self
            .store
            .inner
            .objects
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> (ObjectStore, Arc<MetricsRegistry>) {
        let metrics = MetricsRegistry::new();
        (
            ObjectStore::new(ObjectStoreConfig::instant(), Arc::clone(&metrics)),
            metrics,
        )
    }

    #[tokio::test]
    async fn put_get_delete_cycle() {
        let (store, metrics) = store();
        let client = store.client(None);
        client
            .put("a/b", Bytes::from_static(b"hello"))
            .await
            .unwrap();
        assert_eq!(&client.get("a/b").await.unwrap()[..], b"hello");
        assert_eq!(store.total_bytes(), 5);
        client.delete("a/b").await.unwrap();
        assert_eq!(store.total_bytes(), 0);
        assert_eq!(
            client.get("a/b").await.unwrap_err().code(),
            ErrorCode::NotFound
        );
        client.delete("never-existed").await.unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.accesses(AccessKind::ObjectPut), 1);
        assert_eq!(snap.accesses(AccessKind::ObjectGet), 2);
        assert_eq!(snap.object_peak, 5);
    }

    #[tokio::test]
    async fn overwrite_replaces_utilization() {
        let (store, metrics) = store();
        let client = store.client(None);
        client.put("k", Bytes::from(vec![0u8; 100])).await.unwrap();
        client.put("k", Bytes::from(vec![0u8; 40])).await.unwrap();
        assert_eq!(store.total_bytes(), 40);
        assert_eq!(metrics.snapshot().object_current, 40);
    }

    #[tokio::test]
    async fn ranged_get_clamps() {
        let (store, _metrics) = store();
        let client = store.client(None);
        client
            .put("k", Bytes::from_static(b"0123456789"))
            .await
            .unwrap();
        assert_eq!(&client.get_range("k", 2, 3).await.unwrap()[..], b"234");
        assert_eq!(&client.get_range("k", 8, 100).await.unwrap()[..], b"89");
        assert!(client.get_range("k", 100, 5).await.unwrap().is_empty());
    }

    #[tokio::test]
    async fn select_filters_and_meters_scan() {
        let (store, metrics) = store();
        let client = store.client(None);
        let csv = b"chr1,100,A\nchr1,250,C\nchr2,300,G\nchr1,50,T\n";
        client.put("reads", Bytes::from_static(csv)).await.unwrap();
        let result = client
            .select(
                "reads",
                &Predicate::ColI64Range {
                    col: 1,
                    lo: 100,
                    hi: 300,
                },
            )
            .await
            .unwrap();
        assert_eq!(&result[..], b"chr1,100,A\nchr1,250,C\n");
        let snap = metrics.snapshot();
        assert_eq!(snap.object_scanned, csv.len() as u64);
        assert_eq!(
            snap.transferred(Tier::ObjectStore, Tier::Compute),
            result.len() as u64
        );
        assert_eq!(snap.accesses(AccessKind::ObjectSelect), 1);
    }

    #[tokio::test]
    async fn select_predicates() {
        assert!(Predicate::ColEq {
            col: 0,
            value: "x".to_string()
        }
        .matches("x,1"));
        assert!(!Predicate::ColEq {
            col: 1,
            value: "x".to_string()
        }
        .matches("x,1"));
        assert!(Predicate::Contains("needle".to_string()).matches("hay needle hay"));
        let range = Predicate::ColI64Range {
            col: 1,
            lo: 0,
            hi: 10,
        };
        assert!(range.matches("a,5"));
        assert!(!range.matches("a,10")); // exclusive hi
        assert!(!range.matches("a,not-a-number"));
        assert!(!range.matches("only-one-col"));
    }

    #[tokio::test]
    async fn list_is_prefix_filtered_and_sorted() {
        let (store, _metrics) = store();
        let client = store.client(None);
        for key in ["j/2", "j/1", "other/x"] {
            client.put(key, Bytes::new()).await.unwrap();
        }
        assert_eq!(client.list("j/").await.unwrap(), vec!["j/1", "j/2"]);
        assert_eq!(store.object_count(), 3);
    }

    #[tokio::test(start_paused = true)]
    async fn latency_model_charges_requests() {
        let metrics = MetricsRegistry::new();
        let store = ObjectStore::new(
            ObjectStoreConfig {
                op_latency: Duration::from_millis(20),
                bandwidth_mibps: None,
                select_scan_mibps: None,
            },
            metrics,
        );
        let client = store.client(None);
        let start = tokio::time::Instant::now();
        client.put("k", Bytes::from_static(b"v")).await.unwrap();
        client.get("k").await.unwrap();
        assert!(start.elapsed() >= Duration::from_millis(40));
    }
}
