//! End-to-end smoke test of the `glider` binary: a served cluster driven
//! entirely through the CLI.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

struct Server {
    child: Child,
    meta: String,
    // Keeps the child's stdout pipe open: dropping it would make the
    // server's own println! fail once the pipe closes.
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn start_server() -> Server {
    let mut child = Command::new(env!("CARGO_BIN_EXE_glider"))
        .args(["serve", "--block-size", "64KiB"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn glider serve");
    let stdout = child.stdout.take().expect("stdout");
    let mut reader = BufReader::new(stdout);
    let mut meta = None;
    // Read through the whole startup banner (ending with the Ctrl-C
    // line) so the server is past all of its own stdout writes.
    loop {
        let mut line = String::new();
        let n = std::io::BufRead::read_line(&mut reader, &mut line).expect("read serve output");
        assert!(n > 0, "serve exited before banner completed");
        if let Some(addr) = line.trim().strip_prefix("metadata: ") {
            meta = Some(addr.to_string());
        }
        if line.contains("Ctrl-C") {
            break;
        }
    }
    Server {
        child,
        meta: meta.expect("metadata address printed"),
        _stdout: reader,
    }
}

fn glider(meta: &str, args: &[&str], stdin: Option<&[u8]>) -> (bool, Vec<u8>) {
    let (ok, out, err) = glider_full(meta, args, stdin);
    if !ok {
        eprintln!("glider {args:?} stderr: {}", String::from_utf8_lossy(&err));
    }
    (ok, out)
}

fn glider_full(meta: &str, args: &[&str], stdin: Option<&[u8]>) -> (bool, Vec<u8>, Vec<u8>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_glider"));
    cmd.arg("--meta").arg(meta).args(args);
    cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
    cmd.stdin(if stdin.is_some() {
        Stdio::piped()
    } else {
        Stdio::null()
    });
    let mut child = cmd.spawn().expect("spawn glider");
    if let Some(data) = stdin {
        child
            .stdin
            .take()
            .expect("stdin")
            .write_all(data)
            .expect("feed stdin");
    }
    let out = child.wait_with_output().expect("wait glider");
    (out.status.success(), out.stdout, out.stderr)
}

#[test]
fn cli_round_trip_files_and_actions() {
    let server = start_server();
    // The server may need a beat to finish bringing up storage servers.
    std::thread::sleep(Duration::from_millis(200));
    let meta = server.meta.clone();

    // mkdir + put + get + ls + stat
    let (ok, _) = glider(&meta, &["mkdir", "/cli/demo"], None);
    assert!(ok, "mkdir failed");
    let payload = b"hello from the glider cli\n";
    let (ok, _) = glider(&meta, &["put", "/cli/demo/file"], Some(payload));
    assert!(ok, "put failed");
    let (ok, out) = glider(&meta, &["get", "/cli/demo/file"], None);
    assert!(ok, "get failed");
    assert_eq!(out, payload);
    let (ok, out) = glider(&meta, &["ls", "/cli/demo"], None);
    assert!(ok, "ls failed");
    assert_eq!(String::from_utf8_lossy(&out).trim(), "file");
    let (ok, out) = glider(&meta, &["stat", "/cli/demo/file"], None);
    assert!(ok, "stat failed");
    let stat = String::from_utf8_lossy(&out);
    assert!(stat.contains("kind:   file"), "{stat}");
    assert!(
        stat.contains(&format!("size:   {}", payload.len())),
        "{stat}"
    );

    // Actions through the CLI: a merge aggregation.
    let (ok, _) = glider(
        &meta,
        &["mkaction", "/cli/merge", "merge", "--interleaved"],
        None,
    );
    assert!(ok, "mkaction failed");
    let (ok, _) = glider(&meta, &["write-action", "/cli/merge"], Some(b"1,2\n1,3\n"));
    assert!(ok, "write-action failed");
    let (ok, out) = glider(&meta, &["read-action", "/cli/merge"], None);
    assert!(ok, "read-action failed");
    assert_eq!(String::from_utf8_lossy(&out), "1,5\n");

    // rm removes the subtree.
    let (ok, _) = glider(&meta, &["rm", "/cli"], None);
    assert!(ok, "rm failed");
    let (ok, _) = glider(&meta, &["stat", "/cli/demo/file"], None);
    assert!(!ok, "stat after rm should fail");
}

#[test]
fn cli_stats_reports_latency_percentiles() {
    let server = start_server();
    std::thread::sleep(Duration::from_millis(200));
    let meta = server.meta.clone();

    // A small workload touching every layer: metadata (mkdir/create),
    // block writes and reads (put/get), and actions (mkaction + stream).
    let (ok, _) = glider(&meta, &["mkdir", "/obs"], None);
    assert!(ok, "mkdir failed");
    let (ok, _) = glider(&meta, &["put", "/obs/file"], Some(b"stats smoke payload\n"));
    assert!(ok, "put failed");
    let (ok, _) = glider(&meta, &["get", "/obs/file"], None);
    assert!(ok, "get failed");
    let (ok, _) = glider(&meta, &["mkaction", "/obs/merge", "merge"], None);
    assert!(ok, "mkaction failed");
    let (ok, _) = glider(&meta, &["write-action", "/obs/merge"], Some(b"1,1\n"));
    assert!(ok, "write-action failed");

    // The served cluster shares one metrics registry, so the metadata
    // server's Stats answer covers block and action ops too.
    let (ok, out) = glider(&meta, &["stats", "--json"], None);
    assert!(ok, "stats --json failed");
    let json = String::from_utf8_lossy(&out);
    assert!(json.contains("\"schema_version\": 1"), "{json}");
    for op in [
        "meta-create-node",
        "block-write",
        "block-read",
        "action-invoke",
    ] {
        let line = json
            .lines()
            .find(|l| l.contains(&format!("\"{op}\"")))
            .unwrap_or_else(|| panic!("no line for {op} in {json}"));
        assert!(
            !line.contains("\"count\": 0"),
            "{op} never recorded: {line}"
        );
        assert!(!line.contains("\"p50_ns\": 0"), "{op} has zero p50: {line}");
    }

    // Server health and fault-plane counters ride the same payload
    // (DESIGN.md §10): the served data and active servers are live, and
    // a healthy run needed no retries or reconnects.
    assert!(json.contains("\"servers-live\""), "{json}");
    assert!(!json.contains("\"servers-live\": 0"), "{json}");
    assert!(json.contains("\"servers-suspect\": 0"), "{json}");
    assert!(json.contains("\"servers-dead\": 0"), "{json}");
    assert!(json.contains("\"rpc-retries\""), "{json}");
    assert!(json.contains("\"rpc-reconnects\""), "{json}");

    // The table view renders the same data for humans.
    let (ok, out) = glider(&meta, &["stats"], None);
    assert!(ok, "stats failed");
    let table = String::from_utf8_lossy(&out);
    assert!(table.contains("block-write"), "{table}");
    assert!(table.contains("p99"), "{table}");
}

#[test]
fn cli_reports_usage_errors() {
    let out = Command::new(env!("CARGO_BIN_EXE_glider"))
        .arg("frobnicate")
        .output()
        .expect("run glider");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = Command::new(env!("CARGO_BIN_EXE_glider"))
        .arg("help")
        .output()
        .expect("run glider");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("mkaction"));
}
