//! The `glider` binary: executes parsed [`glider_cli::Command`]s.

use bytes::Bytes;
use glider_cli::{parse_with_opts, ClientOpts, Command, USAGE};
use glider_core::{ActionSpec, ClientConfig, Cluster, ClusterConfig, GliderResult, StoreClient};
use std::io::{Read, Write};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    // Honor GLIDER_TRACE / RUST_LOG before any spans are created.
    glider_core::trace::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (command, opts) = match parse_with_opts(&arg_refs) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let rt = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("tokio runtime");
    match rt.block_on(run(command, opts)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

async fn client(meta: &str, opts: &ClientOpts) -> GliderResult<StoreClient> {
    let mut config = ClientConfig::new(meta);
    if let Some(blocks) = opts.prefetch_blocks {
        config = config.with_prefetch_blocks(blocks);
    }
    if let Some(batch) = opts.commit_batch {
        config = config.with_commit_batch(batch);
    }
    if let Some(ms) = opts.cache_ttl_ms {
        let ttl = (ms > 0).then(|| Duration::from_millis(ms));
        config = config.with_lookup_cache_ttl(ttl);
    }
    StoreClient::connect(config).await
}

async fn run(command: Command, opts: ClientOpts) -> GliderResult<()> {
    match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Serve {
            data,
            active,
            slots,
            block_size,
            meta_shards,
        } => {
            let mut config = ClusterConfig::default()
                .with_data(data, 1024)
                .with_active(active, slots)
                .with_block_size(block_size);
            if meta_shards > 0 {
                config = config.with_metadata_shards(meta_shards);
            }
            let cluster = Cluster::start(config).await?;
            println!("glider cluster up");
            println!("  metadata: {}", cluster.metadata_addr());
            println!(
                "  data servers: {}, active servers: {}, block size: {block_size}",
                data, active
            );
            println!("press Ctrl-C to stop");
            tokio::signal::ctrl_c().await.ok();
            cluster.shutdown();
            Ok(())
        }
        Command::Ls { meta, path } => {
            let store = client(&meta, &opts).await?;
            for name in store.list(&path).await? {
                println!("{name}");
            }
            Ok(())
        }
        Command::Stat { meta, path } => {
            let store = client(&meta, &opts).await?;
            let info = store.lookup(&path).await?;
            println!("path:   {path}");
            println!("kind:   {}", info.kind);
            println!("size:   {}", info.size);
            println!("blocks: {}", info.blocks.len());
            if let Some(action) = &info.action {
                println!(
                    "action: {} (interleaved: {}, params: {:?})",
                    action.type_name, action.interleaved, action.params
                );
            }
            Ok(())
        }
        Command::Mkdir { meta, path } => {
            let store = client(&meta, &opts).await?;
            store.create_dir_all(&path).await
        }
        Command::Put { meta, path } => {
            let store = client(&meta, &opts).await?;
            let file = store.create_file(&path).await?;
            let mut writer = file.output_stream().await?;
            let mut stdin = std::io::stdin().lock();
            let mut buf = vec![0u8; 256 * 1024];
            loop {
                let n = stdin.read(&mut buf)?;
                if n == 0 {
                    break;
                }
                writer.write(Bytes::copy_from_slice(&buf[..n])).await?;
            }
            let total = writer.close().await?;
            eprintln!("wrote {total} bytes to {path}");
            Ok(())
        }
        Command::Get { meta, path } => {
            let store = client(&meta, &opts).await?;
            let file = store.lookup_file(&path).await?;
            let mut reader = file.input_stream().await?;
            let mut stdout = std::io::stdout().lock();
            while let Some(chunk) = reader.next_chunk().await? {
                stdout.write_all(&chunk)?;
            }
            stdout.flush()?;
            Ok(())
        }
        Command::Rm { meta, path } => {
            let store = client(&meta, &opts).await?;
            store.delete(&path).await
        }
        Command::MkAction {
            meta,
            path,
            type_name,
            params,
            interleaved,
        } => {
            let store = client(&meta, &opts).await?;
            let spec = ActionSpec::new(type_name, interleaved).with_params(params);
            store.create_action(&path, spec).await?;
            eprintln!("created action at {path}");
            Ok(())
        }
        Command::WriteAction { meta, path } => {
            let store = client(&meta, &opts).await?;
            let action = store.lookup_action(&path).await?;
            let mut writer = action.output_stream().await?;
            let mut stdin = std::io::stdin().lock();
            let mut buf = vec![0u8; 256 * 1024];
            loop {
                let n = stdin.read(&mut buf)?;
                if n == 0 {
                    break;
                }
                writer.write(Bytes::copy_from_slice(&buf[..n])).await?;
            }
            let total = writer.close().await?;
            eprintln!("streamed {total} bytes into {path}");
            Ok(())
        }
        Command::ReadAction { meta, path } => {
            let store = client(&meta, &opts).await?;
            let action = store.lookup_action(&path).await?;
            let mut reader = action.input_stream().await?;
            let mut stdout = std::io::stdout().lock();
            while let Some(chunk) = reader.next_chunk().await? {
                stdout.write_all(&chunk)?;
            }
            stdout.flush()?;
            reader.close().await
        }
        Command::Stats {
            meta,
            json,
            watch,
            prom,
        } => {
            let store = client(&meta, &opts).await?;
            if watch {
                // Poll the per-op time series until interrupted. The
                // servers sample on their own ticker; polling every
                // second keeps at most one new point per refresh.
                loop {
                    let payloads = store.series().await?;
                    print!("{}", glider_core::net::render_series(&payloads));
                    println!("---");
                    tokio::select! {
                        _ = tokio::signal::ctrl_c() => return Ok(()),
                        _ = tokio::time::sleep(Duration::from_secs(1)) => {}
                    }
                }
            }
            let payload = store.stats().await?;
            if prom {
                let series = store.series().await?;
                print!("{}", glider_core::net::render_stats_prom(&payload, &series));
            } else if json {
                println!("{}", glider_core::net::render_stats_json(&payload));
            } else {
                print!("{}", glider_core::net::render_stats_table(&payload));
            }
            Ok(())
        }
        Command::Trace { meta, trace_id } => {
            let store = client(&meta, &opts).await?;
            let dump = store.trace(trace_id).await?;
            println!("trace 0x{trace_id:016x}");
            print!("{}", glider_core::net::render_trace_tree(&dump));
            Ok(())
        }
    }
}
