//! The `glider` binary: executes parsed [`glider_cli::Command`]s.

use bytes::Bytes;
use glider_cli::{parse_with_opts, ClientOpts, Command, USAGE};
use glider_core::{ActionSpec, ClientConfig, Cluster, ClusterConfig, GliderResult, StoreClient};
use std::io::{Read, Write};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    // Honor GLIDER_TRACE / RUST_LOG before any spans are created.
    glider_core::trace::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (command, opts) = match parse_with_opts(&arg_refs) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let rt = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("tokio runtime");
    match rt.block_on(run(command, opts)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

async fn client(meta: &str, opts: &ClientOpts) -> GliderResult<StoreClient> {
    let mut config = ClientConfig::new(meta);
    if let Some(blocks) = opts.prefetch_blocks {
        config = config.with_prefetch_blocks(blocks);
    }
    if let Some(batch) = opts.commit_batch {
        config = config.with_commit_batch(batch);
    }
    if let Some(ms) = opts.cache_ttl_ms {
        let ttl = (ms > 0).then(|| Duration::from_millis(ms));
        config = config.with_lookup_cache_ttl(ttl);
    }
    StoreClient::connect(config).await
}

async fn run(command: Command, opts: ClientOpts) -> GliderResult<()> {
    match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Serve {
            data,
            active,
            slots,
            block_size,
            meta_shards,
            wal,
            replication,
        } => {
            let mut config = ClusterConfig::default()
                .with_data(data, 1024)
                .with_active(active, slots)
                .with_block_size(block_size);
            if meta_shards > 0 {
                config = config.with_metadata_shards(meta_shards);
            }
            if let Some(dir) = &wal {
                config = config.with_wal(dir);
            }
            if replication > 1 {
                config = config.with_replication(replication);
            }
            let cluster = Cluster::start(config).await?;
            println!("glider cluster up");
            println!("  metadata: {}", cluster.metadata_addr());
            println!(
                "  data servers: {}, active servers: {}, block size: {block_size}",
                data, active
            );
            if let Some(dir) = &wal {
                println!("  wal: {dir} (namespace survives restarts)");
            }
            if replication > 1 {
                println!("  replication factor: {replication}");
            }
            println!("press Ctrl-C to stop");
            tokio::signal::ctrl_c().await.ok();
            cluster.shutdown();
            Ok(())
        }
        Command::Ls { meta, path } => {
            let store = client(&meta, &opts).await?;
            for name in store.list(&path).await? {
                println!("{name}");
            }
            Ok(())
        }
        Command::Stat { meta, path } => {
            let store = client(&meta, &opts).await?;
            let info = store.lookup(&path).await?;
            println!("path:   {path}");
            println!("kind:   {}", info.kind);
            println!("size:   {}", info.size);
            println!("blocks: {}", info.blocks.len());
            if let Some(action) = &info.action {
                println!(
                    "action: {} (interleaved: {}, params: {:?})",
                    action.type_name, action.interleaved, action.params
                );
            }
            Ok(())
        }
        Command::Mkdir { meta, path } => {
            let store = client(&meta, &opts).await?;
            store.create_dir_all(&path).await
        }
        Command::Put { meta, path } => {
            let store = client(&meta, &opts).await?;
            let file = store.create_file(&path).await?;
            let mut writer = file.output_stream().await?;
            let mut stdin = std::io::stdin().lock();
            let mut buf = vec![0u8; 256 * 1024];
            loop {
                let n = stdin.read(&mut buf)?;
                if n == 0 {
                    break;
                }
                writer.write(Bytes::copy_from_slice(&buf[..n])).await?;
            }
            let total = writer.close().await?;
            eprintln!("wrote {total} bytes to {path}");
            Ok(())
        }
        Command::Get { meta, path } => {
            let store = client(&meta, &opts).await?;
            let file = store.lookup_file(&path).await?;
            let mut reader = file.input_stream().await?;
            let mut stdout = std::io::stdout().lock();
            while let Some(chunk) = reader.next_chunk().await? {
                stdout.write_all(&chunk)?;
            }
            stdout.flush()?;
            Ok(())
        }
        Command::Rm { meta, path } => {
            let store = client(&meta, &opts).await?;
            store.delete(&path).await
        }
        Command::MkAction {
            meta,
            path,
            type_name,
            params,
            interleaved,
        } => {
            let store = client(&meta, &opts).await?;
            let spec = ActionSpec::new(type_name, interleaved).with_params(params);
            store.create_action(&path, spec).await?;
            eprintln!("created action at {path}");
            Ok(())
        }
        Command::WriteAction { meta, path } => {
            let store = client(&meta, &opts).await?;
            let action = store.lookup_action(&path).await?;
            let mut writer = action.output_stream().await?;
            let mut stdin = std::io::stdin().lock();
            let mut buf = vec![0u8; 256 * 1024];
            loop {
                let n = stdin.read(&mut buf)?;
                if n == 0 {
                    break;
                }
                writer.write(Bytes::copy_from_slice(&buf[..n])).await?;
            }
            let total = writer.close().await?;
            eprintln!("streamed {total} bytes into {path}");
            Ok(())
        }
        Command::ReadAction { meta, path } => {
            let store = client(&meta, &opts).await?;
            let action = store.lookup_action(&path).await?;
            let mut reader = action.input_stream().await?;
            let mut stdout = std::io::stdout().lock();
            while let Some(chunk) = reader.next_chunk().await? {
                stdout.write_all(&chunk)?;
            }
            stdout.flush()?;
            reader.close().await
        }
        Command::Stats {
            meta,
            json,
            watch,
            prom,
        } => {
            let store = client(&meta, &opts).await?;
            if watch {
                // Poll the per-op time series until interrupted. The
                // servers sample on their own ticker; polling every
                // second keeps at most one new point per refresh.
                loop {
                    let payloads = store.series().await?;
                    print!("{}", glider_core::net::render_series(&payloads));
                    println!("---");
                    tokio::select! {
                        _ = tokio::signal::ctrl_c() => return Ok(()),
                        _ = tokio::time::sleep(Duration::from_secs(1)) => {}
                    }
                }
            }
            let payload = store.stats().await?;
            if prom {
                let series = store.series().await?;
                print!("{}", glider_core::net::render_stats_prom(&payload, &series));
            } else if json {
                println!("{}", glider_core::net::render_stats_json(&payload));
            } else {
                print!("{}", glider_core::net::render_stats_table(&payload));
            }
            Ok(())
        }
        Command::Trace { meta, trace_id } => {
            let store = client(&meta, &opts).await?;
            let dump = store.trace(trace_id).await?;
            println!("trace 0x{trace_id:016x}");
            print!("{}", glider_core::net::render_trace_tree(&dump));
            Ok(())
        }
        Command::Fsck {
            meta,
            path,
            factor,
            repair,
        } => fsck(&client(&meta, &opts).await?, &path, factor, repair).await,
    }
}

/// Read chunks per checksum pass: bounds each `ReadBlock` so fsck over
/// MiB-sized extents never asks a server for one giant response.
const FSCK_CHUNK: u64 = 256 * 1024;

#[derive(Default)]
struct FsckReport {
    nodes: u64,
    extents: u64,
    replicas: u64,
    problems: u64,
    repaired: u64,
}

/// Streams `[0, len)` of one block replica through the WAL's CRC32.
async fn checksum_block(
    store: &StoreClient,
    addr: &str,
    block_id: glider_core::proto::types::BlockId,
    len: u64,
) -> GliderResult<u32> {
    let mut crc = glider_wal::Crc32::new();
    let mut off = 0u64;
    while off < len {
        let n = (len - off).min(FSCK_CHUNK);
        let bytes = store.read_block(addr, block_id, off, n).await?;
        if bytes.is_empty() {
            // Shorter than the committed length — caught by the caller's
            // byte accounting below.
            break;
        }
        crc.update(&bytes);
        off += bytes.len() as u64;
    }
    if off < len {
        return Err(glider_core::GliderError::new(
            glider_core::ErrorCode::Io,
            format!("replica on {addr} holds {off} of {len} committed bytes"),
        ));
    }
    Ok(crc.finish())
}

/// Verifies one node: every committed extent's replica count (when
/// `--factor` is given) and every replica's checksum against the
/// primary's. Returns whether the node is damaged.
async fn fsck_node(
    store: &StoreClient,
    path: &str,
    factor: Option<u32>,
    report: &mut FsckReport,
) -> GliderResult<bool> {
    let layout = store.node_replicas(path).await?;
    let mut damaged = false;
    for re in &layout {
        if re.extent.len == 0 {
            continue; // unused prefetched extent, nothing to verify
        }
        report.extents += 1;
        let copies = 1 + re.backups.len() as u32;
        if let Some(want) = factor {
            if copies < want {
                println!(
                    "{path}: block {} has {copies} of {want} copies",
                    re.extent.loc.block_id
                );
                report.problems += 1;
                damaged = true;
            }
        }
        let primary = match checksum_block(
            store,
            &re.extent.loc.addr,
            re.extent.loc.block_id,
            re.extent.len,
        )
        .await
        {
            Ok(crc) => {
                report.replicas += 1;
                crc
            }
            Err(e) => {
                println!(
                    "{path}: primary block {} on {} unreadable: {e}",
                    re.extent.loc.block_id, re.extent.loc.addr
                );
                report.problems += 1;
                damaged = true;
                continue; // no reference checksum to compare backups against
            }
        };
        for backup in &re.backups {
            match checksum_block(store, &backup.addr, backup.block_id, re.extent.len).await {
                Ok(crc) if crc == primary => report.replicas += 1,
                Ok(crc) => {
                    println!(
                        "{path}: replica block {} on {} checksum {crc:#010x} != primary {primary:#010x}",
                        backup.block_id, backup.addr
                    );
                    report.problems += 1;
                    damaged = true;
                }
                Err(e) => {
                    println!(
                        "{path}: replica block {} on {} unreadable: {e}",
                        backup.block_id, backup.addr
                    );
                    report.problems += 1;
                    damaged = true;
                }
            }
        }
    }
    Ok(damaged)
}

/// Walks the namespace under `root` and verifies every data node's
/// replicas; `--repair` asks the metadata server to heal damaged nodes.
async fn fsck(
    store: &StoreClient,
    root: &str,
    factor: Option<u32>,
    repair: bool,
) -> GliderResult<()> {
    use glider_core::proto::types::NodeKind;
    let mut report = FsckReport::default();
    // Iterative walk (no async recursion): containers push children.
    let mut stack = vec![root.trim_end_matches('/').to_string()];
    while let Some(path) = stack.pop() {
        // The namespace root is a container but not a node; only
        // non-root paths have metadata to look up.
        let kind = if path.is_empty() {
            NodeKind::Directory
        } else {
            store.lookup(&path).await?.kind
        };
        match kind {
            NodeKind::Directory | NodeKind::Table => {
                for child in store
                    .list(if path.is_empty() { "/" } else { &path })
                    .await?
                {
                    stack.push(format!("{path}/{child}"));
                }
            }
            NodeKind::File | NodeKind::Bag | NodeKind::KeyValue => {
                report.nodes += 1;
                let shown = if path.is_empty() { "/" } else { path.as_str() };
                if fsck_node(store, shown, factor, &mut report).await? && repair {
                    store.repair_node(shown).await?;
                    report.repaired += 1;
                    println!("{shown}: repaired");
                }
            }
            // Action slots hold live objects, not replicated extents.
            NodeKind::Action => {}
        }
    }
    println!(
        "fsck: {} nodes, {} extents, {} replicas verified, {} problems{}",
        report.nodes,
        report.extents,
        report.replicas,
        report.problems,
        if repair {
            format!(", {} nodes repaired", report.repaired)
        } else {
            String::new()
        }
    );
    if report.problems > 0 && report.repaired == 0 {
        return Err(glider_core::GliderError::new(
            glider_core::ErrorCode::Io,
            format!(
                "fsck found {} problems (rerun with --repair)",
                report.problems
            ),
        ));
    }
    Ok(())
}
