//! Command-line interface for a Glider cluster.
//!
//! ```text
//! glider serve [--data N] [--active N] [--slots N] [--block-size SZ]
//!         [--meta-shards N]
//!     start an in-process cluster and print its metadata address
//!
//! glider --meta ADDR [--prefetch-blocks N] [--commit-batch N]
//!        [--cache-ttl-ms N] <command>
//!     ls PATH                 list a container
//!     stat PATH               show node metadata
//!     mkdir PATH              create a directory (and parents)
//!     put PATH                write stdin into a new file
//!     get PATH                stream a file to stdout
//!     rm PATH                 delete a node (recursively)
//!     mkaction PATH TYPE [--params P] [--interleaved]
//!                             create an action node
//!     write-action PATH       stream stdin into an action
//!     read-action PATH        stream an action's output to stdout
//!     stats [--json|--prom|--watch]
//!                             print latency histograms and transport
//!                             counters (per-transport requests, RPC
//!                             inflight, buffer-pool hit rate, streams);
//!                             --prom emits Prometheus text exposition
//!                             with trace exemplars, --watch polls the
//!                             per-op time series live
//!     trace ID                reassemble a distributed trace from every
//!                             server's flight recorder and render it as
//!                             one tree (ID decimal or 0x-hex, e.g. from
//!                             a stats exemplar)
//! ```
//!
//! The parser is dependency-free and unit-tested; `main.rs` is a thin
//! executor over [`Command`].

use glider_util::ByteSize;
use std::fmt;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Start a local cluster.
    Serve {
        /// Number of data servers.
        data: usize,
        /// Number of active servers.
        active: usize,
        /// Action slots per active server.
        slots: u64,
        /// Block size.
        block_size: ByteSize,
        /// Namespace shards inside the metadata server (0 = default).
        meta_shards: usize,
        /// WAL directory for metadata durability (`None` = volatile).
        wal: Option<String>,
        /// Block replication factor, primary included (1 = off).
        replication: u32,
    },
    /// List a container's children.
    Ls {
        /// Metadata address.
        meta: String,
        /// Container path.
        path: String,
    },
    /// Show node metadata.
    Stat {
        /// Metadata address.
        meta: String,
        /// Node path.
        path: String,
    },
    /// Create a directory and missing parents.
    Mkdir {
        /// Metadata address.
        meta: String,
        /// Directory path.
        path: String,
    },
    /// Write stdin into a new file node.
    Put {
        /// Metadata address.
        meta: String,
        /// File path.
        path: String,
    },
    /// Stream a file node to stdout.
    Get {
        /// Metadata address.
        meta: String,
        /// File path.
        path: String,
    },
    /// Delete a node recursively.
    Rm {
        /// Metadata address.
        meta: String,
        /// Node path.
        path: String,
    },
    /// Create an action node.
    MkAction {
        /// Metadata address.
        meta: String,
        /// Action path.
        path: String,
        /// Registered action type name.
        type_name: String,
        /// Configuration string.
        params: String,
        /// Enable interleaving.
        interleaved: bool,
    },
    /// Stream stdin into an action (triggers `on_write`).
    WriteAction {
        /// Metadata address.
        meta: String,
        /// Action path.
        path: String,
    },
    /// Stream an action's `on_read` output to stdout.
    ReadAction {
        /// Metadata address.
        meta: String,
        /// Action path.
        path: String,
    },
    /// Print server-side latency histograms, gauges, and counters.
    Stats {
        /// Metadata address.
        meta: String,
        /// Emit machine-readable JSON instead of a table.
        json: bool,
        /// Poll the per-op time series and re-render until interrupted.
        watch: bool,
        /// Emit Prometheus-style text exposition with trace exemplars.
        prom: bool,
    },
    /// Reassemble a distributed trace into one cross-process tree.
    Trace {
        /// Metadata address.
        meta: String,
        /// The trace id to reassemble.
        trace_id: u64,
    },
    /// Walk the namespace and verify every extent's replicas: read each
    /// copy from its live server and compare checksums, optionally
    /// checking replica counts against an expected factor and repairing
    /// damaged nodes.
    Fsck {
        /// Metadata address.
        meta: String,
        /// Subtree to check (`/` = the whole namespace).
        path: String,
        /// Expected replication factor (primary included); `None` skips
        /// the count check and only verifies checksums.
        factor: Option<u32>,
        /// Ask the metadata server to repair damaged nodes (promote
        /// backups, prune dead replicas, re-replicate).
        repair: bool,
    },
    /// Print usage.
    Help,
}

/// Client tuning accepted before or after any data command (the
/// metadata-plane knobs of `glider_client::ClientConfig`). `None` keeps
/// the client library's default.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientOpts {
    /// `--prefetch-blocks N`: writer block-prefetch batch (0 = off).
    pub prefetch_blocks: Option<u32>,
    /// `--commit-batch N`: commits coalesced per `CommitBlocks` RPC.
    pub commit_batch: Option<usize>,
    /// `--cache-ttl-ms N`: lookup-cache TTL in milliseconds (0 = off).
    pub cache_ttl_ms: Option<u64>,
}

/// A CLI parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// Parses a trace id as printed by `stats --prom` exemplars (`0x`-hex)
/// or plain decimal.
fn parse_trace_id(s: &str) -> Result<u64, UsageError> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| UsageError(format!("invalid trace id {s:?} (decimal or 0x-hex)")))
}

fn take_value<'a>(
    args: &mut impl Iterator<Item = &'a str>,
    flag: &str,
) -> Result<&'a str, UsageError> {
    args.next()
        .ok_or_else(|| UsageError(format!("{flag} requires a value")))
}

/// Parses an argument list (without the program name).
///
/// # Errors
///
/// Returns [`UsageError`] with a human-readable message on malformed
/// input.
pub fn parse(args: &[&str]) -> Result<Command, UsageError> {
    parse_with_opts(args).map(|(cmd, _)| cmd)
}

/// Parses an argument list plus the global [`ClientOpts`] tuning flags.
///
/// # Errors
///
/// Returns [`UsageError`] with a human-readable message on malformed
/// input.
pub fn parse_with_opts(args: &[&str]) -> Result<(Command, ClientOpts), UsageError> {
    let mut meta: Option<String> = None;
    let mut opts = ClientOpts::default();
    let mut rest: Vec<&str> = Vec::new();
    let mut it = args.iter().copied();
    while let Some(arg) = it.next() {
        match arg {
            "--meta" => meta = Some(take_value(&mut it, "--meta")?.to_string()),
            "--prefetch-blocks" => {
                opts.prefetch_blocks = Some(
                    take_value(&mut it, "--prefetch-blocks")?
                        .parse()
                        .map_err(|_| {
                            UsageError("--prefetch-blocks expects a number".to_string())
                        })?,
                );
            }
            "--commit-batch" => {
                opts.commit_batch = Some(
                    take_value(&mut it, "--commit-batch")?
                        .parse()
                        .map_err(|_| UsageError("--commit-batch expects a number".to_string()))?,
                );
            }
            "--cache-ttl-ms" => {
                opts.cache_ttl_ms = Some(
                    take_value(&mut it, "--cache-ttl-ms")?
                        .parse()
                        .map_err(|_| UsageError("--cache-ttl-ms expects a number".to_string()))?,
                );
            }
            "-h" | "--help" | "help" => return Ok((Command::Help, opts)),
            other => rest.push(other),
        }
    }
    let Some((&cmd, tail)) = rest.split_first() else {
        return Ok((Command::Help, opts));
    };

    let need_meta = |meta: &Option<String>| -> Result<String, UsageError> {
        meta.clone()
            .ok_or_else(|| UsageError("this command requires --meta ADDR".to_string()))
    };
    let one_path = |tail: &[&str], cmd: &str| -> Result<String, UsageError> {
        match tail {
            [path] => Ok((*path).to_string()),
            _ => Err(UsageError(format!("usage: glider {cmd} PATH"))),
        }
    };

    let command = match cmd {
        "serve" => {
            let mut data = 1usize;
            let mut active = 1usize;
            let mut slots = 64u64;
            let mut block_size = ByteSize::mib(1);
            let mut meta_shards = 0usize;
            let mut wal: Option<String> = None;
            let mut replication = 1u32;
            let mut it = tail.iter().copied();
            while let Some(arg) = it.next() {
                match arg {
                    "--data" => {
                        data = take_value(&mut it, "--data")?
                            .parse()
                            .map_err(|_| UsageError("--data expects a number".to_string()))?;
                    }
                    "--active" => {
                        active = take_value(&mut it, "--active")?
                            .parse()
                            .map_err(|_| UsageError("--active expects a number".to_string()))?;
                    }
                    "--slots" => {
                        slots = take_value(&mut it, "--slots")?
                            .parse()
                            .map_err(|_| UsageError("--slots expects a number".to_string()))?;
                    }
                    "--block-size" => {
                        block_size = take_value(&mut it, "--block-size")?
                            .parse()
                            .map_err(|e| UsageError(format!("--block-size: {e}")))?;
                    }
                    "--meta-shards" => {
                        meta_shards =
                            take_value(&mut it, "--meta-shards")?.parse().map_err(|_| {
                                UsageError("--meta-shards expects a number".to_string())
                            })?;
                    }
                    "--wal" => {
                        wal = Some(take_value(&mut it, "--wal")?.to_string());
                    }
                    "--replication" => {
                        replication =
                            take_value(&mut it, "--replication")?.parse().map_err(|_| {
                                UsageError("--replication expects a number".to_string())
                            })?;
                        if replication == 0 {
                            return Err(UsageError("--replication must be at least 1".to_string()));
                        }
                    }
                    other => return Err(UsageError(format!("unknown serve flag {other:?}"))),
                }
            }
            Ok(Command::Serve {
                data,
                active,
                slots,
                block_size,
                meta_shards,
                wal,
                replication,
            })
        }
        "ls" => Ok(Command::Ls {
            meta: need_meta(&meta)?,
            path: one_path(tail, "ls")?,
        }),
        "stat" => Ok(Command::Stat {
            meta: need_meta(&meta)?,
            path: one_path(tail, "stat")?,
        }),
        "mkdir" => Ok(Command::Mkdir {
            meta: need_meta(&meta)?,
            path: one_path(tail, "mkdir")?,
        }),
        "put" => Ok(Command::Put {
            meta: need_meta(&meta)?,
            path: one_path(tail, "put")?,
        }),
        "get" => Ok(Command::Get {
            meta: need_meta(&meta)?,
            path: one_path(tail, "get")?,
        }),
        "rm" => Ok(Command::Rm {
            meta: need_meta(&meta)?,
            path: one_path(tail, "rm")?,
        }),
        "mkaction" => {
            let meta = need_meta(&meta)?;
            let mut it = tail.iter().copied();
            let path = it
                .next()
                .ok_or_else(|| UsageError("usage: glider mkaction PATH TYPE".to_string()))?
                .to_string();
            let type_name = it
                .next()
                .ok_or_else(|| UsageError("usage: glider mkaction PATH TYPE".to_string()))?
                .to_string();
            let mut params = String::new();
            let mut interleaved = false;
            while let Some(arg) = it.next() {
                match arg {
                    "--params" => params = take_value(&mut it, "--params")?.to_string(),
                    "--interleaved" => interleaved = true,
                    other => return Err(UsageError(format!("unknown mkaction flag {other:?}"))),
                }
            }
            Ok(Command::MkAction {
                meta,
                path,
                type_name,
                params,
                interleaved,
            })
        }
        "write-action" => Ok(Command::WriteAction {
            meta: need_meta(&meta)?,
            path: one_path(tail, "write-action")?,
        }),
        "read-action" => Ok(Command::ReadAction {
            meta: need_meta(&meta)?,
            path: one_path(tail, "read-action")?,
        }),
        "stats" => {
            let mut json = false;
            let mut watch = false;
            let mut prom = false;
            for arg in tail {
                match *arg {
                    "--json" => json = true,
                    "--watch" => watch = true,
                    "--prom" => prom = true,
                    other => return Err(UsageError(format!("unknown stats flag {other:?}"))),
                }
            }
            if u8::from(json) + u8::from(watch) + u8::from(prom) > 1 {
                return Err(UsageError(
                    "--json, --watch, and --prom are mutually exclusive".to_string(),
                ));
            }
            Ok(Command::Stats {
                meta: need_meta(&meta)?,
                json,
                watch,
                prom,
            })
        }
        "trace" => {
            let id = match tail {
                [id] => *id,
                _ => return Err(UsageError("usage: glider trace TRACE_ID".to_string())),
            };
            Ok(Command::Trace {
                meta: need_meta(&meta)?,
                trace_id: parse_trace_id(id)?,
            })
        }
        "fsck" => {
            let mut path: Option<String> = None;
            let mut factor = None;
            let mut repair = false;
            let mut it = tail.iter().copied();
            while let Some(arg) = it.next() {
                match arg {
                    "--repair" => repair = true,
                    "--factor" => {
                        factor =
                            Some(take_value(&mut it, "--factor")?.parse().map_err(|_| {
                                UsageError("--factor expects a number".to_string())
                            })?);
                    }
                    other if !other.starts_with('-') && path.is_none() => {
                        path = Some(other.to_string());
                    }
                    other => return Err(UsageError(format!("unknown fsck flag {other:?}"))),
                }
            }
            if factor == Some(0) {
                return Err(UsageError("--factor must be at least 1".to_string()));
            }
            Ok(Command::Fsck {
                meta: need_meta(&meta)?,
                path: path.unwrap_or_else(|| "/".to_string()),
                factor,
                repair,
            })
        }
        other => Err(UsageError(format!(
            "unknown command {other:?}; run `glider help`"
        ))),
    }?;
    Ok((command, opts))
}

/// The usage text printed by `glider help`.
pub const USAGE: &str = "\
glider — ephemeral storage with near-data actions

  glider serve [--data N] [--active N] [--slots N] [--block-size SZ]
         [--meta-shards N] [--wal DIR] [--replication N]
  glider --meta ADDR ls PATH
  glider --meta ADDR stat PATH
  glider --meta ADDR mkdir PATH
  glider --meta ADDR put PATH            (reads stdin)
  glider --meta ADDR get PATH            (writes stdout)
  glider --meta ADDR rm PATH
  glider --meta ADDR mkaction PATH TYPE [--params K=V;..] [--interleaved]
  glider --meta ADDR write-action PATH   (reads stdin)
  glider --meta ADDR read-action PATH    (writes stdout)
  glider --meta ADDR stats [--json|--prom|--watch]
  glider --meta ADDR trace TRACE_ID      (decimal or 0x-hex)
  glider --meta ADDR fsck [PATH] [--factor N] [--repair]
                                         verify replica counts and
                                         checksums for every extent

client tuning (any data command):
  --prefetch-blocks N   blocks prefetched per AddBlocks batch (0 = off)
  --commit-batch N      commits coalesced per CommitBlocks RPC
  --cache-ttl-ms N      lookup-cache freshness window (0 = off)
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_defaults_and_flags() {
        assert_eq!(
            parse(&["serve"]).unwrap(),
            Command::Serve {
                data: 1,
                active: 1,
                slots: 64,
                block_size: ByteSize::mib(1),
                meta_shards: 0,
                wal: None,
                replication: 1
            }
        );
        assert_eq!(
            parse(&[
                "serve",
                "--data",
                "3",
                "--active",
                "2",
                "--slots",
                "8",
                "--block-size",
                "64KiB",
                "--meta-shards",
                "4",
                "--wal",
                "/tmp/glider-wal",
                "--replication",
                "2"
            ])
            .unwrap(),
            Command::Serve {
                data: 3,
                active: 2,
                slots: 8,
                block_size: ByteSize::kib(64),
                meta_shards: 4,
                wal: Some("/tmp/glider-wal".into()),
                replication: 2
            }
        );
        assert!(parse(&["serve", "--data"]).is_err());
        assert!(parse(&["serve", "--bogus"]).is_err());
        assert!(parse(&["serve", "--block-size", "a lot"]).is_err());
        assert!(parse(&["serve", "--meta-shards", "many"]).is_err());
        assert!(parse(&["serve", "--wal"]).is_err());
        assert!(parse(&["serve", "--replication", "0"]).is_err());
        assert!(parse(&["serve", "--replication", "lots"]).is_err());
    }

    #[test]
    fn client_tuning_flags_parse_anywhere() {
        let (cmd, opts) = parse_with_opts(&[
            "--meta",
            "m:1",
            "--prefetch-blocks",
            "8",
            "get",
            "/f",
            "--commit-batch",
            "16",
            "--cache-ttl-ms",
            "0",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Get {
                meta: "m:1".into(),
                path: "/f".into()
            }
        );
        assert_eq!(
            opts,
            ClientOpts {
                prefetch_blocks: Some(8),
                commit_batch: Some(16),
                cache_ttl_ms: Some(0),
            }
        );
        // Defaults stay unset so the client library's defaults apply.
        let (_, opts) = parse_with_opts(&["--meta", "m:1", "ls", "/"]).unwrap();
        assert_eq!(opts, ClientOpts::default());
        assert!(parse_with_opts(&["--prefetch-blocks", "x", "ls", "/"]).is_err());
    }

    #[test]
    fn data_commands_require_meta() {
        assert!(parse(&["ls", "/"]).is_err());
        assert_eq!(
            parse(&["--meta", "host:1", "ls", "/"]).unwrap(),
            Command::Ls {
                meta: "host:1".into(),
                path: "/".into()
            }
        );
        // --meta may come after the command too.
        assert_eq!(
            parse(&["get", "/f", "--meta", "host:1"]).unwrap(),
            Command::Get {
                meta: "host:1".into(),
                path: "/f".into()
            }
        );
    }

    #[test]
    fn mkaction_parses_options() {
        let cmd = parse(&[
            "--meta",
            "m:1",
            "mkaction",
            "/a",
            "merge",
            "--interleaved",
            "--params",
            "x=1;y=2",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::MkAction {
                meta: "m:1".into(),
                path: "/a".into(),
                type_name: "merge".into(),
                params: "x=1;y=2".into(),
                interleaved: true,
            }
        );
        assert!(parse(&["--meta", "m:1", "mkaction", "/a"]).is_err());
    }

    #[test]
    fn stats_parses_json_flag() {
        assert_eq!(
            parse(&["--meta", "m:1", "stats"]).unwrap(),
            Command::Stats {
                meta: "m:1".into(),
                json: false,
                watch: false,
                prom: false,
            }
        );
        assert_eq!(
            parse(&["--meta", "m:1", "stats", "--json"]).unwrap(),
            Command::Stats {
                meta: "m:1".into(),
                json: true,
                watch: false,
                prom: false,
            }
        );
        assert!(parse(&["stats"]).is_err());
        assert!(parse(&["--meta", "m:1", "stats", "--bogus"]).is_err());
    }

    #[test]
    fn stats_output_modes_are_exclusive() {
        assert_eq!(
            parse(&["--meta", "m:1", "stats", "--prom"]).unwrap(),
            Command::Stats {
                meta: "m:1".into(),
                json: false,
                watch: false,
                prom: true,
            }
        );
        assert_eq!(
            parse(&["--meta", "m:1", "stats", "--watch"]).unwrap(),
            Command::Stats {
                meta: "m:1".into(),
                json: false,
                watch: true,
                prom: false,
            }
        );
        assert!(parse(&["--meta", "m:1", "stats", "--json", "--prom"]).is_err());
        assert!(parse(&["--meta", "m:1", "stats", "--watch", "--json"]).is_err());
    }

    #[test]
    fn trace_parses_decimal_and_hex_ids() {
        assert_eq!(
            parse(&["--meta", "m:1", "trace", "42"]).unwrap(),
            Command::Trace {
                meta: "m:1".into(),
                trace_id: 42
            }
        );
        assert_eq!(
            parse(&["--meta", "m:1", "trace", "0x00000000000000ff"]).unwrap(),
            Command::Trace {
                meta: "m:1".into(),
                trace_id: 255
            }
        );
        assert!(parse(&["trace", "42"]).is_err(), "trace requires --meta");
        assert!(parse(&["--meta", "m:1", "trace"]).is_err());
        assert!(parse(&["--meta", "m:1", "trace", "1", "2"]).is_err());
        assert!(parse(&["--meta", "m:1", "trace", "zebra"]).is_err());
    }

    #[test]
    fn fsck_parses_path_factor_and_repair() {
        assert_eq!(
            parse(&["--meta", "m:1", "fsck"]).unwrap(),
            Command::Fsck {
                meta: "m:1".into(),
                path: "/".into(),
                factor: None,
                repair: false,
            }
        );
        assert_eq!(
            parse(&["--meta", "m:1", "fsck", "/job", "--factor", "2", "--repair"]).unwrap(),
            Command::Fsck {
                meta: "m:1".into(),
                path: "/job".into(),
                factor: Some(2),
                repair: true,
            }
        );
        // Flag order does not matter; path may come after flags.
        assert_eq!(
            parse(&["--meta", "m:1", "fsck", "--repair", "/job"]).unwrap(),
            Command::Fsck {
                meta: "m:1".into(),
                path: "/job".into(),
                factor: None,
                repair: true,
            }
        );
        assert!(parse(&["fsck"]).is_err(), "fsck requires --meta");
        assert!(parse(&["--meta", "m:1", "fsck", "/a", "/b"]).is_err());
        assert!(parse(&["--meta", "m:1", "fsck", "--factor", "zero"]).is_err());
        assert!(parse(&["--meta", "m:1", "fsck", "--factor", "0"]).is_err());
        assert!(parse(&["--meta", "m:1", "fsck", "--bogus"]).is_err());
        assert!(USAGE.contains("fsck"));
    }

    #[test]
    fn help_and_unknown() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
        assert!(parse(&["frobnicate"]).is_err());
        assert!(USAGE.contains("mkaction"));
    }

    #[test]
    fn path_arity_is_enforced() {
        assert!(parse(&["--meta", "m", "ls"]).is_err());
        assert!(parse(&["--meta", "m", "ls", "/a", "/b"]).is_err());
    }
}
