//! Lock-free log-scale latency histograms.
//!
//! A [`LogHistogram`] has 64 power-of-two buckets with nanosecond
//! resolution: bucket 0 holds the value 0 and bucket *i* ≥ 1 holds
//! values in `[2^(i-1), 2^i)` (the last bucket is open-ended). Recording
//! is exactly one relaxed atomic add — no locks, no allocation — so the
//! histograms can sit on every RPC dispatch and block operation.
//!
//! Percentiles come from [`HistogramSnapshot`]: log-scale buckets bound
//! any reported quantile to within 2× of the true value, which is the
//! usual trade for a fixed-size, mergeable structure (HdrHistogram makes
//! the same one at finer grain).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets; covers the full `u64` range in powers of two.
pub const HIST_BUCKETS: usize = 64;

/// The bucket a value lands in: 0 for 0, else `floor(log2(v)) + 1`,
/// clamped so the last bucket absorbs everything ≥ 2^62. Public so the
/// exemplar plane can attribute a trace id to the bucket its latency
/// landed in, and renderers can label buckets.
pub fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive bounds `(lower, upper)` of a bucket.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 0),
        i if i >= HIST_BUCKETS - 1 => (1 << (HIST_BUCKETS - 2), u64::MAX),
        i => (1 << (i - 1), (1 << i) - 1),
    }
}

/// A fixed-size, lock-free latency histogram with power-of-two buckets.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one value (nanoseconds by convention): a single relaxed
    /// `fetch_add`, the entire data-path cost of the measurement plane.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the bucket counts out. Concurrent recordings may or may not
    /// be included (relaxed reads), but no count is ever lost or split.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }

    /// Zeroes every bucket.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// A point-in-time copy of a [`LogHistogram`]; mergeable across
/// registries and serializable as its plain bucket counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; HIST_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Rebuilds a snapshot from raw bucket counts (e.g. decoded from the
    /// wire). Longer inputs are truncated, shorter ones zero-padded.
    pub fn from_bucket_counts(counts: &[u64]) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (slot, &c) in buckets.iter_mut().zip(counts.iter()) {
            *slot = c;
        }
        HistogramSnapshot { buckets }
    }

    /// The raw bucket counts, for wire encoding.
    pub fn bucket_counts(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The value at quantile `q` in `[0, 1]`, reported as the inclusive
    /// upper bound of the bucket containing that rank (a log-scale
    /// approximation: within 2× of the true value). 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(HIST_BUCKETS - 1).1
    }

    /// Median (see [`HistogramSnapshot::percentile`]).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Upper bound of the highest occupied bucket; 0 when empty.
    pub fn max(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| bucket_bounds(i).1)
            .unwrap_or(0)
    }

    /// Adds `other`'s counts into `self`. Bucket-wise addition, so the
    /// merge is commutative and associative across any set of snapshots.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
    }
}

/// The operation classes Glider measures latency for.
///
/// Metadata verbs are split out (λFS-style per-RPC percentiles); the
/// data plane distinguishes block I/O from the action path, and the
/// action path separates invocation (RPC arrival to response) from the
/// queue wait and the handler's own run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `CreateNode` metadata RPC.
    MetaCreateNode,
    /// `LookupNode` metadata RPC.
    MetaLookupNode,
    /// `DeleteNode` metadata RPC.
    MetaDeleteNode,
    /// `ListChildren` metadata RPC.
    MetaListChildren,
    /// `AddBlock` metadata RPC.
    MetaAddBlock,
    /// `AddBlocks` (batched allocation) metadata RPC.
    MetaAddBlocks,
    /// `CommitBlock` metadata RPC.
    MetaCommitBlock,
    /// `CommitBlocks` (batched commit) metadata RPC.
    MetaCommitBlocks,
    /// `RegisterServer` metadata RPC.
    MetaRegisterServer,
    /// `ReadBlock` on a data server.
    BlockRead,
    /// `WriteBlock` on a data server.
    BlockWrite,
    /// `FreeBlocks` on a data server.
    BlockFree,
    /// Action-plane control RPCs served by an active server (create,
    /// delete, stream open/close), measured at the dispatcher.
    ActionInvoke,
    /// One action handler method run inside an instance task.
    ActionHandlerRun,
    /// Time an invocation waited in an instance mailbox before running.
    QueueWait,
    /// One coalesced writer-batch flush (client or server writer task).
    WriterFlush,
    /// `StreamFetch` on an active server (pulling action output).
    ActionStreamRead,
    /// `StreamChunk`/`StreamChunkBatch` on an active server (pushing
    /// action input).
    ActionStreamWrite,
}

impl OpKind {
    /// Number of operation kinds.
    pub const COUNT: usize = 18;

    /// All kinds, in index order.
    pub const ALL: [OpKind; OpKind::COUNT] = [
        OpKind::MetaCreateNode,
        OpKind::MetaLookupNode,
        OpKind::MetaDeleteNode,
        OpKind::MetaListChildren,
        OpKind::MetaAddBlock,
        OpKind::MetaAddBlocks,
        OpKind::MetaCommitBlock,
        OpKind::MetaCommitBlocks,
        OpKind::MetaRegisterServer,
        OpKind::BlockRead,
        OpKind::BlockWrite,
        OpKind::BlockFree,
        OpKind::ActionInvoke,
        OpKind::ActionHandlerRun,
        OpKind::QueueWait,
        OpKind::WriterFlush,
        OpKind::ActionStreamRead,
        OpKind::ActionStreamWrite,
    ];

    /// The dense index of this kind.
    pub fn index(self) -> usize {
        match self {
            OpKind::MetaCreateNode => 0,
            OpKind::MetaLookupNode => 1,
            OpKind::MetaDeleteNode => 2,
            OpKind::MetaListChildren => 3,
            OpKind::MetaAddBlock => 4,
            OpKind::MetaAddBlocks => 5,
            OpKind::MetaCommitBlock => 6,
            OpKind::MetaCommitBlocks => 7,
            OpKind::MetaRegisterServer => 8,
            OpKind::BlockRead => 9,
            OpKind::BlockWrite => 10,
            OpKind::BlockFree => 11,
            OpKind::ActionInvoke => 12,
            OpKind::ActionHandlerRun => 13,
            OpKind::QueueWait => 14,
            OpKind::WriterFlush => 15,
            OpKind::ActionStreamRead => 16,
            OpKind::ActionStreamWrite => 17,
        }
    }

    /// The stable name used in stats tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::MetaCreateNode => "meta-create-node",
            OpKind::MetaLookupNode => "meta-lookup-node",
            OpKind::MetaDeleteNode => "meta-delete-node",
            OpKind::MetaListChildren => "meta-list-children",
            OpKind::MetaAddBlock => "meta-add-block",
            OpKind::MetaAddBlocks => "meta-add-blocks",
            OpKind::MetaCommitBlock => "meta-commit-block",
            OpKind::MetaCommitBlocks => "meta-commit-blocks",
            OpKind::MetaRegisterServer => "meta-register-server",
            OpKind::BlockRead => "block-read",
            OpKind::BlockWrite => "block-write",
            OpKind::BlockFree => "block-free",
            OpKind::ActionInvoke => "action-invoke",
            OpKind::ActionHandlerRun => "action-run",
            OpKind::QueueWait => "queue-wait",
            OpKind::WriterFlush => "writer-flush",
            OpKind::ActionStreamRead => "action-stream-read",
            OpKind::ActionStreamWrite => "action-stream-write",
        }
    }

    /// The kind whose stats-table name is `name`, if any.
    pub fn from_name(name: &str) -> Option<OpKind> {
        OpKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_scheme_is_exhaustive_and_ordered() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        // Bounds tile the u64 range without gaps.
        for i in 1..HIST_BUCKETS {
            let (lo, _) = bucket_bounds(i);
            let (_, prev_hi) = bucket_bounds(i - 1);
            assert_eq!(lo, prev_hi + 1, "gap before bucket {i}");
        }
        assert_eq!(bucket_bounds(HIST_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let h = LogHistogram::new();
        // 90 fast ops (~1us) and 10 slow ones (~1ms).
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        // 1000 lands in [512, 1024), upper bound 1023.
        assert_eq!(s.p50(), 1023);
        assert_eq!(s.p90(), 1023);
        // 1_000_000 lands in [2^19, 2^20), upper bound 2^20 - 1.
        assert_eq!(s.p99(), (1 << 20) - 1);
        assert_eq!(s.max(), (1 << 20) - 1);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let s = LogHistogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p999(), 0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn reset_clears_buckets() {
        let h = LogHistogram::new();
        h.record(5);
        h.reset();
        assert!(h.snapshot().is_empty());
    }

    #[test]
    fn snapshot_round_trips_through_bucket_counts() {
        let h = LogHistogram::new();
        for v in [0, 1, 7, 1 << 40, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        let back = HistogramSnapshot::from_bucket_counts(&s.bucket_counts()[..]);
        assert_eq!(back, s);
        // Short inputs zero-pad, long inputs truncate.
        let short = HistogramSnapshot::from_bucket_counts(&[3, 1]);
        assert_eq!(short.count(), 4);
        let long = HistogramSnapshot::from_bucket_counts(&vec![1u64; HIST_BUCKETS + 8]);
        assert_eq!(long.count(), HIST_BUCKETS as u64);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        // Mirror of the registry's counter test: 4 threads × 10k records
        // must all land.
        let h = LogHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 40_000);
    }

    #[test]
    fn op_kind_indices_and_names_are_dense_and_unique() {
        let mut names = std::collections::HashSet::new();
        for (i, kind) in OpKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
            assert!(names.insert(kind.name()), "duplicate name {}", kind.name());
            assert_eq!(OpKind::from_name(kind.name()), Some(*kind));
        }
        assert_eq!(OpKind::ALL.len(), OpKind::COUNT);
        assert_eq!(OpKind::from_name("bogus"), None);
    }

    proptest! {
        #[test]
        fn recorded_values_land_in_containing_bucket(v in any::<u64>()) {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            prop_assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}] (bucket {idx})");
        }

        #[test]
        fn percentiles_are_monotone(values in proptest::collection::vec(any::<u64>(), 1..200)) {
            let h = LogHistogram::new();
            for &v in &values {
                h.record(v);
            }
            let s = h.snapshot();
            prop_assert!(s.p50() <= s.p90());
            prop_assert!(s.p90() <= s.p99());
            prop_assert!(s.p99() <= s.p999());
            prop_assert!(s.p999() <= s.max());
            // And the quantile estimate never undershoots a true lower bound:
            // max() is the upper bound of the highest occupied bucket.
            let true_max = *values.iter().max().unwrap();
            prop_assert!(s.max() >= true_max);
        }

        #[test]
        fn merge_is_associative_and_commutative(
            a in proptest::collection::vec(0u64..1_000_000, HIST_BUCKETS),
            b in proptest::collection::vec(0u64..1_000_000, HIST_BUCKETS),
            c in proptest::collection::vec(0u64..1_000_000, HIST_BUCKETS),
        ) {
            let (a, b, c) = (
                HistogramSnapshot::from_bucket_counts(&a),
                HistogramSnapshot::from_bucket_counts(&b),
                HistogramSnapshot::from_bucket_counts(&c),
            );
            // (a + b) + c
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            // a + (b + c)
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            prop_assert_eq!(&left, &right);
            // b + a == a + b
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(ab, ba);
        }
    }
}
